//! The TCP shard data plane: shard epochs over a socket instead of a shared
//! filesystem.
//!
//! PRs 4–5 made everything *above* the transport multi-host — sharded
//! evaluation, the sharded variation stage, shard-first job workers — but the
//! only [`ShardTransport`](ayb_moo::ShardTransport) implementation was the
//! store's on-disk plane, so a fleet still needed every machine to mount the
//! same store path. This crate removes that requirement with three pieces,
//! all built on `std::net` and the vendored JSON stack (no new
//! dependencies):
//!
//! * **[`wire`]** — a length-prefixed JSON frame format plus the
//!   request/response vocabulary spoken over it;
//! * **[`Coordinator`]** — a thread-per-connection TCP server owning epoch
//!   state *in memory*: it opens typed epochs
//!   ([`ShardWork::Eval`](ayb_store::ShardWork)/[`Variation`](ayb_store::ShardWork)),
//!   hands out claims stamped with **monotonic fencing tokens**, expires
//!   claims whose heartbeats lapse, and accepts a shard's result only from
//!   the holder of the *highest* token ever issued for that shard — a late
//!   write from a stolen (hung, then superseded) claim is rejected, not
//!   merged;
//! * **[`TcpTransport`]** — the client: a
//!   [`ShardTransport`](ayb_moo::ShardTransport) implementation plus the
//!   typed epoch API the variation stage
//!   uses, so `ShardedEvaluator`/`drive_epoch` run over TCP unchanged, and a
//!   worker-facing [`TcpTransport::claim_next`] that carries the run's
//!   `FlowConfig` over the wire so workers need no access to the run store
//!   at all.
//!
//! Determinism is untouched: the coordinator stores opaque
//! [`ShardWork`](ayb_store::ShardWork)/[`ShardOutcome`](ayb_store::ShardOutcome)
//! payloads and the submitting flow reassembles results in index order
//! exactly as it does over disk. If the coordinator dies, every request
//! errors, `drive_epoch`'s per-shard fallback services the work locally, and
//! the digest is unchanged — the coordinator is an accelerator, never a
//! correctness dependency.

#![deny(missing_docs)]

mod coordinator;
mod transport;
pub mod wire;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use transport::{ClaimPulse, TcpTransport, TransportStats};
pub use wire::{CoordinatorStats, NetShardTask, Request, Response};

/// Parses a `tcp://host:port` transport URL into its `host:port` socket
/// address, rejecting anything else.
///
/// This is the single parser behind [`TcpTransport::from_url`] and the CLI's
/// `--transport` flag, so both reject malformed selectors identically.
///
/// # Errors
///
/// Returns a human-readable message when `url` does not have the form
/// `tcp://host:port`.
pub fn parse_transport_url(url: &str) -> Result<String, String> {
    let Some(addr) = url.strip_prefix("tcp://") else {
        return Err(format!(
            "transport `{url}` is not supported: expected `tcp://host:port`"
        ));
    };
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| format!("transport `{url}` lacks a port: expected `tcp://host:port`"))?;
    if host.is_empty() {
        return Err(format!(
            "transport `{url}` lacks a host: expected `tcp://host:port`"
        ));
    }
    port.parse::<u16>()
        .map_err(|_| format!("transport `{url}` has an invalid port `{port}`"))?;
    Ok(addr.to_string())
}

#[cfg(test)]
mod tests {
    use super::parse_transport_url;

    #[test]
    fn transport_urls_parse_or_reject() {
        assert_eq!(
            parse_transport_url("tcp://127.0.0.1:4710").unwrap(),
            "127.0.0.1:4710"
        );
        assert_eq!(
            parse_transport_url("tcp://coordinator.example:80").unwrap(),
            "coordinator.example:80"
        );
        for bad in [
            "127.0.0.1:4710",
            "udp://127.0.0.1:4710",
            "tcp://127.0.0.1",
            "tcp://:4710",
            "tcp://host:notaport",
            "tcp://host:70000",
        ] {
            assert!(
                parse_transport_url(bad).is_err(),
                "{bad} should be rejected"
            );
        }
    }
}
