//! The wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length followed
//! by that many bytes of JSON — the same JSON the disk plane writes into
//! task/result files, so a payload that round-trips through the store
//! round-trips through the socket byte-for-byte. Clients speak
//! connect-per-request: open a connection, write one [`Request`] frame, read
//! one [`Response`] frame, close. That keeps the coordinator's per-connection
//! state trivial (a request is never torn across reconnects) and means a
//! killed worker leaves nothing behind on the server but an eventually
//! expired claim.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use ayb_store::{ShardOutcome, ShardWork, ShardWorkKind};
use serde::{Deserialize, Serialize, Value};

/// Hard upper bound on one frame's JSON payload (16 MiB). A peer announcing
/// a larger frame is malformed or hostile; the connection is dropped rather
/// than the allocation attempted.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the JSON payload.
///
/// # Errors
///
/// Returns an [`io::Error`] when the payload exceeds [`MAX_FRAME_BYTES`],
/// cannot be serialized, or the socket write fails.
pub fn write_frame<T: Serialize + ?Sized>(stream: &mut TcpStream, message: &T) -> io::Result<()> {
    let body = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte bound",
                bytes.len()
            ),
        ));
    }
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame length overflows u32"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads one frame and decodes its JSON payload.
///
/// # Errors
///
/// Returns an [`io::Error`] on socket failure (including a peer that closed
/// mid-frame), an announced length above [`MAX_FRAME_BYTES`], or a payload
/// that is not valid JSON for `T`.
pub fn read_frame<T: Deserialize>(stream: &mut TcpStream) -> io::Result<T> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame, above the {MAX_FRAME_BYTES}-byte bound"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A request frame, client → coordinator. One request per connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens a new typed epoch of `shard_count` shards (the count may grow
    /// via [`Request::Publish`]). `run_id` and `context` travel to workers
    /// verbatim through [`Request::ClaimNext`]; the context is the run's
    /// serialized flow configuration, which is what lets a worker rebuild
    /// the sizing problem with no access to the run store.
    OpenEpoch {
        /// The stage this epoch belongs to (evaluation or variation).
        kind: ShardWorkKind,
        /// Number of shards the epoch starts with.
        shard_count: usize,
        /// The submitting run's identifier (diagnostics, worker events).
        run_id: String,
        /// Opaque submitter context forwarded to workers (the flow config).
        context: Option<Value>,
    },
    /// Publishes shard `shard`'s work payload into `epoch`.
    Publish {
        /// Epoch identifier from [`Response::EpochOpened`].
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
        /// The typed work payload.
        work: ShardWork,
    },
    /// Attempts to claim shard `shard` of `epoch` for `owner`. Granted
    /// claims carry a fencing token (see [`Response::ClaimGranted`]).
    TryClaim {
        /// Epoch identifier.
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
        /// Label of the claiming worker (diagnostics).
        owner: String,
    },
    /// Refreshes the heartbeat of the claim holding `token` on a shard.
    /// A mismatched token is ignored: the claim was already stolen.
    Heartbeat {
        /// Epoch identifier.
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
        /// The fencing token the heartbeating worker holds.
        token: u64,
    },
    /// Submits shard `shard`'s outcome under fencing token `token`. The
    /// coordinator accepts it only if `token` is the *highest* token ever
    /// issued for the shard — a zombie whose claim was stolen is fenced off.
    Submit {
        /// Epoch identifier.
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
        /// The fencing token the submitting worker holds.
        token: u64,
        /// The typed result payload.
        outcome: ShardOutcome,
    },
    /// Fetches shard `shard`'s outcome, if any worker has submitted one.
    Fetch {
        /// Epoch identifier.
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
    },
    /// Expires shard `shard`'s claim if its heartbeat lapsed, freeing the
    /// shard for re-claiming (at a higher token).
    Recover {
        /// Epoch identifier.
        epoch: String,
        /// Shard index within the epoch.
        shard: usize,
    },
    /// Drops the epoch and all its state; the batch has been assembled.
    CloseEpoch {
        /// Epoch identifier.
        epoch: String,
    },
    /// Worker entry point: atomically finds *any* open epoch with an
    /// unclaimed, unfinished shard, claims it for `owner`, and returns the
    /// work plus everything needed to service it store-free.
    ClaimNext {
        /// Label of the claiming worker (diagnostics).
        owner: String,
    },
    /// Requests the coordinator's counters (see [`CoordinatorStats`]).
    Stats,
    /// Requests the coordinator's full metrics registry rendered in the
    /// text exposition format (counters, gauges, request-latency
    /// histograms) — what `ayb top` scrapes for a live fleet view.
    Metrics,
}

impl Request {
    /// A short static label for this request kind, used as the metric
    /// suffix (`ayb_coord_requests_{label}_total`) and in request events.
    pub fn label(&self) -> &'static str {
        match self {
            Request::OpenEpoch { .. } => "open_epoch",
            Request::Publish { .. } => "publish",
            Request::TryClaim { .. } => "try_claim",
            Request::Heartbeat { .. } => "heartbeat",
            Request::Submit { .. } => "submit",
            Request::Fetch { .. } => "fetch",
            Request::Recover { .. } => "recover",
            Request::CloseEpoch { .. } => "close_epoch",
            Request::ClaimNext { .. } => "claim_next",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
        }
    }
}

/// A response frame, coordinator → client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Generic success for requests with nothing to return.
    Ok,
    /// A new epoch was opened.
    EpochOpened {
        /// The epoch's identifier, unique for the coordinator's lifetime.
        epoch: String,
    },
    /// Outcome of a [`Request::TryClaim`].
    ClaimGranted {
        /// Whether the claim was granted (false: already claimed or done).
        granted: bool,
        /// The fencing token of the granted claim (0 when not granted).
        token: u64,
    },
    /// Outcome of a [`Request::Submit`].
    SubmitAck {
        /// Whether the result was accepted; `false` means the submitter's
        /// token was superseded and the result was discarded (fenced off).
        accepted: bool,
    },
    /// Outcome of a [`Request::Fetch`].
    Outcome {
        /// The shard's result, if one has been accepted.
        outcome: Option<ShardOutcome>,
    },
    /// Outcome of a [`Request::Recover`].
    Recovered {
        /// Whether a stale claim was expired.
        expired: bool,
    },
    /// Outcome of a [`Request::ClaimNext`].
    Task {
        /// The claimed work, or `None` when no shard is available.
        task: Option<NetShardTask>,
    },
    /// Outcome of a [`Request::Stats`].
    Stats {
        /// The coordinator's counters.
        stats: CoordinatorStats,
    },
    /// Outcome of a [`Request::Metrics`].
    Metrics {
        /// The metrics registry in text exposition format.
        text: String,
    },
    /// The request could not be honoured (unknown epoch, shard out of
    /// range). Clients surface the message as a transport error.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// One claimed shard of network work, as handed to a worker by
/// [`Request::ClaimNext`]. Self-contained: the payload, the fencing token to
/// heartbeat and submit under, and the submitter's context (its serialized
/// flow configuration) — nothing else is needed to service the shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetShardTask {
    /// The submitting run's identifier.
    pub run_id: String,
    /// Epoch the shard belongs to.
    pub epoch: String,
    /// Shard index within the epoch.
    pub shard: usize,
    /// The fencing token of this claim.
    pub token: u64,
    /// The typed work payload.
    pub work: ShardWork,
    /// Opaque submitter context (the run's flow configuration as JSON).
    pub context: Option<Value>,
}

/// The coordinator's observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Epochs currently open.
    pub epochs: usize,
    /// Published shards still awaiting an accepted result.
    pub open_shards: usize,
    /// Claims issued over the coordinator's lifetime (== tokens minted).
    pub claims_issued: u64,
    /// Submissions rejected because their token had been superseded.
    pub fenced_rejections: u64,
}
