//! The coordinator: a TCP server owning shard-epoch state in memory.
//!
//! One [`Coordinator`] replaces the shared store directory as the meeting
//! point of a sharded run: the submitting flow opens epochs and publishes
//! work here, workers claim and submit here, and nobody touches anybody
//! else's filesystem. State is deliberately *in memory only* — an epoch is
//! scratch space for one batch, and the flow's `drive_epoch` loop already
//! survives total state loss (every request errors, the per-shard fallback
//! services the work locally, the digest is unchanged). What the coordinator
//! adds over the disk plane is **fencing**: every claim carries a
//! per-shard monotonic token, a claim whose heartbeat lapses can be stolen
//! by re-claiming at a higher token, and a submission is accepted only from
//! the highest token ever issued — so a hung worker that wakes up after its
//! claim was stolen has its late write *rejected*, not merged. The disk
//! plane can only surface that hazard; the coordinator closes it.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ayb_obs::{kind as event_kind, Event, Recorder, Severity};
use ayb_store::{ShardOutcome, ShardWork, ShardWorkKind};
use serde::Value;

use crate::wire::{read_frame, write_frame, CoordinatorStats, NetShardTask, Request, Response};

/// Tuning knobs for a [`Coordinator`].
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// A claim whose heartbeat is older than this is considered abandoned
    /// and may be expired (then re-claimed at a higher fencing token).
    pub stale_after: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            stale_after: Duration::from_secs(60),
        }
    }
}

/// A live claim on one shard.
struct ClaimSlot {
    /// The fencing token minted for this claim.
    token: u64,
    /// Label of the claiming worker (diagnostics).
    owner: String,
    /// Last heartbeat (claim or explicit heartbeat request).
    heartbeat: Instant,
}

/// One shard of one epoch.
#[derive(Default)]
struct ShardSlot {
    work: Option<ShardWork>,
    outcome: Option<ShardOutcome>,
    claim: Option<ClaimSlot>,
    /// Highest fencing token ever issued for this shard. Submissions are
    /// accepted only at exactly this token.
    last_token: u64,
}

impl ShardSlot {
    /// Drops the claim if its heartbeat lapsed. Returns whether it did.
    /// The token counter is *not* rewound: the next claim supersedes the
    /// expired one, which is what fences its holder off.
    fn expire_claim(&mut self, stale_after: Duration) -> bool {
        match &self.claim {
            Some(claim) if claim.heartbeat.elapsed() > stale_after => {
                self.claim = None;
                true
            }
            _ => false,
        }
    }

    /// Whether this shard still needs a worker: published, unfinished,
    /// unclaimed.
    fn claimable(&self) -> bool {
        self.work.is_some() && self.outcome.is_none() && self.claim.is_none()
    }
}

/// One open epoch.
struct EpochSlot {
    kind: ShardWorkKind,
    run_id: String,
    context: Option<Value>,
    shards: Vec<ShardSlot>,
}

/// Everything behind the mutex.
struct CoordState {
    /// Open epochs, ordered by name so `ClaimNext` scans deterministically.
    epochs: BTreeMap<String, EpochSlot>,
    /// Epoch name counter, never rewound (not even by [`Coordinator::wipe_state`]).
    next_epoch: u64,
    /// Incremented by [`Coordinator::wipe_state`] and baked into epoch
    /// names, so a "restarted" coordinator can never re-mint a pre-restart
    /// epoch name (a real restart achieves the same with its fresh process).
    boot: u64,
    claims_issued: u64,
    fenced_rejections: u64,
}

struct CoordShared {
    config: CoordinatorConfig,
    state: Mutex<CoordState>,
    /// Telemetry: request counters/latency histogram, claim/fence events.
    /// Lives outside the state mutex — the recorder's own locks are leaves.
    recorder: Recorder,
}

/// The coordinator server. Binding spawns an accept loop (plus one short
/// thread per connection); dropping the handle shuts the server down.
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<CoordShared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the coordinator to `addr` (e.g. `"127.0.0.1:4710"`, or port 0
    /// for an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the address cannot be resolved or
    /// bound.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: CoordinatorConfig) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(CoordShared {
            config,
            state: Mutex::new(CoordState {
                epochs: BTreeMap::new(),
                next_epoch: 0,
                boot: 0,
                claims_issued: 0,
                fenced_rejections: 0,
            }),
            recorder: Recorder::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("ayb-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_stop))?;
        Ok(Coordinator {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the coordinator actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's address as a `tcp://host:port` transport URL.
    pub fn url(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    /// The coordinator's event recorder. `ayb coordinate` attaches a
    /// stderr sink here so claim/fence events surface in the server log.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// The coordinator's metrics registry rendered in the text exposition
    /// format, with the state gauges refreshed first — exactly what a
    /// [`Request::Metrics`] frame returns over the wire.
    pub fn metrics_text(&self) -> String {
        let state = self.shared.state.lock().expect("coordinator state lock");
        refresh_state_gauges(&self.shared.recorder, &state);
        drop(state);
        self.shared.recorder.metrics().render_text()
    }

    /// A snapshot of the coordinator's counters.
    pub fn stats(&self) -> CoordinatorStats {
        let state = self.shared.state.lock().expect("coordinator state lock");
        CoordinatorStats {
            epochs: state.epochs.len(),
            open_shards: state
                .epochs
                .values()
                .flat_map(|epoch| &epoch.shards)
                .filter(|slot| slot.work.is_some() && slot.outcome.is_none())
                .count(),
            claims_issued: state.claims_issued,
            fenced_rejections: state.fenced_rejections,
        }
    }

    /// Human-readable one-line descriptions of every open epoch (stage,
    /// submitting run, progress, live claims with their owners and tokens) —
    /// what `ayb coordinate` prints as its periodic status.
    pub fn describe(&self) -> Vec<String> {
        let state = self.shared.state.lock().expect("coordinator state lock");
        state
            .epochs
            .iter()
            .map(|(name, epoch)| {
                let stage = match epoch.kind {
                    ShardWorkKind::Eval => "eval",
                    ShardWorkKind::Variation => "var",
                };
                let done = epoch
                    .shards
                    .iter()
                    .filter(|slot| slot.outcome.is_some())
                    .count();
                let claims: Vec<String> = epoch
                    .shards
                    .iter()
                    .enumerate()
                    .filter_map(|(shard, slot)| {
                        slot.claim
                            .as_ref()
                            .map(|claim| format!("{shard}:{}#{}", claim.owner, claim.token))
                    })
                    .collect();
                let claims = if claims.is_empty() {
                    String::new()
                } else {
                    format!(" claims [{}]", claims.join(", "))
                };
                format!(
                    "{name} ({stage}, run {run}): {done}/{total} shards done{claims}",
                    run = epoch.run_id,
                    total = epoch.shards.len(),
                )
            })
            .collect()
    }

    /// Drops every epoch — claims, published work and results alike — as if
    /// the coordinator process had been killed and restarted (state is in
    /// memory only, so that is exactly what a restart does). The chaos
    /// harness uses this to script coordinator crashes without fighting the
    /// OS for the listening port. Epoch names stay unique across wipes, so
    /// a pre-wipe epoch identifier can never be resurrected.
    pub fn wipe_state(&self) {
        let mut state = self.shared.state.lock().expect("coordinator state lock");
        state.epochs.clear();
        state.boot += 1;
    }

    /// Stops the accept loop and joins it. Dropping the handle does the
    /// same; this form merely makes the shutdown point explicit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How long the accept loop sleeps between polls of the non-blocking
/// listener (also bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket timeouts: a peer that stalls longer than this
/// mid-frame is dropped (its claim, if any, expires by heartbeat).
const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn accept_loop(listener: &TcpListener, shared: &Arc<CoordShared>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("ayb-net-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared));
                // Out of threads: drop the connection; the client retries or
                // falls back locally.
                drop(spawned);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<CoordShared>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    // Clients are connect-per-request, but serving until EOF costs nothing
    // and keeps the protocol honest for pipelined callers.
    while let Ok(request) = read_frame::<Request>(&mut stream) {
        let response = handle_request(shared, request);
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
    }
}

/// Refreshes the gauges derived from coordinator state (epoch and open
/// shard counts). Called with the state lock held, immediately before a
/// metrics rendering, so scrapes always see current values.
fn refresh_state_gauges(recorder: &Recorder, state: &CoordState) {
    let metrics = recorder.metrics();
    metrics.set_gauge("ayb_coord_epochs", state.epochs.len() as f64);
    metrics.set_gauge(
        "ayb_coord_open_shards",
        state
            .epochs
            .values()
            .flat_map(|epoch| &epoch.shards)
            .filter(|slot| slot.work.is_some() && slot.outcome.is_none())
            .count() as f64,
    );
}

/// An [`Event`] stamped with the coordinator's source label and the
/// shard coordinates every claim-lifecycle event shares.
fn coord_event(severity: Severity, kind: &str, run_id: &str, epoch: &str, shard: usize) -> Event {
    Event::new(severity, "coordinator", kind)
        .run(run_id)
        .epoch(epoch)
        .shard(shard as u64)
}

fn handle_request(shared: &CoordShared, request: Request) -> Response {
    let started = Instant::now();
    let label = request.label();
    let response = dispatch_request(shared, request);
    let metrics = shared.recorder.metrics();
    metrics.inc("ayb_coord_requests_total");
    metrics.inc(&format!("ayb_coord_requests_{label}_total"));
    metrics.observe("ayb_coord_request_seconds", started.elapsed().as_secs_f64());
    response
}

fn dispatch_request(shared: &CoordShared, request: Request) -> Response {
    let mut state = shared.state.lock().expect("coordinator state lock");
    let stale_after = shared.config.stale_after;
    match request {
        Request::OpenEpoch {
            kind,
            shard_count,
            run_id,
            context,
        } => {
            state.next_epoch += 1;
            let prefix = match kind {
                ShardWorkKind::Eval => "ep",
                ShardWorkKind::Variation => "var",
            };
            let epoch = format!("{prefix}-net-{}-{:04}", state.boot, state.next_epoch);
            let mut shards = Vec::with_capacity(shard_count);
            shards.resize_with(shard_count, ShardSlot::default);
            state.epochs.insert(
                epoch.clone(),
                EpochSlot {
                    kind,
                    run_id,
                    context,
                    shards,
                },
            );
            Response::EpochOpened { epoch }
        }
        Request::Publish { epoch, shard, work } => match state.epochs.get_mut(&epoch) {
            Some(slot) => {
                if shard >= slot.shards.len() {
                    slot.shards.resize_with(shard + 1, ShardSlot::default);
                }
                slot.shards[shard].work = Some(work);
                Response::Ok
            }
            None => unknown_epoch(&epoch),
        },
        Request::TryClaim {
            epoch,
            shard,
            owner,
        } => {
            let run_id = state
                .epochs
                .get(&epoch)
                .map(|slot| slot.run_id.clone())
                .unwrap_or_default();
            let Some((slot, counters)) = shard_slot(&mut state, &epoch, shard) else {
                return unknown_shard(&epoch, shard);
            };
            slot.expire_claim(stale_after);
            if slot.claimable() {
                slot.last_token += 1;
                let token = slot.last_token;
                let detail = format!("claim granted to `{owner}`");
                slot.claim = Some(ClaimSlot {
                    token,
                    owner,
                    heartbeat: Instant::now(),
                });
                *counters += 1;
                shared.recorder.metrics().inc("ayb_coord_claims_total");
                shared.recorder.emit(
                    coord_event(
                        Severity::Debug,
                        event_kind::SHARD_CLAIM,
                        &run_id,
                        &epoch,
                        shard,
                    )
                    .fence(token)
                    .detail(detail),
                );
                Response::ClaimGranted {
                    granted: true,
                    token,
                }
            } else {
                Response::ClaimGranted {
                    granted: false,
                    token: 0,
                }
            }
        }
        Request::Heartbeat {
            epoch,
            shard,
            token,
        } => {
            if let Some((slot, _)) = shard_slot(&mut state, &epoch, shard) {
                if let Some(claim) = &mut slot.claim {
                    if claim.token == token {
                        claim.heartbeat = Instant::now();
                    }
                }
            }
            // Advisory: a heartbeat against a stolen claim or a closed epoch
            // is not an error, just ineffective.
            Response::Ok
        }
        Request::Submit {
            epoch,
            shard,
            token,
            outcome,
        } => {
            let run_id = state
                .epochs
                .get(&epoch)
                .map(|slot| slot.run_id.clone())
                .unwrap_or_default();
            let Some((slot, _)) = shard_slot(&mut state, &epoch, shard) else {
                return unknown_shard(&epoch, shard);
            };
            if token != slot.last_token {
                state.fenced_rejections += 1;
                shared.recorder.metrics().inc("ayb_coord_fenced_total");
                shared.recorder.emit(
                    coord_event(
                        Severity::Warn,
                        event_kind::SHARD_FENCED,
                        &run_id,
                        &epoch,
                        shard,
                    )
                    .fence(token)
                    .detail("stale submit fenced off: token superseded"),
                );
                return Response::SubmitAck { accepted: false };
            }
            shared.recorder.emit(
                coord_event(
                    Severity::Debug,
                    event_kind::SHARD_SUBMIT,
                    &run_id,
                    &epoch,
                    shard,
                )
                .fence(token),
            );
            if slot.outcome.is_none() {
                slot.outcome = Some(outcome);
            }
            if slot
                .claim
                .as_ref()
                .is_some_and(|claim| claim.token == token)
            {
                slot.claim = None;
            }
            Response::SubmitAck { accepted: true }
        }
        Request::Fetch { epoch, shard } => match shard_slot(&mut state, &epoch, shard) {
            Some((slot, _)) => Response::Outcome {
                outcome: slot.outcome.clone(),
            },
            None => unknown_shard(&epoch, shard),
        },
        Request::Recover { epoch, shard } => {
            let run_id = state
                .epochs
                .get(&epoch)
                .map(|slot| slot.run_id.clone())
                .unwrap_or_default();
            match shard_slot(&mut state, &epoch, shard) {
                Some((slot, _)) => {
                    let owner = slot.claim.as_ref().map(|claim| claim.owner.clone());
                    let expired = slot.expire_claim(stale_after);
                    if expired {
                        shared.recorder.emit(
                            coord_event(
                                Severity::Warn,
                                event_kind::SHARD_RECOVER,
                                &run_id,
                                &epoch,
                                shard,
                            )
                            .detail(format!(
                                "stale claim of `{}` expired",
                                owner.unwrap_or_default()
                            )),
                        );
                    }
                    Response::Recovered { expired }
                }
                None => unknown_shard(&epoch, shard),
            }
        }
        Request::CloseEpoch { epoch } => {
            state.epochs.remove(&epoch);
            Response::Ok
        }
        Request::ClaimNext { owner } => {
            let mut claimed = None;
            let mut claims = 0;
            'epochs: for (name, epoch) in &mut state.epochs {
                for (shard, slot) in epoch.shards.iter_mut().enumerate() {
                    slot.expire_claim(stale_after);
                    if slot.claimable() {
                        slot.last_token += 1;
                        let token = slot.last_token;
                        slot.claim = Some(ClaimSlot {
                            token,
                            owner: owner.clone(),
                            heartbeat: Instant::now(),
                        });
                        claims += 1;
                        claimed = Some(NetShardTask {
                            run_id: epoch.run_id.clone(),
                            epoch: name.clone(),
                            shard,
                            token,
                            work: slot.work.clone().expect("claimable shard has work"),
                            context: epoch.context.clone(),
                        });
                        break 'epochs;
                    }
                }
            }
            state.claims_issued += claims;
            if let Some(task) = &claimed {
                shared.recorder.metrics().inc("ayb_coord_claims_total");
                shared.recorder.emit(
                    coord_event(
                        Severity::Debug,
                        event_kind::SHARD_CLAIM,
                        &task.run_id,
                        &task.epoch,
                        task.shard,
                    )
                    .fence(task.token)
                    .detail(format!("claim granted to `{owner}`")),
                );
            }
            Response::Task { task: claimed }
        }
        Request::Stats => {
            let stats = CoordinatorStats {
                epochs: state.epochs.len(),
                open_shards: state
                    .epochs
                    .values()
                    .flat_map(|epoch| &epoch.shards)
                    .filter(|slot| slot.work.is_some() && slot.outcome.is_none())
                    .count(),
                claims_issued: state.claims_issued,
                fenced_rejections: state.fenced_rejections,
            };
            Response::Stats { stats }
        }
        Request::Metrics => {
            refresh_state_gauges(&shared.recorder, &state);
            Response::Metrics {
                text: shared.recorder.metrics().render_text(),
            }
        }
    }
}

/// Looks up one shard slot, alongside a borrow of the claims-issued counter
/// (the borrow checker will not hand out `&mut state` twice).
fn shard_slot<'a>(
    state: &'a mut CoordState,
    epoch: &str,
    shard: usize,
) -> Option<(&'a mut ShardSlot, &'a mut u64)> {
    let CoordState {
        epochs,
        claims_issued,
        ..
    } = state;
    let slot = epochs.get_mut(epoch)?.shards.get_mut(shard)?;
    Some((slot, claims_issued))
}

fn unknown_epoch(epoch: &str) -> Response {
    Response::Error {
        message: format!("unknown epoch `{epoch}` (closed, or the coordinator restarted)"),
    }
}

fn unknown_shard(epoch: &str, shard: usize) -> Response {
    Response::Error {
        message: format!(
            "unknown shard {shard} of epoch `{epoch}` (closed, or the coordinator restarted)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TcpTransport;
    use ayb_moo::ShardTransport;

    fn coordinator(stale_after: Duration) -> Coordinator {
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig { stale_after })
            .expect("coordinator binds an ephemeral port")
    }

    fn transport(coordinator: &Coordinator) -> TcpTransport {
        TcpTransport::from_url(&coordinator.url()).expect("coordinator URL parses")
    }

    #[test]
    fn epoch_roundtrip_over_tcp() {
        let coordinator = coordinator(Duration::from_secs(60));
        let plane = transport(&coordinator);
        let epoch = plane.open_epoch(2).unwrap();
        plane
            .publish(&epoch, 0, &[vec![0.1, 0.2], vec![0.3, 0.4]])
            .unwrap();
        plane.publish(&epoch, 1, &[vec![0.5, 0.6]]).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);
        assert!(plane.try_claim(&epoch, 0).unwrap());
        assert!(!plane.try_claim(&epoch, 0).unwrap(), "claims are exclusive");
        plane.submit(&epoch, 0, &vec![None, None]).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(vec![None, None]));
        // A submitted shard cannot be re-claimed.
        assert!(!plane.try_claim(&epoch, 0).unwrap());
        plane.close_epoch(&epoch).unwrap();
        assert!(
            plane.fetch(&epoch, 0).is_err(),
            "a closed epoch is gone entirely"
        );
    }

    #[test]
    fn stale_claims_expire_and_reclaim_at_higher_token() {
        let coordinator = coordinator(Duration::from_millis(40));
        let plane = transport(&coordinator);
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![1.0]]).unwrap();
        let first = plane
            .try_claim_token(&epoch, 0, "w1")
            .unwrap()
            .expect("first claim granted");
        // Heartbeats keep the claim alive across the staleness bound...
        std::thread::sleep(Duration::from_millis(25));
        plane.heartbeat(&epoch, 0, first).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        assert!(
            !plane.recover(&epoch, 0).unwrap(),
            "heartbeat kept it fresh"
        );
        // ...then the worker hangs: the heartbeat lapses and recovery expires
        // the claim.
        std::thread::sleep(Duration::from_millis(60));
        assert!(plane.recover(&epoch, 0).unwrap());
        let second = plane
            .try_claim_token(&epoch, 0, "w2")
            .unwrap()
            .expect("shard reclaimable after expiry");
        assert!(second > first, "fencing tokens are monotonic per shard");
    }

    #[test]
    fn late_submission_from_stolen_claim_is_fenced_off() {
        let coordinator = coordinator(Duration::from_millis(30));
        let plane = transport(&coordinator);
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![1.0], vec![2.0]]).unwrap();
        let zombie = plane
            .try_claim_token(&epoch, 0, "zombie")
            .unwrap()
            .expect("zombie claims first");
        std::thread::sleep(Duration::from_millis(60));
        assert!(plane.recover(&epoch, 0).unwrap(), "hung claim expired");
        let fresh = plane
            .try_claim_token(&epoch, 0, "steward")
            .unwrap()
            .expect("steward re-claims");
        // The zombie wakes up and submits: rejected, nothing stored.
        let results = ShardOutcome::Eval {
            results: vec![None, None],
        };
        assert!(!plane
            .submit_with_token(&epoch, 0, zombie, &results)
            .unwrap());
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);
        // The steward's submission (highest token) lands.
        assert!(plane.submit_with_token(&epoch, 0, fresh, &results).unwrap());
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(vec![None, None]));
        let stats = coordinator.stats();
        assert_eq!(stats.fenced_rejections, 1);
        assert_eq!(stats.claims_issued, 2);
    }

    #[test]
    fn claim_next_hands_out_work_with_context() {
        let coordinator = coordinator(Duration::from_secs(60));
        let plane = transport(&coordinator).with_run_context(
            "run-0042",
            Value::Object(vec![("threads".to_string(), Value::Int(2))]),
        );
        let epoch = plane.open_typed_epoch(ShardWorkKind::Variation, 1).unwrap();
        plane
            .publish_work(
                &epoch,
                0,
                &ShardWork::Variation {
                    parameters: vec![0.5, 0.5],
                    mc_seed: 77,
                },
            )
            .unwrap();
        let task = plane
            .claim_next("worker-a")
            .unwrap()
            .expect("published work is claimable");
        assert_eq!(task.run_id, "run-0042");
        assert_eq!(task.epoch, epoch);
        assert_eq!(task.shard, 0);
        assert!(task.context.is_some(), "flow context travels with the task");
        assert!(matches!(
            task.work,
            ShardWork::Variation { mc_seed: 77, .. }
        ));
        // Nothing else to hand out while the claim is live.
        assert_eq!(plane.claim_next("worker-b").unwrap(), None);
        let description = coordinator.describe().join("\n");
        assert!(
            description.contains("run run-0042") && description.contains("worker-a#1"),
            "coordinator describes its claims: {description}"
        );
        let outcome = ShardOutcome::Variation(ayb_store::VariationOutcome {
            data: None,
            elapsed_seconds: 0.25,
        });
        assert!(plane.submit_task(&task, &outcome).unwrap());
        assert_eq!(plane.fetch_outcome(&epoch, 0).unwrap(), Some(outcome));
    }

    #[test]
    fn wipe_state_forgets_epochs_but_not_names() {
        let coordinator = coordinator(Duration::from_secs(60));
        let plane = transport(&coordinator);
        let before = plane.open_epoch(1).unwrap();
        plane.publish(&before, 0, &[vec![1.0]]).unwrap();
        coordinator.wipe_state();
        assert!(
            plane.fetch(&before, 0).is_err(),
            "pre-wipe epochs are unknown after the wipe"
        );
        let after = plane.open_epoch(1).unwrap();
        assert_ne!(before, after, "epoch names are never reused across wipes");
        assert_eq!(coordinator.stats().epochs, 1);
    }

    #[test]
    fn metrics_scrape_reports_claims_and_fences() {
        let coordinator = coordinator(Duration::from_millis(30));
        let plane = transport(&coordinator);
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![1.0]]).unwrap();
        let zombie = plane.try_claim_token(&epoch, 0, "zombie").unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(plane.recover(&epoch, 0).unwrap());
        let fresh = plane
            .try_claim_token(&epoch, 0, "steward")
            .unwrap()
            .unwrap();
        let results = ShardOutcome::Eval {
            results: vec![None],
        };
        assert!(!plane
            .submit_with_token(&epoch, 0, zombie, &results)
            .unwrap());
        assert!(plane.submit_with_token(&epoch, 0, fresh, &results).unwrap());
        let text = plane
            .coordinator_metrics()
            .expect("metrics scrape over the wire");
        assert!(text.contains("ayb_coord_claims_total 2"), "{text}");
        assert!(text.contains("ayb_coord_fenced_total 1"), "{text}");
        assert!(text.contains("ayb_coord_epochs 1"), "{text}");
        assert!(
            text.contains("ayb_coord_request_seconds_count"),
            "request latency histogram is exported: {text}"
        );
        // The local render agrees on the counters (the scrape itself has
        // bumped the request totals since, so no exact text equality).
        let local = coordinator.metrics_text();
        assert!(local.contains("ayb_coord_claims_total 2"), "{local}");
        assert!(local.contains("ayb_coord_fenced_total 1"), "{local}");
        // The coordinator's own event stream carries the fence forensics.
        let events = coordinator.recorder().recent();
        let fenced: Vec<_> = events
            .iter()
            .filter(|event| event.kind == event_kind::SHARD_FENCED)
            .collect();
        assert_eq!(fenced.len(), 1);
        assert_eq!(fenced[0].fence, Some(zombie));
        assert_eq!(
            events
                .iter()
                .filter(|event| event.kind == event_kind::SHARD_CLAIM)
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|event| event.kind == event_kind::SHARD_RECOVER)
                .count(),
            1
        );
    }

    #[test]
    fn transport_recorder_sees_both_sides_of_a_fenced_submit() {
        let coordinator = coordinator(Duration::from_millis(30));
        let recorder = Recorder::new();
        let plane = transport(&coordinator).with_recorder(recorder.clone());
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![1.0]]).unwrap();
        let zombie = plane.try_claim_token(&epoch, 0, "zombie").unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(plane.recover(&epoch, 0).unwrap());
        let fresh = plane
            .try_claim_token(&epoch, 0, "steward")
            .unwrap()
            .unwrap();
        let results = ShardOutcome::Eval {
            results: vec![None],
        };
        assert!(!plane
            .submit_with_token(&epoch, 0, zombie, &results)
            .unwrap());
        assert!(plane.submit_with_token(&epoch, 0, fresh, &results).unwrap());
        let events = recorder.recent();
        let fenced: Vec<_> = events
            .iter()
            .filter(|event| event.kind == event_kind::SHARD_FENCED)
            .collect();
        assert_eq!(fenced.len(), 1, "client records its own fenced submit");
        assert_eq!(fenced[0].fence, Some(zombie));
        assert_eq!(
            events
                .iter()
                .filter(|event| event.kind == event_kind::SHARD_SUBMIT)
                .count(),
            1
        );
        // Every round-trip landed in the latency histogram.
        let histogram = recorder
            .metrics()
            .histogram("ayb_shard_request_seconds")
            .expect("request latency histogram exists");
        assert_eq!(histogram.count(), plane.stats().requests);
    }

    #[test]
    fn requests_against_a_dead_coordinator_are_transport_errors() {
        let coordinator = coordinator(Duration::from_secs(60));
        let plane = transport(&coordinator);
        let epoch = plane.open_epoch(1).unwrap();
        coordinator.shutdown();
        let error = plane.fetch(&epoch, 0).expect_err("socket is gone");
        let ayb_moo::ShardError::Transport(message) = error;
        assert!(!message.is_empty());
    }
}
