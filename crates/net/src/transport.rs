//! The client side: a [`ShardTransport`] over TCP, plus the typed epoch API
//! the variation stage drives and the `claim_next` entry point job workers
//! poll.
//!
//! A [`TcpTransport`] holds no connection — every call dials the
//! coordinator, exchanges exactly one request/response frame and closes.
//! That makes the client trivially `Clone + Send + Sync` (clones share the
//! token table and the stats), keeps the coordinator free of per-client
//! connection state, and makes every call an independent failure domain:
//! any socket or protocol error surfaces as
//! [`ShardError::Transport`], which `drive_epoch` already converts into
//! "service this shard locally" after three strikes.
//!
//! Fencing is transparent to the `ShardTransport` consumer: a granted claim's
//! token is remembered per `(epoch, shard)` and attached to the matching
//! submit; a submission the coordinator fences off is *dropped silently*
//! (the shard's accepted result is identical by determinism) but counted in
//! [`TransportStats::fenced_rejections`].

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ayb_moo::{ShardError, ShardResults, ShardTransport};
use ayb_obs::{kind as event_kind, Event, Recorder, Severity};
use ayb_store::{ShardOutcome, ShardWork, ShardWorkKind};
use serde::Value;

use crate::wire::{read_frame, write_frame, NetShardTask, Request, Response};

/// Per-call socket timeouts. Generous: a coordinator that takes longer than
/// this per request is effectively down, and the caller's fallback path is
/// the right response.
const CALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Cumulative client-side transport counters, shared by all clones of one
/// [`TcpTransport`]. The flow folds these into its timings so the
/// transport's cost is measured, not guessed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportStats {
    /// Requests attempted (successful or not).
    pub requests: u64,
    /// Wall-clock seconds spent in request round-trips, cumulatively.
    pub request_seconds: f64,
    /// Submissions this client had fenced off (token superseded).
    pub fenced_rejections: u64,
}

/// A [`ShardTransport`] speaking the wire protocol of an
/// [`ayb_net::Coordinator`](crate::Coordinator).
#[derive(Clone)]
pub struct TcpTransport {
    /// Coordinator socket address, `host:port`.
    addr: String,
    /// Run identifier announced when opening epochs.
    run_id: String,
    /// Submitter context forwarded to workers (the run's flow config).
    context: Option<Value>,
    /// Fencing tokens of claims this client holds, per `(epoch, shard)`.
    tokens: Arc<Mutex<HashMap<(String, usize), u64>>>,
    stats: Arc<Mutex<TransportStats>>,
    /// Optional telemetry: request latency and claim/fence events.
    recorder: Option<Recorder>,
}

impl TcpTransport {
    /// A transport dialing `addr` (`host:port`). No connection is made until
    /// the first call.
    pub fn connect(addr: impl Into<String>) -> TcpTransport {
        TcpTransport {
            addr: addr.into(),
            run_id: String::new(),
            context: None,
            tokens: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(Mutex::new(TransportStats::default())),
            recorder: None,
        }
    }

    /// Builds a transport from a `tcp://host:port` URL.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a malformed URL (wrong scheme,
    /// missing host or port).
    pub fn from_url(url: &str) -> Result<TcpTransport, String> {
        crate::parse_transport_url(url).map(TcpTransport::connect)
    }

    /// The coordinator address this transport dials, as a `tcp://` URL.
    pub fn url(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    /// Attaches the submitting run's identity and context (its serialized
    /// flow configuration); both travel inside every subsequently opened
    /// epoch so that workers can service its shards store-free.
    #[must_use]
    pub fn with_run_context(mut self, run_id: &str, context: Value) -> TcpTransport {
        self.run_id = run_id.to_string();
        self.context = Some(context);
        self
    }

    /// Attaches an event recorder: every request round-trip lands in the
    /// `ayb_shard_request_seconds` histogram, and claim/fence outcomes are
    /// emitted as events alongside the [`TransportStats`] counters.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> TcpTransport {
        self.recorder = Some(recorder);
        self
    }

    /// A snapshot of the cumulative transport counters (shared across
    /// clones).
    pub fn stats(&self) -> TransportStats {
        *self.stats.lock().expect("transport stats lock")
    }

    /// An [`Event`] stamped with this transport's source label and run id.
    fn event(&self, severity: Severity, kind: &str) -> Event {
        let event = Event::new(severity, "transport", kind);
        if self.run_id.is_empty() {
            event
        } else {
            event.run(&self.run_id)
        }
    }

    /// Emits `event` when a recorder is attached; a no-op otherwise.
    fn emit(&self, event: Event) {
        if let Some(recorder) = &self.recorder {
            recorder.emit(event);
        }
    }

    /// One request/response exchange, with stats accounting. Protocol-level
    /// [`Response::Error`]s are converted into [`ShardError::Transport`]
    /// here so callers only ever see the ordinary response variants.
    fn call(&self, request: &Request) -> Result<Response, ShardError> {
        let started = Instant::now();
        let outcome = self.call_inner(request);
        let elapsed = started.elapsed().as_secs_f64();
        {
            let mut stats = self.stats.lock().expect("transport stats lock");
            stats.requests += 1;
            stats.request_seconds += elapsed;
        }
        if let Some(recorder) = &self.recorder {
            recorder
                .metrics()
                .observe("ayb_shard_request_seconds", elapsed);
            recorder.emit(
                self.event(Severity::Debug, event_kind::SHARD_REQUEST)
                    .value(elapsed)
                    .detail(request.label()),
            );
        }
        match outcome? {
            Response::Error { message } => Err(ShardError::Transport(message)),
            response => Ok(response),
        }
    }

    fn call_inner(&self, request: &Request) -> Result<Response, ShardError> {
        let fail = |e: std::io::Error| ShardError::Transport(format!("{}: {e}", self.addr));
        let mut stream = TcpStream::connect(&self.addr).map_err(fail)?;
        stream.set_read_timeout(Some(CALL_TIMEOUT)).map_err(fail)?;
        stream.set_write_timeout(Some(CALL_TIMEOUT)).map_err(fail)?;
        write_frame(&mut stream, request).map_err(fail)?;
        read_frame(&mut stream).map_err(fail)
    }

    fn unexpected(response: &Response) -> ShardError {
        ShardError::Transport(format!("unexpected coordinator response: {response:?}"))
    }

    // ------------------------------------------------------------------
    // Typed epoch API (mirrors `ShardDataPlane`'s; the variation stage and
    // the `ShardTransport` impl below are both thin layers over these).
    // ------------------------------------------------------------------

    /// Opens a typed epoch of `shard_count` shards.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is unreachable
    /// or answers out of protocol.
    pub fn open_typed_epoch(
        &self,
        kind: ShardWorkKind,
        shard_count: usize,
    ) -> Result<String, ShardError> {
        match self.call(&Request::OpenEpoch {
            kind,
            shard_count,
            run_id: self.run_id.clone(),
            context: self.context.clone(),
        })? {
            Response::EpochOpened { epoch } => Ok(epoch),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Publishes shard `shard`'s typed work payload.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch is unknown or the
    /// coordinator is unreachable.
    pub fn publish_work(
        &self,
        epoch: &str,
        shard: usize,
        work: &ShardWork,
    ) -> Result<(), ShardError> {
        match self.call(&Request::Publish {
            epoch: epoch.to_string(),
            shard,
            work: work.clone(),
        })? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Attempts to claim shard `shard`, returning the claim's fencing token
    /// when granted (and remembering it for the matching submit).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch is unknown or the
    /// coordinator is unreachable.
    pub fn try_claim_token(
        &self,
        epoch: &str,
        shard: usize,
        owner: &str,
    ) -> Result<Option<u64>, ShardError> {
        match self.call(&Request::TryClaim {
            epoch: epoch.to_string(),
            shard,
            owner: owner.to_string(),
        })? {
            Response::ClaimGranted {
                granted: true,
                token,
            } => {
                self.tokens
                    .lock()
                    .expect("transport token lock")
                    .insert((epoch.to_string(), shard), token);
                self.emit(
                    self.event(Severity::Debug, event_kind::SHARD_CLAIM)
                        .epoch(epoch)
                        .shard(shard as u64)
                        .fence(token)
                        .detail(format!("claim granted to `{owner}`")),
                );
                Ok(Some(token))
            }
            Response::ClaimGranted { granted: false, .. } => Ok(None),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Refreshes the heartbeat of the claim holding `token`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is
    /// unreachable. (A stolen claim's heartbeat is silently ineffective.)
    pub fn heartbeat(&self, epoch: &str, shard: usize, token: u64) -> Result<(), ShardError> {
        match self.call(&Request::Heartbeat {
            epoch: epoch.to_string(),
            shard,
            token,
        })? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Submits a typed outcome under this client's remembered token for the
    /// shard (token 0 — "never claimed" — when there is none). A fenced-off
    /// submission is counted and dropped: by determinism the accepted result
    /// is identical, so the caller need not care.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch is unknown or the
    /// coordinator is unreachable.
    pub fn submit_outcome(
        &self,
        epoch: &str,
        shard: usize,
        outcome: &ShardOutcome,
    ) -> Result<(), ShardError> {
        let token = self
            .tokens
            .lock()
            .expect("transport token lock")
            .get(&(epoch.to_string(), shard))
            .copied()
            .unwrap_or(0);
        self.submit_with_token(epoch, shard, token, outcome)
            .map(|_accepted| ())
    }

    /// Submits a typed outcome under an explicit fencing token, returning
    /// whether the coordinator accepted it (`false`: fenced off).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch is unknown or the
    /// coordinator is unreachable.
    pub fn submit_with_token(
        &self,
        epoch: &str,
        shard: usize,
        token: u64,
        outcome: &ShardOutcome,
    ) -> Result<bool, ShardError> {
        match self.call(&Request::Submit {
            epoch: epoch.to_string(),
            shard,
            token,
            outcome: outcome.clone(),
        })? {
            Response::SubmitAck { accepted } => {
                if !accepted {
                    self.stats
                        .lock()
                        .expect("transport stats lock")
                        .fenced_rejections += 1;
                    self.emit(
                        self.event(Severity::Warn, event_kind::SHARD_FENCED)
                            .epoch(epoch)
                            .shard(shard as u64)
                            .fence(token)
                            .detail("submit fenced off: claim was stolen"),
                    );
                } else {
                    self.emit(
                        self.event(Severity::Debug, event_kind::SHARD_SUBMIT)
                            .epoch(epoch)
                            .shard(shard as u64)
                            .fence(token),
                    );
                }
                Ok(accepted)
            }
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches shard `shard`'s typed outcome, if one has been accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch is unknown or the
    /// coordinator is unreachable.
    pub fn fetch_outcome(
        &self,
        epoch: &str,
        shard: usize,
    ) -> Result<Option<ShardOutcome>, ShardError> {
        match self.call(&Request::Fetch {
            epoch: epoch.to_string(),
            shard,
        })? {
            Response::Outcome { outcome } => Ok(outcome),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Claims the next available shard of *any* open epoch for `owner`,
    /// returning the self-contained task (work + token + submitter context)
    /// or `None` when the coordinator has nothing to hand out. This is the
    /// entry point `ayb serve --transport tcp://…` workers poll; note the
    /// worker needs no access to the submitter's store.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is
    /// unreachable.
    pub fn claim_next(&self, owner: &str) -> Result<Option<NetShardTask>, ShardError> {
        match self.call(&Request::ClaimNext {
            owner: owner.to_string(),
        })? {
            Response::Task { task } => Ok(task),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Submits the outcome of a task claimed via [`TcpTransport::claim_next`]
    /// under the task's own token. Returns whether it was accepted
    /// (`false`: this worker was presumed hung and its claim was stolen; the
    /// result was discarded).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is
    /// unreachable (the epoch may legitimately be gone if the submitter
    /// already finished or abandoned it).
    pub fn submit_task(
        &self,
        task: &NetShardTask,
        outcome: &ShardOutcome,
    ) -> Result<bool, ShardError> {
        self.submit_with_token(&task.epoch, task.shard, task.token, outcome)
    }

    /// Requests the coordinator's counters.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is
    /// unreachable.
    pub fn coordinator_stats(&self) -> Result<crate::CoordinatorStats, ShardError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Scrapes the coordinator's metrics registry in the text exposition
    /// format — what `ayb top --transport tcp://…` renders for a live
    /// fleet view.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the coordinator is
    /// unreachable or predates the `Metrics` request.
    pub fn coordinator_metrics(&self) -> Result<String, ShardError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(Self::unexpected(&other)),
        }
    }
}

impl ShardTransport for TcpTransport {
    fn open_epoch(&self, shard_count: usize) -> Result<String, ShardError> {
        self.open_typed_epoch(ShardWorkKind::Eval, shard_count)
    }

    fn publish(
        &self,
        epoch: &str,
        shard: usize,
        parameters: &[Vec<f64>],
    ) -> Result<(), ShardError> {
        self.publish_work(
            epoch,
            shard,
            &ShardWork::Eval {
                parameters: parameters.to_vec(),
            },
        )
    }

    fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        self.try_claim_token(epoch, shard, "shard-submitter")
            .map(|token| token.is_some())
    }

    fn submit(&self, epoch: &str, shard: usize, results: &ShardResults) -> Result<(), ShardError> {
        self.submit_outcome(
            epoch,
            shard,
            &ShardOutcome::Eval {
                results: results.clone(),
            },
        )
    }

    fn fetch(&self, epoch: &str, shard: usize) -> Result<Option<ShardResults>, ShardError> {
        match self.fetch_outcome(epoch, shard)? {
            Some(ShardOutcome::Eval { results }) => Ok(Some(results)),
            // An outcome of the wrong shape is unusable; leave the shard
            // pending so it is (re-)evaluated instead.
            Some(ShardOutcome::Variation(_) | ShardOutcome::VariationBatch { .. }) | None => {
                Ok(None)
            }
        }
    }

    fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        match self.call(&Request::Recover {
            epoch: epoch.to_string(),
            shard,
        })? {
            Response::Recovered { expired } => Ok(expired),
            other => Err(Self::unexpected(&other)),
        }
    }

    fn close_epoch(&self, epoch: &str) -> Result<(), ShardError> {
        match self.call(&Request::CloseEpoch {
            epoch: epoch.to_string(),
        })? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}

/// A guard refreshing one network claim's heartbeat every `interval` from a
/// background thread, for as long as it lives — the network analogue of the
/// store's `ClaimHeartbeat`. Job workers hold one while servicing a
/// [`NetShardTask`] so a long evaluation is not mistaken for a hang.
pub struct ClaimPulse {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl ClaimPulse {
    /// Starts heartbeating `task`'s claim through `transport`.
    pub fn start(transport: TcpTransport, task: &NetShardTask, interval: Duration) -> ClaimPulse {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let (epoch, shard, token) = (task.epoch.clone(), task.shard, task.token);
        let thread = std::thread::Builder::new()
            .name("ayb-net-pulse".to_string())
            .spawn(move || {
                let (lock, signal) = &*thread_stop;
                let mut stopped = lock.lock().expect("claim pulse lock");
                loop {
                    let (next, timeout) = signal
                        .wait_timeout(stopped, interval)
                        .expect("claim pulse lock");
                    stopped = next;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        // Release the lock across the network call so a
                        // concurrent Drop is never blocked behind a slow
                        // coordinator. Best effort: a missed beat at worst
                        // lets the claim be stolen, which fencing makes safe.
                        drop(stopped);
                        let _ = transport.heartbeat(&epoch, shard, token);
                        stopped = lock.lock().expect("claim pulse lock");
                    }
                }
            })
            .ok();
        ClaimPulse { stop, thread }
    }
}

impl Drop for ClaimPulse {
    fn drop(&mut self) {
        let (lock, signal) = &*self.stop;
        *lock.lock().expect("claim pulse lock") = true;
        signal.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
