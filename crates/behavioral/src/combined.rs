//! The combined performance + variation behavioural model (paper §3.5, §4.4).
//!
//! This is the artifact the whole flow exists to produce. It packages:
//!
//! * the **performance model**: the Pareto-optimal (gain, phase-margin) points
//!   and the designable parameters that produce them (§3.3),
//! * the **variation model**: the relative performance variation (ΔGain %,
//!   ΔPM %) measured by Monte Carlo at every Pareto point (§3.4),
//! * the **table models** used to interpolate between the sampled points with
//!   cubic splines and no extrapolation (§3.5),
//!
//! and implements the model-use step of §4.4 / Table 3: given a required
//! specification, look up the variation, *retarget* the nominal performance so
//! the specification still holds at the process extremes, and interpolate the
//! designable parameters that deliver the retargeted performance.

use crate::spec::OtaSpec;
use ayb_circuit::DesignPoint;
use ayb_table::{DimensionControl, Table1d, Table2d, TableError, TableFile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Pareto-optimal design point annotated with its Monte Carlo variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPointData {
    /// Nominal open-loop gain in dB.
    pub gain_db: f64,
    /// Nominal phase margin in degrees.
    pub phase_margin_deg: f64,
    /// Relative gain variation in percent (±, at the chosen k·σ level).
    pub gain_delta_percent: f64,
    /// Relative phase-margin variation in percent.
    pub pm_delta_percent: f64,
    /// Nominal unity-gain frequency in hertz.
    pub unity_gain_hz: f64,
    /// Designable parameters (physical values) of this candidate.
    pub parameters: DesignPoint,
}

/// Result of the retargeting step (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetargetedPerformance {
    /// Specification the retargeting was computed for.
    pub required_gain_db: f64,
    /// Required phase margin of the specification.
    pub required_pm_deg: f64,
    /// Interpolated gain variation (%) at the required gain.
    pub gain_variation_percent: f64,
    /// Interpolated phase-margin variation (%) at the required phase margin.
    pub pm_variation_percent: f64,
    /// New (retargeted) nominal gain that guarantees the spec at the process extremes.
    pub new_gain_db: f64,
    /// New (retargeted) nominal phase margin.
    pub new_pm_deg: f64,
}

/// Error type for model construction and use.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Fewer Pareto points than needed to build spline tables.
    NotEnoughData(usize),
    /// A required designable parameter is missing from some Pareto point.
    MissingParameter(String),
    /// A table lookup failed (typically an out-of-range request).
    Table(TableError),
    /// The requested specification cannot be met by any point of the model.
    SpecNotAchievable {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotEnoughData(n) => {
                write!(
                    f,
                    "need at least 3 Pareto points to build the model, got {n}"
                )
            }
            ModelError::MissingParameter(name) => {
                write!(f, "pareto point is missing designable parameter `{name}`")
            }
            ModelError::Table(e) => write!(f, "table lookup failed: {e}"),
            ModelError::SpecNotAchievable { reason } => {
                write!(f, "specification not achievable by the model: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<TableError> for ModelError {
    fn from(e: TableError) -> Self {
        ModelError::Table(e)
    }
}

/// The combined performance and variation behavioural model of the OTA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedOtaModel {
    points: Vec<ParetoPointData>,
    parameter_names: Vec<String>,
    /// k·σ level the variation percentages correspond to.
    pub sigma_level: f64,
    gain_delta_table: Table1d,
    pm_delta_table: Table1d,
    pm_of_gain_table: Table1d,
    unity_gain_table: Table1d,
    parameter_tables: BTreeMap<String, Table2d>,
}

impl CombinedOtaModel {
    /// Builds the model from annotated Pareto points.
    ///
    /// `sigma_level` records the k·σ level at which the variation percentages
    /// were computed (3.0 for the conventional ±3 σ process extremes).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than three points are supplied or the points
    /// do not all carry the same designable parameters.
    pub fn from_pareto_data(
        mut points: Vec<ParetoPointData>,
        sigma_level: f64,
    ) -> Result<Self, ModelError> {
        if points.len() < 3 {
            return Err(ModelError::NotEnoughData(points.len()));
        }
        points.sort_by(|a, b| {
            a.gain_db
                .partial_cmp(&b.gain_db)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let parameter_names: Vec<String> = points[0]
            .parameters
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        for p in &points {
            for name in &parameter_names {
                if p.parameters.get(name).is_none() {
                    return Err(ModelError::MissingParameter(name.clone()));
                }
            }
        }

        let gains: Vec<f64> = points.iter().map(|p| p.gain_db).collect();
        let pms: Vec<f64> = points.iter().map(|p| p.phase_margin_deg).collect();
        let gain_deltas: Vec<f64> = points.iter().map(|p| p.gain_delta_percent).collect();
        let pm_deltas: Vec<f64> = points.iter().map(|p| p.pm_delta_percent).collect();
        let unity: Vec<f64> = points.iter().map(|p| p.unity_gain_hz).collect();

        // The variation tables are keyed the way the paper's Verilog-A module
        // queries them: gain_delta(gain) and pm_delta(pm).
        let control = DimensionControl::paper_default();
        let gain_delta_table = Table1d::new(&gains, &gain_deltas, control)?;
        let mut pm_sorted: Vec<(f64, f64)> =
            pms.iter().copied().zip(pm_deltas.iter().copied()).collect();
        pm_sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let pm_x: Vec<f64> = pm_sorted.iter().map(|p| p.0).collect();
        let pm_y: Vec<f64> = pm_sorted.iter().map(|p| p.1).collect();
        let pm_delta_table = Table1d::new(&pm_x, &pm_y, control)?;
        let pm_of_gain_table = Table1d::new(&gains, &pms, control)?;
        let unity_gain_table = Table1d::new(&gains, &unity, control)?;

        let mut parameter_tables = BTreeMap::new();
        for name in &parameter_names {
            let values: Vec<f64> = points
                .iter()
                .map(|p| p.parameters.get(name).expect("validated above"))
                .collect();
            parameter_tables.insert(
                name.clone(),
                Table2d::new(&gains, &pms, &values)?.with_neighbours(4),
            );
        }

        Ok(CombinedOtaModel {
            points,
            parameter_names,
            sigma_level,
            gain_delta_table,
            pm_delta_table,
            pm_of_gain_table,
            unity_gain_table,
            parameter_tables,
        })
    }

    /// The annotated Pareto points the model was built from, sorted by gain.
    pub fn points(&self) -> &[ParetoPointData] {
        &self.points
    }

    /// Names of the designable parameters carried by the model.
    pub fn parameter_names(&self) -> &[String] {
        &self.parameter_names
    }

    /// Range of gains covered by the model in dB.
    pub fn gain_range_db(&self) -> (f64, f64) {
        self.gain_delta_table.domain()
    }

    /// Range of phase margins covered by the model in degrees.
    pub fn pm_range_deg(&self) -> (f64, f64) {
        self.pm_delta_table.domain()
    }

    /// Interpolated gain variation (%) at a nominal gain (the
    /// `$table_model(gain, "gain_delta.tbl", "3E")` call of §4.4).
    ///
    /// # Errors
    ///
    /// Returns an error if the gain lies outside the modelled range.
    pub fn gain_variation_percent(&self, gain_db: f64) -> Result<f64, ModelError> {
        Ok(self.gain_delta_table.lookup(gain_db)?)
    }

    /// Interpolated phase-margin variation (%) at a nominal phase margin.
    ///
    /// # Errors
    ///
    /// Returns an error if the phase margin lies outside the modelled range.
    pub fn pm_variation_percent(&self, pm_deg: f64) -> Result<f64, ModelError> {
        Ok(self.pm_delta_table.lookup(pm_deg)?)
    }

    /// Nominal phase margin delivered by the Pareto front at a given gain
    /// (the front trades the two off monotonically).
    ///
    /// # Errors
    ///
    /// Returns an error if the gain lies outside the modelled range.
    pub fn pm_at_gain(&self, gain_db: f64) -> Result<f64, ModelError> {
        Ok(self.pm_of_gain_table.lookup(gain_db)?)
    }

    /// Nominal unity-gain frequency at a given gain.
    ///
    /// # Errors
    ///
    /// Returns an error if the gain lies outside the modelled range.
    pub fn unity_gain_at(&self, gain_db: f64) -> Result<f64, ModelError> {
        Ok(self.unity_gain_table.lookup(gain_db)?)
    }

    /// The retargeting step of §4.4 / Table 3.
    ///
    /// The required performance is increased by the interpolated variation so
    /// that the worst-case (process-extreme) performance still meets the
    /// specification: `new = required · (1 + Δ/100)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the required values fall outside the modelled range.
    pub fn retarget(&self, spec: &OtaSpec) -> Result<RetargetedPerformance, ModelError> {
        let gain_variation = self.gain_variation_percent(spec.min_gain_db)?;
        let pm_variation =
            self.pm_variation_percent(spec.min_phase_margin_deg.max(self.pm_range_deg().0))?;
        Ok(RetargetedPerformance {
            required_gain_db: spec.min_gain_db,
            required_pm_deg: spec.min_phase_margin_deg,
            gain_variation_percent: gain_variation,
            pm_variation_percent: pm_variation,
            new_gain_db: spec.min_gain_db * (1.0 + gain_variation / 100.0),
            new_pm_deg: spec.min_phase_margin_deg * (1.0 + pm_variation / 100.0),
        })
    }

    /// Interpolates the designable parameters that deliver a given nominal
    /// (gain, phase-margin) performance — the `lp1..lp4 = $table_model(...)`
    /// step of the paper's Verilog-A module.
    ///
    /// # Errors
    ///
    /// Returns an error if the query lies outside the modelled performance region.
    pub fn parameters_for(&self, gain_db: f64, pm_deg: f64) -> Result<DesignPoint, ModelError> {
        let mut point = DesignPoint::new();
        for name in &self.parameter_names {
            let table = &self.parameter_tables[name];
            point.set(name.clone(), table.lookup(gain_db, pm_deg)?);
        }
        Ok(point)
    }

    /// Full model-use flow: retarget the specification, pick the phase margin
    /// the front actually offers at the retargeted gain, and interpolate the
    /// designable parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SpecNotAchievable`] when the retargeted
    /// performance lies outside the Pareto front stored in the model.
    pub fn design_for_spec(&self, spec: &OtaSpec) -> Result<ModelDesign, ModelError> {
        let retarget = self.retarget(spec)?;
        let (gain_lo, gain_hi) = self.gain_range_db();
        if retarget.new_gain_db < gain_lo || retarget.new_gain_db > gain_hi {
            return Err(ModelError::SpecNotAchievable {
                reason: format!(
                    "retargeted gain {:.2} dB outside modelled range [{gain_lo:.2}, {gain_hi:.2}] dB",
                    retarget.new_gain_db
                ),
            });
        }
        // The front offers a specific phase margin at this gain; the achieved
        // PM must (after its own retargeting margin) still meet the spec.
        // The cubic spline can overshoot slightly beyond the sampled PM range,
        // so clamp back into the modelled region before the 2-D lookups.
        let (pm_lo, pm_hi) = self.pm_range_deg();
        let front_pm = self.pm_at_gain(retarget.new_gain_db)?.clamp(pm_lo, pm_hi);
        let worst_case_pm = front_pm * (1.0 - retarget.pm_variation_percent / 100.0);
        if worst_case_pm < spec.min_phase_margin_deg {
            return Err(ModelError::SpecNotAchievable {
                reason: format!(
                    "front offers {front_pm:.2}° at {:.2} dB; worst case {worst_case_pm:.2}° < required {:.2}°",
                    retarget.new_gain_db, spec.min_phase_margin_deg
                ),
            });
        }
        let parameters = self.parameters_for(retarget.new_gain_db, front_pm)?;
        Ok(ModelDesign {
            retarget,
            nominal_pm_deg: front_pm,
            worst_case_pm_deg: worst_case_pm,
            predicted_unity_gain_hz: self.unity_gain_at(retarget.new_gain_db)?,
            parameters,
        })
    }

    /// Exports the model's lookup tables in the paper's `.tbl` format:
    /// `gain_delta.tbl`, `pm_delta.tbl` and one `<param>_data.tbl` per
    /// designable parameter.
    pub fn export_table_files(&self) -> BTreeMap<String, TableFile> {
        let mut files = BTreeMap::new();
        let mut gain_delta = TableFile::new(1);
        let mut pm_delta = TableFile::new(1);
        for p in &self.points {
            gain_delta
                .push_row(vec![p.gain_db, p.gain_delta_percent])
                .expect("row width is fixed");
            pm_delta
                .push_row(vec![p.phase_margin_deg, p.pm_delta_percent])
                .expect("row width is fixed");
        }
        files.insert("gain_delta.tbl".to_string(), gain_delta);
        files.insert("pm_delta.tbl".to_string(), pm_delta);
        for name in &self.parameter_names {
            let mut file = TableFile::new(2);
            for p in &self.points {
                file.push_row(vec![
                    p.gain_db,
                    p.phase_margin_deg,
                    p.parameters.get(name).expect("validated"),
                ])
                .expect("row width is fixed");
            }
            files.insert(format!("{name}_data.tbl"), file);
        }
        files
    }
}

/// Outcome of [`CombinedOtaModel::design_for_spec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDesign {
    /// The retargeted performance values (Table 3).
    pub retarget: RetargetedPerformance,
    /// Nominal phase margin the front offers at the retargeted gain.
    pub nominal_pm_deg: f64,
    /// Worst-case phase margin after variation.
    pub worst_case_pm_deg: f64,
    /// Predicted unity-gain frequency of the selected design.
    pub predicted_unity_gain_hz: f64,
    /// Interpolated designable parameters.
    pub parameters: DesignPoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic Pareto data resembling the paper's Table 2: gain 49.7–51.7 dB
    /// trading off against PM 73–76.5°, variation shrinking as gain grows.
    fn synthetic_points() -> Vec<ParetoPointData> {
        (0..20)
            .map(|i| {
                let gain = 49.7 + i as f64 * 0.1;
                let pm = 76.5 - i as f64 * 0.17;
                ParetoPointData {
                    gain_db: gain,
                    phase_margin_deg: pm,
                    gain_delta_percent: 0.55 - i as f64 * 0.006,
                    pm_delta_percent: 1.45 + i as f64 * 0.015,
                    unity_gain_hz: 8e6 + i as f64 * 2e5,
                    parameters: DesignPoint::new()
                        .with("w1", 20e-6 + i as f64 * 1.5e-6)
                        .with("l1", 1.2e-6 - i as f64 * 0.02e-6),
                }
            })
            .collect()
    }

    fn model() -> CombinedOtaModel {
        CombinedOtaModel::from_pareto_data(synthetic_points(), 3.0).unwrap()
    }

    #[test]
    fn construction_requires_consistent_points() {
        assert!(matches!(
            CombinedOtaModel::from_pareto_data(synthetic_points()[..2].to_vec(), 3.0),
            Err(ModelError::NotEnoughData(2))
        ));
        let mut bad = synthetic_points();
        bad[5].parameters = DesignPoint::new().with("w1", 1e-6); // missing l1
        assert!(matches!(
            CombinedOtaModel::from_pareto_data(bad, 3.0),
            Err(ModelError::MissingParameter(_))
        ));
    }

    #[test]
    fn variation_lookup_matches_paper_style_values() {
        let m = model();
        let delta = m.gain_variation_percent(50.0).unwrap();
        assert!((0.4..0.6).contains(&delta), "delta = {delta}");
        // Higher gain designs have lower gain variation in the synthetic set.
        assert!(m.gain_variation_percent(51.5).unwrap() < delta);
        // Out of range is rejected (no extrapolation, as in the paper).
        assert!(m.gain_variation_percent(60.0).is_err());
    }

    #[test]
    fn retarget_reproduces_table3_arithmetic() {
        let m = model();
        let spec = OtaSpec::new(50.0, 74.0);
        let r = m.retarget(&spec).unwrap();
        let expected_gain = 50.0 * (1.0 + r.gain_variation_percent / 100.0);
        assert!((r.new_gain_db - expected_gain).abs() < 1e-12);
        assert!(r.new_gain_db > 50.0 && r.new_gain_db < 50.6);
        assert!(r.new_pm_deg > 74.0);
    }

    #[test]
    fn design_for_spec_returns_parameters_inside_model_range() {
        let m = model();
        let design = m.design_for_spec(&OtaSpec::new(50.0, 74.0)).unwrap();
        let w1 = design.parameters.require("w1");
        let l1 = design.parameters.require("l1");
        assert!((20e-6..50e-6).contains(&w1));
        assert!((0.7e-6..1.3e-6).contains(&l1));
        assert!(design.worst_case_pm_deg >= 74.0);
        assert!(design.predicted_unity_gain_hz > 1e6);
    }

    #[test]
    fn unreachable_spec_is_reported() {
        let m = model();
        let err = m.design_for_spec(&OtaSpec::new(51.69, 76.0)).unwrap_err();
        assert!(matches!(
            err,
            ModelError::SpecNotAchievable { .. } | ModelError::Table(_)
        ));
        let err2 = m.design_for_spec(&OtaSpec::new(55.0, 60.0)).unwrap_err();
        assert!(matches!(
            err2,
            ModelError::SpecNotAchievable { .. } | ModelError::Table(_)
        ));
    }

    #[test]
    fn exported_tables_match_paper_file_set() {
        let m = model();
        let files = m.export_table_files();
        assert!(files.contains_key("gain_delta.tbl"));
        assert!(files.contains_key("pm_delta.tbl"));
        assert!(files.contains_key("w1_data.tbl"));
        assert!(files.contains_key("l1_data.tbl"));
        assert_eq!(files["gain_delta.tbl"].len(), 20);
        assert_eq!(files["w1_data.tbl"].inputs, 2);
    }

    #[test]
    fn model_serializes_and_reloads() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let back: CombinedOtaModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points().len(), 20);
        assert!(
            (back.gain_variation_percent(50.0).unwrap() - m.gain_variation_percent(50.0).unwrap())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn points_are_sorted_by_gain() {
        let mut pts = synthetic_points();
        pts.reverse();
        let m = CombinedOtaModel::from_pareto_data(pts, 3.0).unwrap();
        assert!(m.points().windows(2).all(|w| w[0].gain_db <= w[1].gain_db));
        assert_eq!(m.parameter_names().len(), 2);
        assert_eq!(m.sigma_level, 3.0);
    }
}
