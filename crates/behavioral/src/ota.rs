//! Behavioural OTA macromodel.
//!
//! The behavioural view of the OTA used throughout the paper: an amplifier
//! described only by its measured open-loop gain, unity-gain bandwidth and
//! phase margin. A two-pole transfer function is reconstructed from those
//! three numbers so the model can reproduce the frequency response the paper
//! compares against transistor-level simulation in Figure 8.

use ayb_circuit::filter::OtaMacroSpec;
use ayb_sim::Complex;
use serde::{Deserialize, Serialize};

/// Behavioural description of one OTA design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaBehavior {
    /// Open-loop (low-frequency) gain in dB.
    pub gain_db: f64,
    /// Phase margin in degrees.
    pub phase_margin_deg: f64,
    /// Unity-gain frequency in hertz.
    pub unity_gain_hz: f64,
}

impl OtaBehavior {
    /// Creates a behavioural description from measured figures of merit.
    pub fn new(gain_db: f64, phase_margin_deg: f64, unity_gain_hz: f64) -> Self {
        OtaBehavior {
            gain_db,
            phase_margin_deg,
            unity_gain_hz,
        }
    }

    /// Linear (not dB) low-frequency gain.
    pub fn gain_linear(&self) -> f64 {
        10f64.powf(self.gain_db / 20.0)
    }

    /// Dominant-pole frequency implied by the gain and unity-gain frequency
    /// (`f_p1 = f_u / A_0` for a single-pole roll-off).
    pub fn dominant_pole_hz(&self) -> f64 {
        self.unity_gain_hz / self.gain_linear()
    }

    /// Non-dominant pole frequency implied by the phase margin.
    ///
    /// With a two-pole model, the phase at the unity-gain frequency is
    /// `−90° − atan(f_u / f_p2)`, so `f_p2 = f_u / tan(90° − PM)`. Returns
    /// `None` when the phase margin is 90° or more (no second pole needed).
    pub fn second_pole_hz(&self) -> Option<f64> {
        if self.phase_margin_deg >= 90.0 {
            return None;
        }
        let excess = (90.0 - self.phase_margin_deg).to_radians();
        Some(self.unity_gain_hz / excess.tan())
    }

    /// Complex transfer function of the reconstructed two-pole model at `frequency`.
    pub fn transfer(&self, frequency: f64) -> Complex {
        let a0 = Complex::from_real(self.gain_linear());
        let p1 = Complex::ONE + Complex::new(0.0, frequency / self.dominant_pole_hz());
        let denom = match self.second_pole_hz() {
            Some(f_p2) => p1 * (Complex::ONE + Complex::new(0.0, frequency / f_p2)),
            None => p1,
        };
        a0 / denom
    }

    /// Frequency response over a list of frequencies.
    pub fn frequency_response(&self, frequencies: &[f64]) -> Vec<Complex> {
        frequencies.iter().map(|&f| self.transfer(f)).collect()
    }

    /// Gain of the behavioural model in dB at one frequency.
    pub fn gain_db_at(&self, frequency: f64) -> f64 {
        self.transfer(frequency).abs_db()
    }

    /// Converts the behaviour into the small-signal macromodel (gm / rout /
    /// cout) used to instantiate the OTA inside a gm-C filter netlist.
    ///
    /// `c_load` is the load capacitance assumed to set the dominant pole.
    pub fn to_macro_spec(&self, c_load: f64) -> OtaMacroSpec {
        OtaMacroSpec::from_gain_and_bandwidth(self.gain_db, self.unity_gain_hz, c_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_sim::measure;

    fn behavior() -> OtaBehavior {
        OtaBehavior::new(50.0, 75.0, 10e6)
    }

    #[test]
    fn gain_conversions() {
        let b = behavior();
        assert!((b.gain_linear() - 316.227766).abs() < 1e-4);
        assert!((b.gain_db_at(1.0) - 50.0).abs() < 0.01);
    }

    #[test]
    fn pole_reconstruction_matches_definitions() {
        let b = behavior();
        let p1 = b.dominant_pole_hz();
        assert!((p1 - 10e6 / b.gain_linear()).abs() < 1e-6);
        let p2 = b.second_pole_hz().unwrap();
        // PM 75° -> excess phase 15° at f_u -> p2 = f_u / tan(15°) ≈ 3.73 f_u.
        assert!((p2 - 10e6 / 15f64.to_radians().tan()).abs() / p2 < 1e-9);
        // A 90°-PM behaviour has no second pole.
        assert!(OtaBehavior::new(50.0, 90.0, 10e6)
            .second_pole_hz()
            .is_none());
    }

    #[test]
    fn measured_response_reproduces_the_declared_figures_of_merit() {
        let b = behavior();
        let freqs: Vec<f64> = ayb_sim::FrequencySweep::logarithmic(1.0, 1e9, 40).frequencies();
        let resp = b.frequency_response(&freqs);
        let m = measure::measure(&freqs, &resp).unwrap();
        assert!((m.dc_gain_db - 50.0).abs() < 0.05);
        let pm = m.phase_margin_deg.unwrap();
        assert!((pm - 75.0).abs() < 2.0, "pm = {pm}");
        let fu = m.unity_gain_hz.unwrap();
        assert!((fu - 10e6).abs() / 10e6 < 0.1, "fu = {fu}");
    }

    #[test]
    fn macro_spec_preserves_gain() {
        let b = behavior();
        let spec = b.to_macro_spec(5e-12);
        assert!((spec.gain_db() - 50.0).abs() < 1e-9);
        assert!(spec.gm > 0.0);
    }

    #[test]
    fn lower_phase_margin_means_lower_second_pole() {
        let high_pm = OtaBehavior::new(50.0, 80.0, 10e6).second_pole_hz().unwrap();
        let low_pm = OtaBehavior::new(50.0, 55.0, 10e6).second_pole_hz().unwrap();
        assert!(low_pm < high_pm);
    }
}
