//! # ayb-behavioral — combined performance and variation behavioural models
//!
//! The behavioural layer of the AYB workspace, reproducing the artifact at the
//! heart of the paper:
//!
//! * [`CombinedOtaModel`] — the combined performance + statistical-variation
//!   model built from the Pareto front and per-point Monte Carlo results
//!   (§3.5), including the yield-retargeting model-use step (§4.4, Table 3),
//! * [`OtaBehavior`] — a two-pole behavioural OTA reconstructed from gain,
//!   phase margin and unity-gain frequency (Figure 8 comparison),
//! * [`OtaSpec`] / [`FilterSpec`] — the OTA and anti-aliasing filter
//!   specifications (Table 3, Figure 10),
//! * [`filter`] — behavioural gm-C biquad evaluation for the hierarchical
//!   filter design of §5,
//! * [`verilog_a`] — a generator for the Verilog-A module listed in §4.4 plus
//!   its `.tbl` data files.
//!
//! # Examples
//!
//! Retargeting a 50 dB / 74° specification with a (synthetic) model:
//!
//! ```
//! use ayb_behavioral::{CombinedOtaModel, OtaSpec, ParetoPointData};
//! use ayb_circuit::DesignPoint;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let points: Vec<ParetoPointData> = (0..10)
//!     .map(|i| ParetoPointData {
//!         gain_db: 49.5 + i as f64 * 0.25,
//!         phase_margin_deg: 76.5 - i as f64 * 0.3,
//!         gain_delta_percent: 0.5,
//!         pm_delta_percent: 1.5,
//!         unity_gain_hz: 9.0e6,
//!         parameters: DesignPoint::new().with("w1", 20e-6 + i as f64 * 1e-6),
//!     })
//!     .collect();
//! let model = CombinedOtaModel::from_pareto_data(points, 3.0)?;
//! let design = model.design_for_spec(&OtaSpec::new(50.0, 74.0))?;
//! assert!(design.retarget.new_gain_db > 50.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod combined;
pub mod filter;
pub mod ota;
pub mod spec;
pub mod verilog_a;

pub use combined::{
    CombinedOtaModel, ModelDesign, ModelError, ParetoPointData, RetargetedPerformance,
};
pub use filter::{filter_sweep, simulate_macromodel_filter, FilterResponse};
pub use ota::OtaBehavior;
pub use spec::{FilterSpec, FilterSpecReport, OtaSpec};
pub use verilog_a::{generate_module, VerilogAPackage};
