//! Behavioural gm-C filter evaluation (paper §5).
//!
//! The hierarchical design step of the paper builds a 2nd-order low-pass
//! filter out of the modelled OTA. This module evaluates the filter using the
//! behavioural OTA macromodel: the netlist from
//! [`ayb_circuit::filter::build_filter_with_macromodels`] is simulated with
//! the AC engine of `ayb-sim`, which is orders of magnitude cheaper than
//! simulating forty transistors and is exactly what makes the hierarchical
//! flow fast.

use crate::ota::OtaBehavior;
use crate::spec::{FilterSpec, FilterSpecReport};
use ayb_circuit::filter::{
    build_filter_with_macromodels, FilterParameters, OtaMacroSpec, FILTER_OUTPUT,
};
use ayb_sim::{ac_analysis, dc_operating_point, Complex, DcOptions, FrequencySweep, SimError};
use serde::{Deserialize, Serialize};

/// Swept response of the behavioural filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterResponse {
    /// Sweep frequencies in hertz.
    pub frequencies: Vec<f64>,
    /// Output-node phasors (unit input).
    pub response: Vec<Complex>,
}

impl FilterResponse {
    /// Gain in dB at every sweep point.
    pub fn gain_db(&self) -> Vec<f64> {
        self.response.iter().map(|z| z.abs_db()).collect()
    }

    /// −3 dB cut-off frequency, if inside the sweep.
    pub fn cutoff_hz(&self) -> Option<f64> {
        ayb_sim::measure::bandwidth_3db(&self.frequencies, &self.response)
    }

    /// Checks the response against a filter template.
    pub fn check(&self, spec: &FilterSpec) -> FilterSpecReport {
        spec.evaluate(&self.frequencies, &self.response)
    }
}

/// Default sweep used for filter characterisation: 1 kHz – 100 MHz.
pub fn filter_sweep() -> FrequencySweep {
    FrequencySweep::logarithmic(1e3, 100e6, 15)
}

/// Simulates the behavioural (macromodel) filter.
///
/// # Errors
///
/// Propagates circuit-construction and simulation errors.
pub fn simulate_macromodel_filter(
    params: &FilterParameters,
    ota: &OtaMacroSpec,
    sweep: &FrequencySweep,
) -> Result<FilterResponse, SimError> {
    let circuit = build_filter_with_macromodels(params, ota)?;
    let op = dc_operating_point(&circuit, &DcOptions::new())?;
    let ac = ac_analysis(&circuit, &op, sweep)?;
    let response = ac
        .response_by_name(&circuit, FILTER_OUTPUT)
        .ok_or_else(|| SimError::Measurement("filter output node missing".into()))?;
    Ok(FilterResponse {
        frequencies: ac.frequencies().to_vec(),
        response,
    })
}

/// Simulates the behavioural filter directly from an [`OtaBehavior`]
/// (gain / PM / unity-gain frequency triple) by first converting it to a
/// macromodel with the given load capacitance.
///
/// # Errors
///
/// Propagates circuit-construction and simulation errors.
pub fn simulate_filter_from_behavior(
    params: &FilterParameters,
    behavior: &OtaBehavior,
    c_load: f64,
    sweep: &FrequencySweep,
) -> Result<FilterResponse, SimError> {
    simulate_macromodel_filter(params, &behavior.to_macro_spec(c_load), sweep)
}

/// Analytic design helper: capacitor values that centre the biquad at
/// `f0` with quality factor `q`, given the OTA transconductance.
///
/// Derived from the ideal design equations `ω0 = gm/√(C1·C2)`, `Q = √(C1/C2)`.
pub fn size_capacitors_for(f0_hz: f64, q: f64, gm: f64) -> FilterParameters {
    let w0 = 2.0 * std::f64::consts::PI * f0_hz;
    // C1 = Q·gm/ω0, C2 = gm/(Q·ω0).
    FilterParameters {
        c1: q * gm / w0,
        c2: gm / (q * w0),
        c3: 0.02 * gm / w0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behavior() -> OtaBehavior {
        OtaBehavior::new(52.0, 70.0, 12e6)
    }

    #[test]
    fn macromodel_filter_is_low_pass_with_unity_dc_gain() {
        let ota = behavior().to_macro_spec(5e-12);
        let params = size_capacitors_for(1.6e6, std::f64::consts::FRAC_1_SQRT_2, ota.gm);
        let resp = simulate_macromodel_filter(&params, &ota, &filter_sweep()).unwrap();
        let gains = resp.gain_db();
        // DC gain of the two-integrator biquad is ~0 dB (unity).
        assert!(gains[0].abs() < 1.0, "dc gain {} dB", gains[0]);
        // High-frequency attenuation is strong.
        assert!(*gains.last().unwrap() < -25.0);
        // Monotone region check: response at 100 kHz is higher than at 30 MHz.
        let g_100k = ayb_sim::measure::gain_db_at(&resp.frequencies, &resp.response, 1e5);
        let g_30m = ayb_sim::measure::gain_db_at(&resp.frequencies, &resp.response, 30e6);
        assert!(g_100k > g_30m + 20.0);
    }

    #[test]
    fn sized_capacitors_place_the_cutoff_close_to_target() {
        let ota = behavior().to_macro_spec(5e-12);
        let params = size_capacitors_for(1.6e6, std::f64::consts::FRAC_1_SQRT_2, ota.gm);
        let resp = simulate_macromodel_filter(&params, &ota, &filter_sweep()).unwrap();
        let cutoff = resp.cutoff_hz().expect("cutoff inside sweep");
        assert!(
            (cutoff - 1.6e6).abs() / 1.6e6 < 0.35,
            "cutoff {cutoff} too far from 1.6 MHz"
        );
    }

    #[test]
    fn well_sized_filter_meets_the_anti_aliasing_spec() {
        let spec = FilterSpec::anti_aliasing_1mhz();
        let resp = simulate_filter_from_behavior(
            &size_capacitors_for(
                1.8e6,
                std::f64::consts::FRAC_1_SQRT_2,
                behavior().to_macro_spec(5e-12).gm,
            ),
            &behavior(),
            5e-12,
            &filter_sweep(),
        )
        .unwrap();
        let report = resp.check(&spec);
        assert!(report.all_met(), "report: {report:?}");
        assert!(report.margin_db(&spec) > 0.0);
    }

    #[test]
    fn badly_sized_filter_fails_the_spec() {
        let ota = behavior().to_macro_spec(5e-12);
        // Cut-off far too low: passband droop at 1 MHz will violate the template.
        let params = size_capacitors_for(150e3, std::f64::consts::FRAC_1_SQRT_2, ota.gm);
        let resp = simulate_macromodel_filter(&params, &ota, &filter_sweep()).unwrap();
        assert!(!resp.check(&FilterSpec::anti_aliasing_1mhz()).all_met());
    }
}
