//! Verilog-A code generation.
//!
//! The original flow delivers its combined model as a Verilog-A module whose
//! body is the listing in §4.4 of the paper (a chain of `$table_model()`
//! calls followed by a behavioural output expression). Since this workspace
//! evaluates the model natively in Rust, the generator exists to document the
//! equivalence and to let the produced model be dropped into a Spectre /
//! Verilog-A flow unchanged: it emits the module text plus the `.tbl` data
//! files the module references.

use crate::combined::CombinedOtaModel;
use ayb_table::TableFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A generated Verilog-A deliverable: module source plus its data files.
#[derive(Debug, Clone, PartialEq)]
pub struct VerilogAPackage {
    /// The Verilog-A module source text.
    pub module_source: String,
    /// The `.tbl` data files referenced by the module, keyed by file name.
    pub table_files: BTreeMap<String, TableFile>,
}

impl VerilogAPackage {
    /// Writes the module and every data file into `directory`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error message if any file cannot be written.
    pub fn write_to(&self, directory: &std::path::Path) -> Result<(), String> {
        std::fs::create_dir_all(directory).map_err(|e| e.to_string())?;
        std::fs::write(directory.join("ota_yield_model.va"), &self.module_source)
            .map_err(|e| e.to_string())?;
        for (name, file) in &self.table_files {
            file.write_to(&directory.join(name))
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Generates the Verilog-A behavioural module for a combined model.
///
/// The emitted module follows the structure of the listing in §4.4:
/// variation lookup, performance retargeting, designable-parameter lookup,
/// parameter file output and the behavioural `V(out)` contribution.
pub fn generate_module(model: &CombinedOtaModel, module_name: &str) -> VerilogAPackage {
    let mut src = String::new();
    let w = &mut src;
    let _ = writeln!(
        w,
        "// Auto-generated combined performance and variation model."
    );
    let _ = writeln!(
        w,
        "// Built from {} Pareto-optimal design points ({}-sigma variation).",
        model.points().len(),
        model.sigma_level
    );
    let _ = writeln!(w, "`include \"constants.vams\"");
    let _ = writeln!(w, "`include \"disciplines.vams\"");
    let _ = writeln!(w);
    let _ = writeln!(w, "module {module_name}(inp, inn, out);");
    let _ = writeln!(w, "  inout inp, inn, out;");
    let _ = writeln!(w, "  electrical inp, inn, out;");
    let _ = writeln!(
        w,
        "  parameter real gain = 50.0;        // required open-loop gain [dB]"
    );
    let _ = writeln!(
        w,
        "  parameter real pm = 74.0;          // required phase margin [deg]"
    );
    let _ = writeln!(
        w,
        "  parameter real ro = 1.0e6;         // output resistance [ohm]"
    );
    let _ = writeln!(
        w,
        "  real gain_delta, pm_delta, gain_prop, pm_prop, gain_in_v;"
    );
    let param_names: Vec<&str> = model.parameter_names().iter().map(String::as_str).collect();
    let _ = writeln!(w, "  real {};", param_names.join(", "));
    let _ = writeln!(w, "  integer fptr;");
    let _ = writeln!(w);
    let _ = writeln!(w, "  analog begin");
    let _ = writeln!(
        w,
        "    gain_delta = $table_model (gain, \"gain_delta.tbl\", \"3E\");"
    );
    let _ = writeln!(
        w,
        "    pm_delta = $table_model (pm, \"pm_delta.tbl\", \"3E\");"
    );
    let _ = writeln!(w, "    gain_prop = ((gain_delta/100)*gain)+gain;");
    let _ = writeln!(w, "    pm_prop = ((pm_delta/100)*pm)+pm;");
    let _ = writeln!(w, "    $display (\"Propose Gain : %e\", gain_prop);");
    let _ = writeln!(w, "    $display (\"propose PM : %e\", pm_prop);");
    for name in &param_names {
        let _ = writeln!(
            w,
            "    {name} = $table_model (gain_prop, pm_prop, \"{name}_data.tbl\", \"3E,3E\");"
        );
    }
    let _ = writeln!(w, "    fptr = $fopen(\"params.dat\");");
    let _ = writeln!(
        w,
        "    $fwrite(fptr, \"\\n Generated Design Parameters\\n \");"
    );
    let fmt: Vec<&str> = param_names.iter().map(|_| "%e").collect();
    let _ = writeln!(
        w,
        "    $fwrite(fptr, \"{}\", {});",
        fmt.join(" "),
        param_names.join(", ")
    );
    let _ = writeln!(w, "    $fclose(fptr);");
    let _ = writeln!(w, "    gain_in_v = pow(10, gain_prop/20);");
    let _ = writeln!(w, "    V(out) <+ V(inp, inn)*(-gain_in_v) - I(out)*ro;");
    let _ = writeln!(w, "  end");
    let _ = writeln!(w, "endmodule");

    VerilogAPackage {
        module_source: src,
        table_files: model.export_table_files(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::ParetoPointData;
    use ayb_circuit::DesignPoint;

    fn model() -> CombinedOtaModel {
        let points: Vec<ParetoPointData> = (0..10)
            .map(|i| ParetoPointData {
                gain_db: 49.5 + i as f64 * 0.2,
                phase_margin_deg: 76.0 - i as f64 * 0.3,
                gain_delta_percent: 0.5,
                pm_delta_percent: 1.5,
                unity_gain_hz: 9e6,
                parameters: DesignPoint::new()
                    .with("w1", 20e-6 + i as f64 * 1e-6)
                    .with("l1", 1e-6),
            })
            .collect();
        CombinedOtaModel::from_pareto_data(points, 3.0).unwrap()
    }

    #[test]
    fn module_contains_paper_structure() {
        let pkg = generate_module(&model(), "ota_yield_model");
        let src = &pkg.module_source;
        assert!(src.contains("module ota_yield_model"));
        assert!(src.contains("$table_model (gain, \"gain_delta.tbl\", \"3E\")"));
        assert!(src.contains("$table_model (pm, \"pm_delta.tbl\", \"3E\")"));
        assert!(src.contains("gain_prop = ((gain_delta/100)*gain)+gain;"));
        assert!(src.contains("w1 = $table_model (gain_prop, pm_prop, \"w1_data.tbl\", \"3E,3E\");"));
        assert!(src.contains("V(out) <+"));
        assert!(src.contains("endmodule"));
    }

    #[test]
    fn package_bundles_every_table_file() {
        let pkg = generate_module(&model(), "ota_yield_model");
        assert!(pkg.table_files.contains_key("gain_delta.tbl"));
        assert!(pkg.table_files.contains_key("pm_delta.tbl"));
        assert!(pkg.table_files.contains_key("w1_data.tbl"));
        assert!(pkg.table_files.contains_key("l1_data.tbl"));
        // Every file referenced from the module source exists in the bundle.
        for name in pkg.table_files.keys() {
            assert!(
                pkg.module_source.contains(name.as_str()),
                "{name} not referenced"
            );
        }
    }

    #[test]
    fn package_writes_to_disk() {
        let dir = std::env::temp_dir().join("ayb_verilog_a_test");
        let pkg = generate_module(&model(), "ota_yield_model");
        pkg.write_to(&dir).unwrap();
        assert!(dir.join("ota_yield_model.va").exists());
        assert!(dir.join("gain_delta.tbl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
