//! Performance specifications.
//!
//! Two specification types appear in the paper: the OTA specification used in
//! the model-use example of Table 3 (gain > 50 dB, phase margin > 74°) and the
//! anti-aliasing filter template of Figure 10.

use ayb_sim::Complex;
use serde::{Deserialize, Serialize};

/// Minimum-performance specification for the OTA (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaSpec {
    /// Required minimum open-loop gain in dB.
    pub min_gain_db: f64,
    /// Required minimum phase margin in degrees.
    pub min_phase_margin_deg: f64,
}

impl OtaSpec {
    /// Creates an OTA specification.
    pub fn new(min_gain_db: f64, min_phase_margin_deg: f64) -> Self {
        OtaSpec {
            min_gain_db,
            min_phase_margin_deg,
        }
    }

    /// The paper's Table 3 example: gain > 50 dB, phase margin > 74°.
    pub fn paper_table3() -> Self {
        OtaSpec::new(50.0, 74.0)
    }

    /// The paper's filter application (§5): gain ≥ 50 dB, phase margin ≥ 60°.
    pub fn paper_filter_application() -> Self {
        OtaSpec::new(50.0, 60.0)
    }

    /// Returns `true` if a measured (gain, phase-margin) pair meets the spec.
    pub fn is_met(&self, gain_db: f64, phase_margin_deg: f64) -> bool {
        gain_db >= self.min_gain_db && phase_margin_deg >= self.min_phase_margin_deg
    }
}

/// Anti-aliasing low-pass filter template (paper Figure 10).
///
/// The gain must stay above `passband_min_gain_db` up to `passband_edge_hz`
/// and fall below `stopband_max_gain_db` beyond `stopband_edge_hz`, both
/// relative to the DC gain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Passband edge frequency in hertz.
    pub passband_edge_hz: f64,
    /// Minimum gain (relative to DC, in dB) allowed inside the passband.
    pub passband_min_gain_db: f64,
    /// Stopband edge frequency in hertz.
    pub stopband_edge_hz: f64,
    /// Maximum gain (relative to DC, in dB) allowed beyond the stopband edge.
    pub stopband_max_gain_db: f64,
    /// Maximum allowed passband peaking relative to DC in dB.
    pub max_peaking_db: f64,
}

impl FilterSpec {
    /// A typical anti-aliasing specification for the paper's 2nd-order filter:
    /// ≤ 3 dB droop up to 1 MHz, ≥ 30 dB attenuation beyond 10 MHz, ≤ 1 dB
    /// peaking. (The paper states the template graphically in Figure 10; these
    /// numbers are a representative instantiation achievable by a 2nd-order
    /// response.)
    pub fn anti_aliasing_1mhz() -> Self {
        FilterSpec {
            passband_edge_hz: 1e6,
            passband_min_gain_db: -3.0,
            stopband_edge_hz: 10e6,
            stopband_max_gain_db: -30.0,
            max_peaking_db: 1.0,
        }
    }

    /// Evaluates a swept filter response against the template.
    ///
    /// `frequencies` and `response` describe the output node phasor of the
    /// filter for a unit input. Gains are referred to the response at the
    /// lowest frequency.
    pub fn evaluate(&self, frequencies: &[f64], response: &[Complex]) -> FilterSpecReport {
        let reference_db = response.first().map(|z| z.abs_db()).unwrap_or(0.0);
        let mut worst_passband = f64::INFINITY;
        let mut worst_stopband = f64::NEG_INFINITY;
        let mut peak = f64::NEG_INFINITY;
        for (&f, z) in frequencies.iter().zip(response.iter()) {
            let rel_db = z.abs_db() - reference_db;
            if f <= self.passband_edge_hz {
                worst_passband = worst_passband.min(rel_db);
                peak = peak.max(rel_db);
            }
            if f >= self.stopband_edge_hz {
                worst_stopband = worst_stopband.max(rel_db);
            }
        }
        FilterSpecReport {
            passband_worst_db: worst_passband,
            stopband_worst_db: worst_stopband,
            peaking_db: peak.max(0.0),
            passband_ok: worst_passband >= self.passband_min_gain_db,
            stopband_ok: worst_stopband <= self.stopband_max_gain_db,
            peaking_ok: peak <= self.max_peaking_db,
        }
    }

    /// Convenience: `true` when all template sections are met.
    pub fn is_met(&self, frequencies: &[f64], response: &[Complex]) -> bool {
        self.evaluate(frequencies, response).all_met()
    }
}

/// Result of checking a response against a [`FilterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterSpecReport {
    /// Worst (most negative) relative gain inside the passband, in dB.
    pub passband_worst_db: f64,
    /// Worst (least negative) relative gain inside the stopband, in dB.
    pub stopband_worst_db: f64,
    /// Maximum passband peaking above DC, in dB.
    pub peaking_db: f64,
    /// Passband section met.
    pub passband_ok: bool,
    /// Stopband section met.
    pub stopband_ok: bool,
    /// Peaking limit met.
    pub peaking_ok: bool,
}

impl FilterSpecReport {
    /// All three template sections met.
    pub fn all_met(&self) -> bool {
        self.passband_ok && self.stopband_ok && self.peaking_ok
    }

    /// A scalar "margin" figure used by the filter optimiser: positive when
    /// the spec is met with margin, negative proportional to the worst
    /// violation otherwise.
    pub fn margin_db(&self, spec: &FilterSpec) -> f64 {
        let passband_margin = self.passband_worst_db - spec.passband_min_gain_db;
        let stopband_margin = spec.stopband_max_gain_db - self.stopband_worst_db;
        let peaking_margin = spec.max_peaking_db - self.peaking_db;
        passband_margin.min(stopband_margin).min(peaking_margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biquad_response(f0: f64, q: f64, freqs: &[f64]) -> Vec<Complex> {
        freqs
            .iter()
            .map(|&f| {
                let s = Complex::new(0.0, f / f0);
                let denom = Complex::ONE + s * (1.0 / q) + s * s;
                Complex::ONE / denom
            })
            .collect()
    }

    #[test]
    fn ota_spec_checks_both_axes() {
        let spec = OtaSpec::paper_table3();
        assert!(spec.is_met(50.3, 75.0));
        assert!(!spec.is_met(49.9, 75.0));
        assert!(!spec.is_met(50.3, 73.0));
        assert_eq!(spec.min_gain_db, 50.0);
        assert_eq!(
            OtaSpec::paper_filter_application().min_phase_margin_deg,
            60.0
        );
    }

    #[test]
    fn well_placed_biquad_meets_anti_aliasing_template() {
        let spec = FilterSpec::anti_aliasing_1mhz();
        let freqs: Vec<f64> = ayb_sim::FrequencySweep::logarithmic(1e3, 100e6, 20).frequencies();
        // f0 at 1.6 MHz with Butterworth-like Q meets 3 dB at 1 MHz and 30 dB at 10 MHz.
        let resp = biquad_response(1.6e6, std::f64::consts::FRAC_1_SQRT_2, &freqs);
        let report = spec.evaluate(&freqs, &resp);
        assert!(
            report.passband_ok,
            "passband worst {}",
            report.passband_worst_db
        );
        assert!(
            report.stopband_ok,
            "stopband worst {}",
            report.stopband_worst_db
        );
        assert!(report.peaking_ok);
        assert!(report.all_met());
        assert!(report.margin_db(&spec) > 0.0);
        assert!(spec.is_met(&freqs, &resp));
    }

    #[test]
    fn too_low_cutoff_fails_passband() {
        let spec = FilterSpec::anti_aliasing_1mhz();
        let freqs: Vec<f64> = ayb_sim::FrequencySweep::logarithmic(1e3, 100e6, 20).frequencies();
        let resp = biquad_response(300e3, std::f64::consts::FRAC_1_SQRT_2, &freqs);
        let report = spec.evaluate(&freqs, &resp);
        assert!(!report.passband_ok);
        assert!(report.margin_db(&spec) < 0.0);
    }

    #[test]
    fn too_high_cutoff_fails_stopband() {
        let spec = FilterSpec::anti_aliasing_1mhz();
        let freqs: Vec<f64> = ayb_sim::FrequencySweep::logarithmic(1e3, 100e6, 20).frequencies();
        let resp = biquad_response(8e6, std::f64::consts::FRAC_1_SQRT_2, &freqs);
        let report = spec.evaluate(&freqs, &resp);
        assert!(!report.stopband_ok);
    }

    #[test]
    fn high_q_fails_peaking() {
        let spec = FilterSpec::anti_aliasing_1mhz();
        let freqs: Vec<f64> = ayb_sim::FrequencySweep::logarithmic(1e3, 100e6, 30).frequencies();
        let resp = biquad_response(1.6e6, 5.0, &freqs);
        let report = spec.evaluate(&freqs, &resp);
        assert!(!report.peaking_ok, "peaking {}", report.peaking_db);
    }
}
