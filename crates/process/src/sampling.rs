//! Random sampling utilities.
//!
//! Standard-normal samples are generated with the Box–Muller transform on top
//! of [`rand`]'s uniform generator, so no additional distribution crate is
//! required. All Monte Carlo work in this workspace is seeded explicitly for
//! reproducibility.

use rand::Rng;

/// Draws one standard-normal (`N(0, 1)`) sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a normal sample truncated to ±`clip` standard deviations.
///
/// Foundry statistical decks commonly truncate global variation at ±3 σ to
/// avoid non-physical model parameters; the same convention is used here.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64, clip: f64) -> f64 {
    if std_dev == 0.0 {
        return mean;
    }
    loop {
        let z = standard_normal(rng);
        if z.abs() <= clip {
            return mean + std_dev * z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance = {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.08);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn truncated_normal_respects_clip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let x = truncated_normal(&mut rng, 0.0, 1.0, 2.0);
            assert!(x.abs() <= 2.0 + 1e-12);
        }
        // Zero sigma returns the mean exactly.
        assert_eq!(truncated_normal(&mut rng, 1.5, 0.0, 3.0), 1.5);
    }

    #[test]
    fn seeded_sequences_are_reproducible() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
