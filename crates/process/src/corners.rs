//! Deterministic process corners.
//!
//! Corners express the global component of the statistical model as fixed
//! worst-case shifts: each polarity is pushed `k·σ` slow or fast. They are
//! useful as cheap sanity checks alongside Monte Carlo analysis.

use crate::variation::ProcessVariation;
use ayb_circuit::{Circuit, MosfetPolarity};
use serde::{Deserialize, Serialize};

/// Standard five-corner set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Typical NMOS, typical PMOS.
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All five corners in conventional order.
    pub fn all() -> [Corner; 5] {
        [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf]
    }

    /// Speed signs for (NMOS, PMOS): +1 = fast (lower |V_T|, higher KP),
    /// −1 = slow, 0 = typical.
    pub fn speed_signs(self) -> (f64, f64) {
        match self {
            Corner::Tt => (0.0, 0.0),
            Corner::Ff => (1.0, 1.0),
            Corner::Ss => (-1.0, -1.0),
            Corner::Fs => (1.0, -1.0),
            Corner::Sf => (-1.0, 1.0),
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        };
        write!(f, "{name}")
    }
}

/// Applies a `sigma_count`-sigma corner to every MOSFET model card of a
/// circuit, returning the modified copy.
///
/// A *fast* device has a lower threshold magnitude and a higher current
/// factor; a *slow* device the opposite. The sign of the VTO shift is applied
/// with the correct polarity (NMOS thresholds are positive, PMOS negative).
pub fn apply_corner(
    circuit: &Circuit,
    variation: &ProcessVariation,
    corner: Corner,
    sigma_count: f64,
) -> Circuit {
    let mut varied = circuit.clone();
    let (n_sign, p_sign) = corner.speed_signs();
    for card in varied.models_mut().values_mut() {
        let (speed, spread) = match card.polarity {
            MosfetPolarity::Nmos => (n_sign, variation.global(MosfetPolarity::Nmos)),
            MosfetPolarity::Pmos => (p_sign, variation.global(MosfetPolarity::Pmos)),
        };
        // Fast = threshold magnitude decreases. For NMOS (vto > 0) that is a
        // negative shift; for PMOS (vto < 0) a positive shift.
        let vto_shift = -speed * sigma_count * spread.sigma_vto * card.polarity.sign();
        let kp_mult = 1.0 + speed * sigma_count * spread.sigma_kp_rel;
        *card = card.perturbed(vto_shift, kp_mult.max(0.05));
    }
    varied
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::Circuit;

    fn circuit_with_models() -> Circuit {
        let mut ckt = Circuit::new("corners");
        ckt.add_default_models();
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        ckt.add_resistor("r1", a, gnd, 1.0).unwrap();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt
    }

    #[test]
    fn tt_corner_is_identity() {
        let ckt = circuit_with_models();
        let varied = apply_corner(&ckt, &ProcessVariation::generic_035um(), Corner::Tt, 3.0);
        assert_eq!(varied.models()["nmos"], ckt.models()["nmos"]);
        assert_eq!(varied.models()["pmos"], ckt.models()["pmos"]);
    }

    #[test]
    fn ff_corner_lowers_threshold_magnitude_and_raises_kp() {
        let ckt = circuit_with_models();
        let varied = apply_corner(&ckt, &ProcessVariation::generic_035um(), Corner::Ff, 3.0);
        let n0 = &ckt.models()["nmos"];
        let n1 = &varied.models()["nmos"];
        let p0 = &ckt.models()["pmos"];
        let p1 = &varied.models()["pmos"];
        assert!(n1.vto < n0.vto, "fast NMOS should have lower VTO");
        assert!(n1.kp > n0.kp);
        assert!(
            p1.vto > p0.vto,
            "fast PMOS threshold magnitude shrinks (less negative)"
        );
        assert!(p1.vth_magnitude() < p0.vth_magnitude());
        assert!(p1.kp > p0.kp);
    }

    #[test]
    fn ss_corner_is_mirror_of_ff() {
        let ckt = circuit_with_models();
        let var = ProcessVariation::generic_035um();
        let ff = apply_corner(&ckt, &var, Corner::Ff, 3.0);
        let ss = apply_corner(&ckt, &var, Corner::Ss, 3.0);
        let nominal = ckt.models()["nmos"].vto;
        let up = ss.models()["nmos"].vto - nominal;
        let down = nominal - ff.models()["nmos"].vto;
        assert!((up - down).abs() < 1e-12);
    }

    #[test]
    fn mixed_corners_move_polarities_in_opposite_directions() {
        let ckt = circuit_with_models();
        let var = ProcessVariation::generic_035um();
        let fs = apply_corner(&ckt, &var, Corner::Fs, 3.0);
        assert!(fs.models()["nmos"].vth_magnitude() < ckt.models()["nmos"].vth_magnitude());
        assert!(fs.models()["pmos"].vth_magnitude() > ckt.models()["pmos"].vth_magnitude());
        assert_eq!(Corner::all().len(), 5);
        assert_eq!(Corner::Fs.to_string(), "FS");
    }
}
