//! Statistical process-variation models.
//!
//! Two variation mechanisms are modelled, mirroring what foundry statistical
//! model decks provide (paper §3.4 "process variation and mismatch models"):
//!
//! * **Global (die-to-die) variation** — every device of a given polarity on
//!   the die shares the same shift of threshold voltage and current factor.
//! * **Local mismatch** — each device additionally receives an independent
//!   threshold/current-factor perturbation whose standard deviation follows
//!   the Pelgrom law, `σ = A / √(W·L)`.

use ayb_circuit::MosfetPolarity;
use serde::{Deserialize, Serialize};

/// Global (die-to-die) 1-σ spreads for one device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalSpread {
    /// Threshold-voltage standard deviation in volts.
    pub sigma_vto: f64,
    /// Relative current-factor (KP) standard deviation (e.g. 0.03 = 3 %).
    pub sigma_kp_rel: f64,
}

/// Pelgrom mismatch coefficients for one device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MismatchCoefficients {
    /// Threshold-voltage area coefficient `A_VT` in V·m (typically quoted in mV·µm).
    pub a_vt: f64,
    /// Current-factor area coefficient `A_β` in m (relative variation · metre).
    pub a_beta: f64,
}

impl MismatchCoefficients {
    /// 1-σ threshold mismatch in volts for a device of gate area `area` (m²).
    pub fn sigma_vt(&self, area: f64) -> f64 {
        self.a_vt / area.max(1e-18).sqrt()
    }

    /// 1-σ relative current-factor mismatch for a device of gate area `area` (m²).
    pub fn sigma_beta(&self, area: f64) -> f64 {
        self.a_beta / area.max(1e-18).sqrt()
    }
}

/// Complete statistical description of a CMOS process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// Global spread of NMOS devices.
    pub nmos_global: GlobalSpread,
    /// Global spread of PMOS devices.
    pub pmos_global: GlobalSpread,
    /// Mismatch coefficients of NMOS devices.
    pub nmos_mismatch: MismatchCoefficients,
    /// Mismatch coefficients of PMOS devices.
    pub pmos_mismatch: MismatchCoefficients,
}

impl ProcessVariation {
    /// Representative statistical model for a generic 0.35 µm CMOS process.
    ///
    /// Numbers are typical textbook values for this node: ~15 mV global V_T
    /// spread, ~4 % KP spread, `A_VT ≈ 9.5 mV·µm` (NMOS) / `14.5 mV·µm`
    /// (PMOS), `A_β ≈ 1.9 %·µm`.
    pub fn generic_035um() -> Self {
        ProcessVariation {
            nmos_global: GlobalSpread {
                sigma_vto: 0.015,
                sigma_kp_rel: 0.04,
            },
            pmos_global: GlobalSpread {
                sigma_vto: 0.020,
                sigma_kp_rel: 0.04,
            },
            nmos_mismatch: MismatchCoefficients {
                a_vt: 9.5e-3 * 1e-6,
                a_beta: 0.019 * 1e-6,
            },
            pmos_mismatch: MismatchCoefficients {
                a_vt: 14.5e-3 * 1e-6,
                a_beta: 0.022 * 1e-6,
            },
        }
    }

    /// A variation model with every spread set to zero (useful to isolate the
    /// effect of mismatch or as a null baseline in tests).
    pub fn none() -> Self {
        let zero_global = GlobalSpread {
            sigma_vto: 0.0,
            sigma_kp_rel: 0.0,
        };
        let zero_mismatch = MismatchCoefficients {
            a_vt: 0.0,
            a_beta: 0.0,
        };
        ProcessVariation {
            nmos_global: zero_global,
            pmos_global: zero_global,
            nmos_mismatch: zero_mismatch,
            pmos_mismatch: zero_mismatch,
        }
    }

    /// Returns a copy with every spread scaled by `factor` (used for
    /// sensitivity/ablation studies).
    pub fn scaled(&self, factor: f64) -> Self {
        let scale_global = |g: GlobalSpread| GlobalSpread {
            sigma_vto: g.sigma_vto * factor,
            sigma_kp_rel: g.sigma_kp_rel * factor,
        };
        let scale_mismatch = |m: MismatchCoefficients| MismatchCoefficients {
            a_vt: m.a_vt * factor,
            a_beta: m.a_beta * factor,
        };
        ProcessVariation {
            nmos_global: scale_global(self.nmos_global),
            pmos_global: scale_global(self.pmos_global),
            nmos_mismatch: scale_mismatch(self.nmos_mismatch),
            pmos_mismatch: scale_mismatch(self.pmos_mismatch),
        }
    }

    /// Global spread for a given polarity.
    pub fn global(&self, polarity: MosfetPolarity) -> GlobalSpread {
        match polarity {
            MosfetPolarity::Nmos => self.nmos_global,
            MosfetPolarity::Pmos => self.pmos_global,
        }
    }

    /// Mismatch coefficients for a given polarity.
    pub fn mismatch(&self, polarity: MosfetPolarity) -> MismatchCoefficients {
        match polarity {
            MosfetPolarity::Nmos => self.nmos_mismatch,
            MosfetPolarity::Pmos => self.pmos_mismatch,
        }
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        ProcessVariation::generic_035um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_law_scales_with_inverse_sqrt_area() {
        let m = MismatchCoefficients {
            a_vt: 10e-3 * 1e-6,
            a_beta: 0.02 * 1e-6,
        };
        let small = m.sigma_vt(1e-12); // 1 µm²
        let large = m.sigma_vt(4e-12); // 4 µm²
        assert!((small / large - 2.0).abs() < 1e-9);
        // A 1 µm² device has σ_VT = A_VT numerically (in volts).
        assert!((small - 10e-3).abs() < 1e-12);
        assert!((m.sigma_beta(1e-12) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn generic_process_has_positive_spreads() {
        let p = ProcessVariation::generic_035um();
        assert!(p.nmos_global.sigma_vto > 0.0);
        assert!(p.pmos_global.sigma_vto > 0.0);
        assert!(p.nmos_mismatch.a_vt > 0.0);
        assert!(
            p.global(MosfetPolarity::Pmos).sigma_vto > p.global(MosfetPolarity::Nmos).sigma_vto
        );
    }

    #[test]
    fn none_and_scaled_behave() {
        let none = ProcessVariation::none();
        assert_eq!(none.nmos_global.sigma_vto, 0.0);
        let doubled = ProcessVariation::generic_035um().scaled(2.0);
        assert!(
            (doubled.nmos_global.sigma_vto
                - 2.0 * ProcessVariation::generic_035um().nmos_global.sigma_vto)
                .abs()
                < 1e-12
        );
    }
}
