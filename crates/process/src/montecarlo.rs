//! Monte Carlo engine.
//!
//! The engine mirrors what a foundry Monte Carlo deck does in Spectre (paper
//! §3.4): for every sample it
//!
//! 1. perturbs the **model cards** with a global (die-to-die) draw shared by
//!    all devices of a polarity, and
//! 2. perturbs every **MOSFET instance** with an independent local-mismatch
//!    draw whose σ follows the Pelgrom law for that device's gate area,
//!
//! then hands the perturbed circuit to a user-supplied evaluation function
//! (typically "simulate and measure gain / phase margin"). Samples whose
//! evaluation fails (e.g. a non-converging bias point) are recorded as
//! failures rather than aborting the whole analysis.

use crate::sampling::truncated_normal;
use crate::statistics::Summary;
use crate::variation::ProcessVariation;
use ayb_circuit::{Circuit, Device, MosfetPolarity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of samples to draw (the paper uses 200 per Pareto point and 500
    /// for final verification).
    pub samples: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Include the global (die-to-die) component.
    pub include_global: bool,
    /// Include the local (mismatch) component.
    pub include_mismatch: bool,
    /// Truncation of the normal draws in standard deviations.
    pub sigma_clip: f64,
}

impl MonteCarloConfig {
    /// Creates a configuration with both variation components enabled.
    pub fn new(samples: usize, seed: u64) -> Self {
        MonteCarloConfig {
            samples,
            seed,
            include_global: true,
            include_mismatch: true,
            sigma_clip: 3.0,
        }
    }

    /// Disables the global component (mismatch-only analysis).
    pub fn mismatch_only(mut self) -> Self {
        self.include_global = false;
        self
    }

    /// Disables the mismatch component (global-only analysis).
    pub fn global_only(mut self) -> Self {
        self.include_mismatch = false;
        self
    }
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig::new(200, 0x5eed)
    }
}

/// Outcome of one Monte Carlo run over a scalar-producing evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloRun<T> {
    /// Values returned by the evaluation function, one per successful sample.
    pub values: Vec<T>,
    /// Number of samples whose evaluation failed.
    pub failed_samples: usize,
}

impl<T> MonteCarloRun<T> {
    /// Number of successful samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no sample succeeded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl MonteCarloRun<f64> {
    /// Summary statistics of the collected scalar values.
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.values)
    }
}

/// Draws one statistically perturbed copy of `circuit`.
///
/// The same RNG is advanced deterministically, so calling this in a loop with
/// a seeded RNG reproduces the identical sample sequence every run.
pub fn perturb_circuit<R: Rng + ?Sized>(
    circuit: &Circuit,
    variation: &ProcessVariation,
    config: &MonteCarloConfig,
    rng: &mut R,
) -> Circuit {
    let mut sample = circuit.clone();

    // Global component: one draw per polarity, applied to the model cards.
    if config.include_global {
        for card in sample.models_mut().values_mut() {
            let spread = variation.global(card.polarity);
            // Threshold shifts in the direction of increasing magnitude for a
            // positive draw, handled through the polarity sign.
            let dvto_mag = truncated_normal(rng, 0.0, spread.sigma_vto, config.sigma_clip);
            let kp_mult = 1.0 + truncated_normal(rng, 0.0, spread.sigma_kp_rel, config.sigma_clip);
            let signed_shift = dvto_mag * card.polarity.sign();
            *card = card.perturbed(signed_shift, kp_mult.max(0.05));
        }
    }

    // Local mismatch: independent draw per MOSFET instance.
    if config.include_mismatch {
        // Collect polarity per model first to avoid borrowing issues.
        let polarity_of =
            |sample: &Circuit, model: &str| -> MosfetPolarity { sample.models()[model].polarity };
        let names: Vec<String> = sample
            .instances()
            .iter()
            .filter(|i| matches!(i.device, Device::Mosfet(_)))
            .map(|i| i.name.clone())
            .collect();
        for name in names {
            let (area, polarity) = {
                let inst = sample.instance(&name).expect("instance exists");
                match &inst.device {
                    Device::Mosfet(m) => (m.gate_area(), polarity_of(&sample, &m.model)),
                    _ => unreachable!("filtered to MOSFETs"),
                }
            };
            let coeff = variation.mismatch(polarity);
            let delta_vto = truncated_normal(rng, 0.0, coeff.sigma_vt(area), config.sigma_clip);
            let beta_mult =
                1.0 + truncated_normal(rng, 0.0, coeff.sigma_beta(area), config.sigma_clip);
            if let Some(inst) = sample.instance_mut(&name) {
                if let Device::Mosfet(m) = &mut inst.device {
                    m.delta_vto = delta_vto;
                    m.beta_mult = beta_mult.max(0.05);
                }
            }
        }
    }
    sample
}

/// Runs a Monte Carlo analysis, calling `evaluate` on every perturbed circuit.
///
/// `evaluate` returns `Some(value)` for a successful sample and `None` for a
/// failed one (for example a non-converging operating point); failures are
/// counted but do not abort the run.
pub fn run<T>(
    circuit: &Circuit,
    variation: &ProcessVariation,
    config: &MonteCarloConfig,
    mut evaluate: impl FnMut(&Circuit) -> Option<T>,
) -> MonteCarloRun<T> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut values = Vec::with_capacity(config.samples);
    let mut failed = 0usize;
    for _ in 0..config.samples {
        let sample = perturb_circuit(circuit, variation, config, &mut rng);
        match evaluate(&sample) {
            Some(v) => values.push(v),
            None => failed += 1,
        }
    }
    MonteCarloRun {
        values,
        failed_samples: failed,
    }
}

/// Parallel Monte Carlo analysis using scoped worker threads.
///
/// The sample circuits are generated deterministically on the calling thread
/// (identical to [`run`]) and then evaluated on `threads` workers, so the
/// result set is the same as the sequential version up to ordering; results
/// are returned in sample order.
pub fn run_parallel<T: Send>(
    circuit: &Circuit,
    variation: &ProcessVariation,
    config: &MonteCarloConfig,
    threads: usize,
    evaluate: impl Fn(&Circuit) -> Option<T> + Sync,
) -> MonteCarloRun<T> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let samples: Vec<Circuit> = (0..config.samples)
        .map(|_| perturb_circuit(circuit, variation, config, &mut rng))
        .collect();
    let threads = threads.max(1);
    let chunk = samples.len().div_ceil(threads).max(1);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(samples.len());
    slots.resize_with(samples.len(), || None);

    std::thread::scope(|scope| {
        let evaluate = &evaluate;
        for (sample_chunk, slot_chunk) in samples.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (sample, slot) in sample_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = evaluate(sample);
                }
            });
        }
    });

    let mut values = Vec::with_capacity(samples.len());
    let mut failed = 0usize;
    for slot in slots {
        match slot {
            Some(v) => values.push(v),
            None => failed += 1,
        }
    }
    MonteCarloRun {
        values,
        failed_samples: failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::{Circuit, Mosfet};

    fn mosfet_circuit() -> Circuit {
        let mut ckt = Circuit::new("mc");
        ckt.add_default_models();
        let d = ckt.node("d");
        let g = ckt.node("g");
        let gnd = ckt.gnd();
        ckt.add_vsource("vd", d, gnd, 1.5).unwrap();
        ckt.add_vsource("vg", g, gnd, 1.0).unwrap();
        ckt.add_mosfet("m1", Mosfet::new(d, g, gnd, gnd, "nmos", 10e-6, 1e-6))
            .unwrap();
        ckt.add_mosfet("m2", Mosfet::new(d, g, gnd, gnd, "nmos", 40e-6, 4e-6))
            .unwrap();
        ckt
    }

    #[test]
    fn perturbation_changes_models_and_instances() {
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let cfg = MonteCarloConfig::new(1, 123);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sample = perturb_circuit(&ckt, &var, &cfg, &mut rng);
        assert_ne!(sample.models()["nmos"].vto, ckt.models()["nmos"].vto);
        let m1 = match &sample.instance("m1").unwrap().device {
            Device::Mosfet(m) => m.clone(),
            _ => unreachable!(),
        };
        assert_ne!(m1.delta_vto, 0.0);
        assert_ne!(m1.beta_mult, 1.0);
    }

    #[test]
    fn larger_devices_receive_smaller_mismatch() {
        // Statistical check: the 40µ×4µ device has 4× the linear dimension of
        // the 10µ×1µ device, so its mismatch σ must be ~4× smaller.
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let cfg = MonteCarloConfig::new(400, 7).mismatch_only();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut small = Vec::new();
        let mut large = Vec::new();
        for _ in 0..cfg.samples {
            let sample = perturb_circuit(&ckt, &var, &cfg, &mut rng);
            for (name, acc) in [("m1", &mut small), ("m2", &mut large)] {
                if let Device::Mosfet(m) = &sample.instance(name).unwrap().device {
                    acc.push(m.delta_vto);
                }
            }
        }
        let s_small = Summary::of(&small).unwrap().std_dev;
        let s_large = Summary::of(&large).unwrap().std_dev;
        let ratio = s_small / s_large;
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn run_is_reproducible_for_same_seed() {
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let cfg = MonteCarloConfig::new(25, 42);
        let extract = |c: &Circuit| Some(c.models()["nmos"].vto);
        let a = run(&ckt, &var, &cfg, extract);
        let b = run(&ckt, &var, &cfg, extract);
        assert_eq!(a.values, b.values);
        assert_eq!(a.failed_samples, 0);
        assert_eq!(a.len(), 25);
        let different = run(&ckt, &var, &MonteCarloConfig::new(25, 43), extract);
        assert_ne!(a.values, different.values);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let cfg = MonteCarloConfig::new(10, 1);
        let mut counter = 0usize;
        let result = run(&ckt, &var, &cfg, |_| {
            counter += 1;
            if counter.is_multiple_of(2) {
                None
            } else {
                Some(counter as f64)
            }
        });
        assert_eq!(result.failed_samples, 5);
        assert_eq!(result.len(), 5);
        assert!(!result.is_empty());
        assert!(result.summary().is_some());
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let cfg = MonteCarloConfig::new(40, 11);
        let extract = |c: &Circuit| Some(c.models()["pmos"].kp);
        let sequential = run(&ckt, &var, &cfg, extract);
        let parallel = run_parallel(&ckt, &var, &cfg, 4, extract);
        assert_eq!(sequential.values, parallel.values);
    }

    #[test]
    fn component_toggles_isolate_variation_sources() {
        let ckt = mosfet_circuit();
        let var = ProcessVariation::generic_035um();
        let global_only = MonteCarloConfig::new(5, 3).global_only();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = perturb_circuit(&ckt, &var, &global_only, &mut rng);
        if let Device::Mosfet(m) = &sample.instance("m1").unwrap().device {
            assert_eq!(m.delta_vto, 0.0, "mismatch disabled");
        }
        let mismatch_only = MonteCarloConfig::new(5, 3).mismatch_only();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = perturb_circuit(&ckt, &var, &mismatch_only, &mut rng);
        assert_eq!(sample.models()["nmos"].vto, ckt.models()["nmos"].vto);
    }
}
