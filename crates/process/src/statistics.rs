//! Descriptive statistics and yield estimation.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of a slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Relative variation in percent: `100·k·σ / |mean|`.
    ///
    /// The paper's ΔGain / ΔPM columns (Table 2) express how far the
    /// performance may wander from its nominal value at the process extremes;
    /// with `k = 3` this is the conventional ±3 σ band.
    ///
    /// The zero-mean edges are defined rather than left to float division:
    /// a sample set with no spread has `0.0` variation whatever its mean,
    /// and a spread around a (near-)zero mean reports an astronomically
    /// large but *finite* percentage (the mean is clamped away from zero at
    /// `1e-30`). Finite matters: these values are persisted through the run
    /// store as JSON, which — like strict JSON everywhere — has no
    /// representation for infinity, so an `inf` here would silently come
    /// back as garbage after a round-trip, while the old behaviour (`0.0`)
    /// misreported the metric as perfectly stable.
    pub fn variation_percent(&self, k_sigma: f64) -> f64 {
        if self.std_dev == 0.0 {
            return 0.0;
        }
        100.0 * k_sigma * self.std_dev / self.mean.abs().max(1e-30)
    }

    /// Coefficient of variation in percent (`100·σ/|mean|`).
    pub fn cv_percent(&self) -> f64 {
        self.variation_percent(1.0)
    }
}

/// Quantile of a sample set using linear interpolation between order statistics.
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let t = pos - lo as f64;
        Some(sorted[lo] * (1.0 - t) + sorted[hi] * t)
    }
}

/// Fixed-width histogram of a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub start: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Sample counts per bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample range.
    ///
    /// Returns `None` for an empty slice or zero bin count.
    pub fn of(samples: &[f64], bins: usize) -> Option<Self> {
        if samples.is_empty() || bins == 0 {
            return None;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((max - min) / bins as f64).max(1e-300);
        let mut counts = vec![0usize; bins];
        for &x in samples {
            let idx = (((x - min) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Some(Histogram {
            start: min,
            bin_width: width,
            counts,
        })
    }

    /// Total number of samples in the histogram.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Parametric-yield estimate: fraction of samples for which `passes` is true.
///
/// Returns a value in `[0, 1]`, or `None` for an empty sample set.
pub fn yield_estimate<T>(samples: &[T], mut passes: impl FnMut(&T) -> bool) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let pass_count = samples.iter().filter(|&s| passes(s)).count();
    Some(pass_count as f64 / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic data set is ~2.138.
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        let single = Summary::of(&[3.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn variation_percent_uses_k_sigma() {
        let s = Summary::of(&[49.0, 50.0, 51.0]).unwrap();
        let one_sigma = s.variation_percent(1.0);
        let three_sigma = s.variation_percent(3.0);
        assert!((three_sigma / one_sigma - 3.0).abs() < 1e-9);
        assert!((s.cv_percent() - one_sigma).abs() < 1e-12);
    }

    #[test]
    fn variation_percent_zero_mean_edges_are_defined() {
        // Spread around a zero mean: huge (clamped-mean) but finite and
        // positive — not 0/0 garbage, not a silent 0, and (being finite)
        // it survives a JSON round-trip through the run store.
        let zero_mean = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(zero_mean.mean.abs() < 1e-30);
        let variation = zero_mean.variation_percent(3.0);
        assert!(variation.is_finite());
        assert!(variation > 1e30);
        assert!(zero_mean.cv_percent().is_finite());
        assert!(zero_mean.cv_percent() > 1e30);

        // No spread at all: zero variation, even at a zero mean.
        let constant_zero = Summary::of(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(constant_zero.variation_percent(3.0), 0.0);
        let constant = Summary::of(&[5.0, 5.0]).unwrap();
        assert_eq!(constant.variation_percent(3.0), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        assert!(quantile(&data, 1.5).is_none());
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    fn histogram_bins_cover_all_samples() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::of(&data, 10).unwrap();
        assert_eq!(h.counts.len(), 10);
        assert_eq!(h.total(), 100);
        assert!(h.counts.iter().all(|&c| c == 10));
        assert!(Histogram::of(&[], 10).is_none());
        assert!(Histogram::of(&data, 0).is_none());
    }

    #[test]
    fn yield_estimate_counts_passing_fraction() {
        let gains = [49.0, 50.5, 51.0, 48.0];
        let y = yield_estimate(&gains, |g| *g >= 50.0).unwrap();
        assert!((y - 0.5).abs() < 1e-12);
        assert!(yield_estimate::<f64>(&[], |_| true).is_none());
    }
}
