//! # ayb-process — process technology, statistical variation and Monte Carlo
//!
//! This crate models the statistical behaviour of the fabrication process that
//! the paper's flow samples with foundry Monte Carlo decks:
//!
//! * [`ProcessVariation`] — global (die-to-die) spreads and Pelgrom-law local
//!   mismatch coefficients for a generic 0.35 µm CMOS process,
//! * [`corners`] — deterministic five-corner analysis (TT/FF/SS/FS/SF),
//! * [`montecarlo`] — a seeded Monte Carlo engine that perturbs model cards
//!   and per-instance mismatch and evaluates arbitrary user metrics,
//! * [`statistics`] — summary statistics, quantiles, histograms and
//!   parametric-yield estimation.
//!
//! # Examples
//!
//! Estimating the threshold-voltage spread seen by a circuit:
//!
//! ```
//! use ayb_circuit::{Circuit, Mosfet};
//! use ayb_process::{montecarlo, MonteCarloConfig, ProcessVariation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new("mc-demo");
//! ckt.add_default_models();
//! let d = ckt.node("d");
//! let g = ckt.node("g");
//! let gnd = ckt.gnd();
//! ckt.add_vsource("vd", d, gnd, 1.5)?;
//! ckt.add_vsource("vg", g, gnd, 1.0)?;
//! ckt.add_mosfet("m1", Mosfet::new(d, g, gnd, gnd, "nmos", 10e-6, 1e-6))?;
//!
//! let run = montecarlo::run(
//!     &ckt,
//!     &ProcessVariation::generic_035um(),
//!     &MonteCarloConfig::new(64, 1),
//!     |sample| Some(sample.models()["nmos"].vto),
//! );
//! let stats = run.summary().expect("samples collected");
//! assert!(stats.std_dev > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corners;
pub mod montecarlo;
pub mod sampling;
pub mod statistics;
pub mod variation;

pub use corners::{apply_corner, Corner};
pub use montecarlo::{perturb_circuit, MonteCarloConfig, MonteCarloRun};
pub use statistics::{quantile, yield_estimate, Histogram, Summary};
pub use variation::{GlobalSpread, MismatchCoefficients, ProcessVariation};
