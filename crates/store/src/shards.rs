//! The on-disk shard data plane: distributed batch evaluation over a shared
//! store.
//!
//! PR 3's job server distributes whole *runs* (the control plane); this
//! module distributes the *evaluation work inside one run* (the data plane).
//! A sharded flow splits each optimiser population into deterministic,
//! index-ordered shards and publishes them under its run directory:
//!
//! ```text
//! <root>/runs/<run_id>/shards/<epoch>/
//!     shard_0000.task.json     # candidate parameters of shard 0
//!     shard_0000.claim.json    # present while a worker evaluates shard 0
//!     shard_0000.result.json   # evaluations of shard 0, once done
//!     shard_0001.task.json
//!     ...
//! ```
//!
//! One *epoch* directory corresponds to one `evaluate_batch` call (one
//! optimiser generation, typically) and is disposed of once the submitter
//! has assembled every shard's results. Claims use the same atomic
//! hard-link lock files as run claims, so any number of worker processes —
//! `ayb serve` on this machine or on other hosts mounting the same store —
//! race safely for shards: exactly one wins each, and a worker that dies
//! mid-shard is recovered (its claim broken, the shard re-evaluated) without
//! changing any result, because candidate evaluation is pure and results are
//! written atomically.
//!
//! [`ShardDataPlane`] is the submitter's view — it implements
//! [`ayb_moo::ShardTransport`], plugging the store into
//! [`ayb_moo::ShardedEvaluator`]. [`ShardTask`] / [`Store::open_shard_tasks`]
//! are the worker's view: scan, claim, evaluate, submit.
//!
//! ```
//! use ayb_store::ShardDataPlane;
//! use ayb_moo::{Evaluation, ShardTransport};
//! use std::time::Duration;
//!
//! let dir = std::env::temp_dir().join(format!("ayb-shard-doc-{}", std::process::id()));
//! let plane = ShardDataPlane::open(&dir, Duration::from_secs(30));
//! let epoch = plane.open_epoch(1).unwrap();
//! plane.publish(&epoch, 0, &[vec![0.5, 0.5]]).unwrap();
//! assert!(plane.try_claim(&epoch, 0).unwrap());
//! plane
//!     .submit(&epoch, 0, &vec![Some(Evaluation::new(vec![0.5, 0.5], vec![1.0]))])
//!     .unwrap();
//! assert!(plane.fetch(&epoch, 0).unwrap().is_some());
//! plane.close_epoch(&epoch).unwrap();
//! # let _ = std::fs::remove_dir_all(dir);
//! ```

use crate::{
    break_claim_file, file_mtime_age, io_error, next_fence, read_claim_file, read_json,
    take_claim_file, write_json, ClaimHealth, ClaimInfo, RunHandle, RunStatus, Store, StoreError,
};
use ayb_moo::{Evaluation, ShardError, ShardResults, ShardTransport};
use ayb_obs::{kind as event_kind, Event, Recorder, Severity};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Subdirectory of a run holding its shard epochs.
const SHARD_DIR: &str = "shards";

/// Epoch directory prefix of population-evaluation epochs.
const EVAL_EPOCH_PREFIX: &str = "ep-";

/// Epoch directory prefix of variation-analysis epochs.
const VARIATION_EPOCH_PREFIX: &str = "var-";

fn task_name(shard: usize) -> String {
    format!("shard_{shard:04}.task.json")
}

fn claim_name(shard: usize) -> String {
    format!("shard_{shard:04}.claim.json")
}

fn result_name(shard: usize) -> String {
    format!("shard_{shard:04}.result.json")
}

/// Per-shard fence counter file: every successful claim of the shard
/// advances it and stamps the new value into its `ClaimInfo` (see
/// [`ClaimInfo::fence`]), so successive claims on one shard are always
/// distinguishable — the precondition for discarding a fenced-off writer's
/// late result.
fn fence_name(shard: usize) -> String {
    format!("shard_{shard:04}.fence.json")
}

/// Parses `shard_NNNN.task.json` back into `NNNN`.
fn parse_task_name(name: &str) -> Option<usize> {
    name.strip_prefix("shard_")?
        .strip_suffix(".task.json")?
        .parse()
        .ok()
}

/// The kind of work a shard (or a whole epoch) carries.
///
/// Epoch directories encode their kind in the name (`ep-*` for evaluation,
/// `var-*` for variation), so listings like `ayb status` can distinguish the
/// stages without reading any task file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardWorkKind {
    /// GA population evaluation (one shard = a consecutive candidate range).
    Eval,
    /// Monte Carlo variation analysis (one shard = one Pareto point).
    Variation,
}

impl ShardWorkKind {
    /// Human-readable kind name (`eval` / `variation`).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardWorkKind::Eval => "eval",
            ShardWorkKind::Variation => "variation",
        }
    }

    /// The epoch-directory name prefix of this kind.
    fn epoch_prefix(self) -> &'static str {
        match self {
            ShardWorkKind::Eval => EVAL_EPOCH_PREFIX,
            ShardWorkKind::Variation => VARIATION_EPOCH_PREFIX,
        }
    }

    /// Classifies an epoch directory name by its prefix (unknown prefixes
    /// are treated as evaluation epochs — the original, untagged kind).
    fn of_epoch(epoch: &str) -> ShardWorkKind {
        if epoch.starts_with(VARIATION_EPOCH_PREFIX) {
            ShardWorkKind::Variation
        } else {
            ShardWorkKind::Eval
        }
    }
}

/// Typed payload of one shard task file: what a claiming worker must do.
///
/// PR 4's shard plane carried exactly one payload shape (candidate
/// parameters to evaluate); the tag makes the plane generic so one epoch
/// mechanism distributes every stage's work. Task files are ephemeral —
/// epochs are disposed of as soon as their batch is assembled — so the
/// format change needs no store migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardWork {
    /// Evaluate a consecutive range of a GA population: normalised candidate
    /// parameter vectors, in shard-local order.
    Eval {
        /// One parameter vector per candidate.
        parameters: Vec<Vec<f64>>,
    },
    /// Run the Monte Carlo variation analysis of one Pareto point.
    Variation {
        /// The point's normalised parameter vector.
        parameters: Vec<f64>,
        /// The point's own Monte Carlo seed (derived by the submitter from
        /// the flow's `monte_carlo.seed` and the point index, so any process
        /// analysing this point draws the identical sample sequence).
        mc_seed: u64,
    },
    /// Run the Monte Carlo variation analysis of several Pareto points in
    /// one task (the batched form of [`ShardWork::Variation`]: larger tasks
    /// amortise claim/commit overhead without changing any result — each
    /// point still carries its own derived seed).
    VariationBatch {
        /// The points of this batch, in submitter order.
        points: Vec<VariationPointWork>,
    },
}

/// One point of a [`ShardWork::VariationBatch`] task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationPointWork {
    /// The point's normalised parameter vector.
    pub parameters: Vec<f64>,
    /// The point's own Monte Carlo seed (same derivation as
    /// [`ShardWork::Variation`]).
    pub mc_seed: u64,
}

impl ShardWork {
    /// This payload's kind.
    pub fn kind(&self) -> ShardWorkKind {
        match self {
            ShardWork::Eval { .. } => ShardWorkKind::Eval,
            ShardWork::Variation { .. } | ShardWork::VariationBatch { .. } => {
                ShardWorkKind::Variation
            }
        }
    }
}

/// Wire form of one analysed Pareto point (a variation shard's output).
///
/// The analysed data itself is carried as opaque JSON (`serde::Value`): the
/// store moves it between processes byte-faithfully without depending on the
/// behavioural-model types that define it (`ayb_core` converts both ways).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationOutcome {
    /// The analysed point's variation data; `None` when the point could not
    /// be re-simulated (a legitimate, deterministic result — not an error).
    pub data: Option<Value>,
    /// Wall-clock seconds the analysing process spent on this point, so the
    /// submitter can account work done on other hosts.
    pub elapsed_seconds: f64,
}

/// Typed output of one shard, mirroring [`ShardWork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardOutcome {
    /// Evaluations of a population shard, one entry per candidate in
    /// shard-local order (`None` marks an infeasible candidate).
    Eval {
        /// The candidate evaluations.
        results: Vec<Option<Evaluation>>,
    },
    /// One analysed Pareto point.
    Variation(VariationOutcome),
    /// The analysed points of a [`ShardWork::VariationBatch`] task, in task
    /// order (one entry per point of the batch).
    VariationBatch {
        /// The per-point outcomes.
        points: Vec<VariationOutcome>,
    },
}

fn transport_error(error: StoreError) -> ShardError {
    ShardError::Transport(error.to_string())
}

/// A plane's in-flight fenced claims keyed by `(epoch, shard)`: the claim it
/// wrote, plus when it was taken (feeds the claim-to-submit histogram).
type HeldClaims = Arc<Mutex<HashMap<(String, usize), (ClaimInfo, Instant)>>>;

/// The submitter's handle on a run's shard directory; implements
/// [`ShardTransport`] so an [`ayb_moo::ShardedEvaluator`] can distribute its
/// batches through the store (see [`RunHandle::shard_plane`]).
#[derive(Debug, Clone)]
pub struct ShardDataPlane {
    dir: PathBuf,
    stale_after: Duration,
    /// Fenced claims this plane took and has not submitted yet, per
    /// `(epoch, shard)`; shared across clones. Submits re-check the claim
    /// file against the remembered claim and *discard* the result when it
    /// changed hands (this holder was presumed hung and superseded).
    claims: HeldClaims,
    /// Results this plane discarded because its claim had been stolen.
    fenced: Arc<AtomicU64>,
    /// Optional telemetry handle: claim/submit/fence/recover events and the
    /// claim-to-submit histogram. `None` costs nothing on the hot path.
    recorder: Option<Recorder>,
    /// The run this plane belongs to (derived from its directory), stamped
    /// into emitted events.
    run_id: Option<String>,
}

impl ShardDataPlane {
    /// Opens a shard plane rooted at `dir` (usually
    /// `runs/<id>/shards`, via [`RunHandle::shard_plane`]); shard claims
    /// whose holder cannot be probed are considered dead once their
    /// heartbeat is older than `stale_after`.
    pub fn open(dir: impl Into<PathBuf>, stale_after: Duration) -> ShardDataPlane {
        let dir = dir.into();
        let run_id = dir
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            .map(String::from);
        ShardDataPlane {
            dir,
            stale_after,
            claims: Arc::new(Mutex::new(HashMap::new())),
            fenced: Arc::new(AtomicU64::new(0)),
            recorder: None,
            run_id,
        }
    }

    /// Attaches a telemetry recorder: the plane emits
    /// `shard_claim`/`shard_submit`/`shard_fenced`/`shard_recover` events
    /// and feeds the `ayb_claim_to_submit_seconds` histogram. Telemetry is
    /// diagnostic only — it never changes what the plane reads or writes.
    pub fn with_recorder(mut self, recorder: Recorder) -> ShardDataPlane {
        self.recorder = Some(recorder);
        self
    }

    /// Builds a shard event pre-stamped with this plane's run id and the
    /// shard coordinates.
    fn shard_event(&self, severity: Severity, kind: &str, epoch: &str, shard: usize) -> Event {
        let mut event = Event::new(severity, "shards", kind)
            .epoch(epoch)
            .shard(shard as u64);
        if let Some(run_id) = &self.run_id {
            event = event.run(run_id);
        }
        event
    }

    /// Emits `event` when a recorder is attached.
    fn emit(&self, event: Event) {
        if let Some(recorder) = &self.recorder {
            recorder.emit(event);
        }
    }

    /// How many of this plane's own submissions were discarded because the
    /// underlying claim had been stolen in the meantime (shared across
    /// clones).
    pub fn fenced_rejections(&self) -> u64 {
        self.fenced.load(Ordering::Relaxed)
    }

    fn epoch_dir(&self, epoch: &str) -> PathBuf {
        self.dir.join(epoch)
    }

    /// Opens a new epoch of `kind`-tagged work, returning its identifier.
    /// The kind is encoded in the epoch directory name, so listings can
    /// distinguish evaluation from variation epochs with a single readdir.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the epoch directory cannot be
    /// created.
    pub fn open_typed_epoch(&self, kind: ShardWorkKind) -> Result<String, ShardError> {
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let epoch = format!(
            "{}{}-{}-{}",
            kind.epoch_prefix(),
            crate::now_unix(),
            std::process::id(),
            NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let dir = self.epoch_dir(&epoch);
        fs::create_dir_all(&dir).map_err(|e| transport_error(io_error(&dir, e)))?;
        if let Some(recorder) = &self.recorder {
            let mut event = Event::new(Severity::Debug, "shards", event_kind::EPOCH_OPEN)
                .epoch(&epoch)
                .detail(format!("{} epoch opened", kind.as_str()));
            if let Some(run_id) = &self.run_id {
                event = event.run(run_id);
            }
            recorder.emit(event);
        }
        Ok(epoch)
    }

    /// Publishes shard `shard`'s typed payload into `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the task file cannot be
    /// written.
    pub fn publish_work(
        &self,
        epoch: &str,
        shard: usize,
        work: &ShardWork,
    ) -> Result<(), ShardError> {
        let path = self.epoch_dir(epoch).join(task_name(shard));
        write_json(&path, work).map_err(transport_error)
    }

    /// Stores shard `shard`'s typed outcome and releases this process's
    /// claim on it — *unless* the claim was stolen since this plane took it
    /// (the holder was presumed hung and a recovery pass superseded it), in
    /// which case the result is **discarded**, not written: the thief's own
    /// result is identical by determinism, and a fenced-off writer must
    /// never overwrite anything. A filesystem cannot make the re-check and
    /// the write one atomic step (the TCP coordinator's token check can, and
    /// does), but the re-check shrinks the stale-writer window from a whole
    /// evaluation to a single stat-and-rename — and duplicate *identical*
    /// writes are benign anyway.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when the result file cannot be
    /// written.
    pub fn submit_outcome(
        &self,
        epoch: &str,
        shard: usize,
        outcome: &ShardOutcome,
    ) -> Result<(), ShardError> {
        let dir = self.epoch_dir(epoch);
        let key = (epoch.to_string(), shard);
        let mine = self
            .claims
            .lock()
            .expect("shard claim table lock")
            .get(&key)
            .cloned();
        if let Some((mine, _)) = &mine {
            let current = read_claim_file(&dir.join(claim_name(shard))).map_err(transport_error)?;
            if current.as_ref() != Some(mine) {
                // Fenced off (or the epoch is gone): discard silently.
                self.fenced.fetch_add(1, Ordering::Relaxed);
                self.emit(
                    self.shard_event(Severity::Warn, event_kind::SHARD_FENCED, epoch, shard)
                        .fence(mine.fence)
                        .detail("stale submit discarded: claim changed hands"),
                );
                self.claims
                    .lock()
                    .expect("shard claim table lock")
                    .remove(&key);
                return Ok(());
            }
        }
        write_json(&dir.join(result_name(shard)), outcome).map_err(transport_error)?;
        let _ = fs::remove_file(dir.join(claim_name(shard)));
        if let Some(recorder) = &self.recorder {
            let mut event =
                self.shard_event(Severity::Debug, event_kind::SHARD_SUBMIT, epoch, shard);
            if let Some((mine, claimed_at)) = &mine {
                let elapsed = claimed_at.elapsed().as_secs_f64();
                event = event.fence(mine.fence).value(elapsed);
                recorder
                    .metrics()
                    .observe("ayb_claim_to_submit_seconds", elapsed);
            }
            recorder.emit(event);
        }
        self.claims
            .lock()
            .expect("shard claim table lock")
            .remove(&key);
        Ok(())
    }

    /// Fetches shard `shard`'s typed outcome, if some worker has submitted
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Transport`] when an existing result file is
    /// unreadable or malformed.
    pub fn fetch_outcome(
        &self,
        epoch: &str,
        shard: usize,
    ) -> Result<Option<ShardOutcome>, ShardError> {
        let path = self.epoch_dir(epoch).join(result_name(shard));
        if !path.is_file() {
            return Ok(None);
        }
        let outcome: ShardOutcome = read_json(&path).map_err(transport_error)?;
        Ok(Some(outcome))
    }
}

impl ShardTransport for ShardDataPlane {
    fn open_epoch(&self, _shard_count: usize) -> Result<String, ShardError> {
        self.open_typed_epoch(ShardWorkKind::Eval)
    }

    fn publish(
        &self,
        epoch: &str,
        shard: usize,
        parameters: &[Vec<f64>],
    ) -> Result<(), ShardError> {
        self.publish_work(
            epoch,
            shard,
            &ShardWork::Eval {
                parameters: parameters.to_vec(),
            },
        )
    }

    fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        let dir = self.epoch_dir(epoch);
        let fence = match next_fence(&dir.join(fence_name(shard))) {
            Ok(fence) => fence,
            // The epoch is gone (or unwritable): a clean claim miss, same
            // as losing the race.
            Err(_) => return Ok(false),
        };
        let info = ClaimInfo::for_this_process("shard-submitter").with_fence(fence);
        let taken =
            take_claim_file(&dir, &dir.join(claim_name(shard)), &info).map_err(transport_error)?;
        if taken {
            self.emit(
                self.shard_event(Severity::Debug, event_kind::SHARD_CLAIM, epoch, shard)
                    .fence(info.fence),
            );
            self.claims
                .lock()
                .expect("shard claim table lock")
                .insert((epoch.to_string(), shard), (info, Instant::now()));
        }
        Ok(taken)
    }

    fn submit(&self, epoch: &str, shard: usize, results: &ShardResults) -> Result<(), ShardError> {
        self.submit_outcome(
            epoch,
            shard,
            &ShardOutcome::Eval {
                results: results.clone(),
            },
        )
    }

    fn fetch(&self, epoch: &str, shard: usize) -> Result<Option<ShardResults>, ShardError> {
        match self.fetch_outcome(epoch, shard)? {
            Some(ShardOutcome::Eval { results }) => Ok(Some(results)),
            // A non-evaluation outcome under an evaluation fetch cannot
            // happen in a well-formed epoch; treat it as "not ready" so the
            // shard is simply re-evaluated.
            Some(ShardOutcome::Variation(_) | ShardOutcome::VariationBatch { .. }) | None => {
                Ok(None)
            }
        }
    }

    fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        let dir = self.epoch_dir(epoch);
        let path = dir.join(claim_name(shard));
        let Some(claim) = read_claim_file(&path).map_err(transport_error)? else {
            return Ok(false);
        };
        let age = file_mtime_age(&path).unwrap_or(Duration::MAX);
        // Shard claims may be broken more aggressively than run claims:
        // duplicate shard evaluation is benign (pure function, atomic result
        // writes), so even a *hung* local holder is recovered once its claim
        // goes stale — the batch must not wedge behind it.
        let stale = match claim.health(age, self.stale_after) {
            ClaimHealth::Alive => false,
            ClaimHealth::Hung | ClaimHealth::Dead => true,
        };
        if !stale {
            return Ok(false);
        }
        let broken = break_claim_file(&dir, &path, &claim).map_err(transport_error)?;
        if broken {
            self.emit(
                self.shard_event(Severity::Warn, event_kind::SHARD_RECOVER, epoch, shard)
                    .fence(claim.fence)
                    .detail(format!("stale claim of `{}` broken", claim.owner)),
            );
        }
        Ok(broken)
    }

    fn close_epoch(&self, epoch: &str) -> Result<(), ShardError> {
        remove_epoch_dir(&self.epoch_dir(epoch)).map_err(transport_error)?;
        self.emit(Event::new(Severity::Debug, "shards", event_kind::EPOCH_CLOSE).epoch(epoch));
        // Opportunistically drop the now-empty `shards/` parent, so idle
        // workers can dismiss this run with a single stat instead of a
        // directory scan (fails harmlessly if another epoch is open).
        let _ = fs::remove_dir(&self.dir);
        Ok(())
    }
}

/// Removes one epoch directory, absorbing the claim race: a worker that
/// scanned the epoch just before disposal may still be staging a claim file
/// inside it, which can make a single `remove_dir_all` pass fail with
/// `ENOTEMPTY`. Each retry deletes whatever reappeared; the worker's
/// follow-up (load task, submit result) finds the directory gone and backs
/// off, so a few attempts always win.
fn remove_epoch_dir(dir: &Path) -> Result<(), StoreError> {
    const ATTEMPTS: usize = 8;
    for attempt in 0..ATTEMPTS {
        match fs::remove_dir_all(dir) {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) if attempt + 1 == ATTEMPTS => return Err(io_error(dir, e)),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    unreachable!("the loop returns on its final attempt");
}

/// Counts of a run's open shard work (see [`RunHandle::shard_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Open epochs of any kind under the run.
    pub epochs: usize,
    /// Open variation-analysis epochs (the remainder are evaluation
    /// epochs) — `ayb status` uses this to label what stage a run's shard
    /// work belongs to.
    pub variation_epochs: usize,
    /// Published shard tasks across all open epochs.
    pub tasks: usize,
    /// Shards currently claimed by a worker.
    pub claimed: usize,
    /// Shards whose results have been submitted.
    pub completed: usize,
}

impl RunHandle {
    fn shards_dir(&self) -> PathBuf {
        self.dir().join(SHARD_DIR)
    }

    /// The run's shard data plane, ready to plug into an
    /// [`ayb_moo::ShardedEvaluator`]; see [`ShardDataPlane::open`] for
    /// `stale_after`.
    pub fn shard_plane(&self, stale_after: Duration) -> ShardDataPlane {
        ShardDataPlane::open(self.shards_dir(), stale_after)
    }

    /// Counts the run's open shard epochs, tasks, claims and results (for
    /// `ayb status` and monitoring).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when a directory scan fails.
    pub fn shard_summary(&self) -> Result<ShardSummary, StoreError> {
        let mut summary = ShardSummary::default();
        let shards = self.shards_dir();
        if !shards.is_dir() {
            return Ok(summary);
        }
        for epoch in read_dir_sorted(&shards)? {
            if !epoch.is_dir() {
                continue;
            }
            summary.epochs += 1;
            let kind = epoch
                .file_name()
                .and_then(|n| n.to_str())
                .map(ShardWorkKind::of_epoch)
                .unwrap_or(ShardWorkKind::Eval);
            if kind == ShardWorkKind::Variation {
                summary.variation_epochs += 1;
            }
            for path in read_dir_sorted(&epoch)? {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if name.ends_with(".task.json") {
                    summary.tasks += 1;
                } else if name.ends_with(".claim.json") {
                    summary.claimed += 1;
                } else if name.ends_with(".result.json") {
                    summary.completed += 1;
                }
            }
        }
        Ok(summary)
    }

    /// Removes every shard epoch under the run, returning how many were
    /// swept.
    ///
    /// Only safe for the run's exclusive owner (claim holder) or for
    /// housekeeping of terminal runs: a sharded flow sweeps leftovers from a
    /// dead predecessor when it starts, and `ayb gc` sweeps the shards of
    /// completed runs.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when an epoch directory cannot be removed.
    pub fn sweep_shards(&self) -> Result<usize, StoreError> {
        let shards = self.shards_dir();
        if !shards.is_dir() {
            return Ok(0);
        }
        let mut swept = 0;
        for epoch in read_dir_sorted(&shards)? {
            if !epoch.is_dir() {
                continue;
            }
            remove_epoch_dir(&epoch)?;
            swept += 1;
        }
        // Drop the empty parent too, so worker scans dismiss this run with
        // one stat (harmless failure if an epoch opened concurrently).
        let _ = fs::remove_dir(&shards);
        Ok(swept)
    }
}

/// Directory entries of `dir`, sorted by name for deterministic scans.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| io_error(dir, e))?;
    let mut paths = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| io_error(dir, e))?.path());
    }
    paths.sort();
    Ok(paths)
}

/// A claimable shard evaluation task, as seen by a worker (see
/// [`Store::open_shard_tasks`]): claim it, load its parameters, evaluate
/// them, submit the results.
#[derive(Debug, Clone)]
pub struct ShardTask {
    run_id: String,
    epoch: String,
    shard: usize,
    epoch_dir: PathBuf,
    /// The fenced claim this task holds after a successful
    /// [`ShardTask::try_claim`]; submits re-check it against the claim file
    /// and discard the result when it changed hands.
    claimed: Option<ClaimInfo>,
}

impl ShardTask {
    /// The run this shard belongs to.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The evaluation epoch (one optimiser batch) this shard belongs to.
    pub fn epoch(&self) -> &str {
        &self.epoch
    }

    /// The shard's index within its epoch.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The kind of work this shard carries, judged from its epoch's name
    /// (cheap — no file read; the task file's payload tag is authoritative).
    pub fn work_kind(&self) -> ShardWorkKind {
        ShardWorkKind::of_epoch(&self.epoch)
    }

    fn claim_path(&self) -> PathBuf {
        self.epoch_dir.join(claim_name(self.shard))
    }

    /// Atomically claims the shard for evaluation by this process, minting a
    /// fencing token for the claim (see [`ClaimInfo::fence`]). Returns
    /// `false` when another worker already holds it — or the epoch has been
    /// disposed of in the meantime.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on filesystem
    /// failures other than the ordinary lost race.
    pub fn try_claim(&mut self, owner: &str) -> Result<bool, StoreError> {
        let fence = match next_fence(&self.epoch_dir.join(fence_name(self.shard))) {
            Ok(fence) => fence,
            // Epoch disposed of under us: a clean miss.
            Err(_) => return Ok(false),
        };
        let info = ClaimInfo::for_this_process(owner).with_fence(fence);
        let taken = take_claim_file(&self.epoch_dir, &self.claim_path(), &info)?;
        if taken {
            self.claimed = Some(info);
        }
        Ok(taken)
    }

    /// Starts a heartbeat on this shard's claim (see [`crate::ClaimHeartbeat`]),
    /// protecting a slow evaluation from aggressive recovery.
    pub fn start_claim_heartbeat(&self, interval: Duration) -> crate::ClaimHeartbeat {
        crate::ClaimHeartbeat::start(self.claim_path(), interval)
    }

    /// Loads the shard's typed payload; `None` when the epoch was closed
    /// (the submitter assembled the batch without this shard — nothing left
    /// to do).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] when an existing task file is malformed.
    pub fn load_work(&self) -> Result<Option<ShardWork>, StoreError> {
        let path = self.epoch_dir.join(task_name(self.shard));
        if !path.is_file() {
            return Ok(None);
        }
        let work: ShardWork = read_json(&path)?;
        Ok(Some(work))
    }

    /// Loads the shard's candidate parameters — evaluation shards only;
    /// `None` when the epoch was closed *or* the shard carries non-eval work
    /// (use [`ShardTask::load_work`] for the typed payload).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] when an existing task file is malformed.
    pub fn load_parameters(&self) -> Result<Option<Vec<Vec<f64>>>, StoreError> {
        match self.load_work()? {
            Some(ShardWork::Eval { parameters }) => Ok(Some(parameters)),
            _ => Ok(None),
        }
    }

    /// Atomically writes the shard's typed outcome and releases this
    /// worker's claim. Returns whether the result was accepted: `false`
    /// means this worker's claim was stolen while it worked (it was presumed
    /// hung and superseded) and the result was **discarded** — the thief
    /// re-services the shard with an identical outcome, so the caller
    /// treats this as a skip, not a failure.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the result
    /// cannot be written (e.g. the epoch was closed mid-evaluation; the
    /// submitter no longer needs the result, so callers treat this as a
    /// skip too).
    pub fn submit_outcome(&self, outcome: &ShardOutcome) -> Result<bool, StoreError> {
        if let Some(mine) = &self.claimed {
            if read_claim_file(&self.claim_path())?.as_ref() != Some(mine) {
                // Fenced off: a recovery pass stole this claim.
                return Ok(false);
            }
        }
        write_json(&self.epoch_dir.join(result_name(self.shard)), outcome)?;
        let _ = fs::remove_file(self.claim_path());
        Ok(true)
    }

    /// Atomically writes an evaluation shard's results and releases this
    /// worker's claim (see [`ShardTask::submit_outcome`]).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the result
    /// cannot be written.
    pub fn submit_results(&self, results: &[Option<Evaluation>]) -> Result<bool, StoreError> {
        self.submit_outcome(&ShardOutcome::Eval {
            results: results.to_vec(),
        })
    }

    /// Releases this worker's claim without submitting a result (e.g. the
    /// task file vanished after the claim). Compare-and-delete: a claim
    /// that already changed hands is left untouched.
    pub fn release(&self) {
        match &self.claimed {
            Some(mine) => {
                let _ = break_claim_file(&self.epoch_dir, &self.claim_path(), mine);
            }
            None => {
                let _ = fs::remove_file(self.claim_path());
            }
        }
    }
}

impl Store {
    /// Scans for claimable shard evaluation tasks: published shards of
    /// `Running` runs that have no result and no claim yet, in deterministic
    /// (run, epoch, shard) order.
    ///
    /// Workers iterate the list and [`ShardTask::try_claim`] each candidate;
    /// a lost race simply moves on to the next. Shards whose claim holder
    /// died are re-offered once the submitter's recovery pass breaks the
    /// stale claim.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read
    /// (individual unreadable runs are skipped).
    pub fn open_shard_tasks(&self) -> Result<Vec<ShardTask>, StoreError> {
        let mut tasks = Vec::new();
        for run_id in self.run_ids()? {
            // Cheap checks first: workers poll this scan every tick, and a
            // store full of finished runs must cost stats, not JSON manifest
            // parses. Runs without open epochs (the overwhelming majority —
            // `close_epoch`/`sweep_shards` remove empty `shards/` dirs) are
            // dismissed before their manifest is ever read.
            let Ok(handle) = self.run(&run_id) else {
                continue;
            };
            let shards = handle.shards_dir();
            if !shards.is_dir() {
                continue;
            }
            let Ok(epochs) = read_dir_sorted(&shards) else {
                continue;
            };
            if epochs.is_empty() {
                continue;
            }
            // Only the claim-holding flow of a Running run publishes shards;
            // anything else has no live epochs worth scanning.
            if handle.status().ok() != Some(RunStatus::Running) {
                continue;
            }
            for epoch_dir in epochs {
                if !epoch_dir.is_dir() {
                    continue;
                }
                let Some(epoch) = epoch_dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .map(String::from)
                else {
                    continue;
                };
                let Ok(entries) = read_dir_sorted(&epoch_dir) else {
                    continue;
                };
                for path in entries {
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let Some(shard) = parse_task_name(name) else {
                        continue;
                    };
                    if epoch_dir.join(result_name(shard)).is_file()
                        || epoch_dir.join(claim_name(shard)).is_file()
                    {
                        continue;
                    }
                    tasks.push(ShardTask {
                        run_id: run_id.clone(),
                        epoch: epoch.clone(),
                        shard,
                        epoch_dir: epoch_dir.clone(),
                        claimed: None,
                    });
                }
            }
        }
        Ok(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_moo::{GaConfig, OptimizerConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store() -> (PathBuf, Store) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "ayb-shards-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    fn running_run(store: &Store) -> RunHandle {
        store
            .create_run(
                7,
                &OptimizerConfig::Wbga(GaConfig::small_test()),
                &"flow-config",
            )
            .expect("run created")
    }

    fn evaluation(x: f64) -> Option<Evaluation> {
        Some(Evaluation::new(vec![x], vec![x * 2.0]))
    }

    #[test]
    fn publish_claim_submit_fetch_roundtrip() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));

        let epoch = plane.open_epoch(2).unwrap();
        plane.publish(&epoch, 0, &[vec![0.1], vec![0.2]]).unwrap();
        plane.publish(&epoch, 1, &[vec![0.3]]).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);

        assert!(plane.try_claim(&epoch, 0).unwrap());
        assert!(!plane.try_claim(&epoch, 0).unwrap(), "claims are exclusive");

        let results = vec![evaluation(0.1), None];
        plane.submit(&epoch, 0, &results).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(results));
        // Submitting released the claim.
        assert!(plane.try_claim(&epoch, 0).unwrap());

        let summary = run.shard_summary().unwrap();
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.tasks, 2);
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.claimed, 1);

        plane.close_epoch(&epoch).unwrap();
        assert_eq!(run.shard_summary().unwrap(), ShardSummary::default());
        // Closing twice is fine.
        plane.close_epoch(&epoch).unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn workers_discover_claim_and_service_tasks() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(2).unwrap();
        plane.publish(&epoch, 0, &[vec![0.1]]).unwrap();
        plane.publish(&epoch, 1, &[vec![0.2]]).unwrap();

        let tasks = store.open_shard_tasks().unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].run_id(), run.id());
        assert_eq!(tasks[0].epoch(), epoch);
        assert_eq!((tasks[0].shard(), tasks[1].shard()), (0, 1));

        // Worker services shard 0 end to end.
        let mut tasks = tasks;
        assert!(tasks[0].try_claim("worker-a").unwrap());
        {
            let mut rival = tasks[0].clone();
            assert!(!rival.try_claim("worker-b").unwrap());
        }
        let task = &tasks[0];
        let parameters = task.load_parameters().unwrap().unwrap();
        assert_eq!(parameters, vec![vec![0.1]]);
        assert!(task.submit_results(&[evaluation(0.1)]).unwrap());
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(vec![evaluation(0.1)]));

        // Serviced and claimed shards disappear from the scan.
        assert!(tasks[1].try_claim("worker-c").unwrap());
        assert!(store.open_shard_tasks().unwrap().is_empty());
        tasks[1].release();
        assert_eq!(store.open_shard_tasks().unwrap().len(), 1);

        // Tasks of non-Running runs are never offered.
        run.set_status(RunStatus::Interrupted).unwrap();
        assert!(store.open_shard_tasks().unwrap().is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fenced_off_stale_writer_result_is_discarded() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let zombie = run.shard_plane(Duration::from_secs(30));
        let epoch = zombie.open_epoch(1).unwrap();
        zombie.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        assert!(zombie.try_claim(&epoch, 0).unwrap());

        // The zombie's heartbeat lapses; a recovery pass breaks its claim
        // and a steward re-claims the shard at a higher fence.
        let claim_path = root
            .join("runs")
            .join(run.id())
            .join("shards")
            .join(&epoch)
            .join(claim_name(0));
        fs::remove_file(&claim_path).unwrap();
        let steward = run.shard_plane(Duration::from_secs(30));
        assert!(steward.try_claim(&epoch, 0).unwrap());

        // The zombie wakes up and submits: discarded, not written.
        zombie.submit(&epoch, 0, &vec![evaluation(-1.0)]).unwrap();
        assert_eq!(zombie.fenced_rejections(), 1);
        assert_eq!(steward.fetch(&epoch, 0).unwrap(), None);

        // The steward's own submission lands as usual.
        steward.submit(&epoch, 0, &vec![evaluation(0.5)]).unwrap();
        assert_eq!(steward.fenced_rejections(), 0);
        assert_eq!(
            steward.fetch(&epoch, 0).unwrap(),
            Some(vec![evaluation(0.5)])
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fenced_off_stale_worker_task_submit_reports_discard() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();

        let mut tasks = store.open_shard_tasks().unwrap();
        assert!(tasks[0].try_claim("worker-hung").unwrap());

        // Recovery steals the hung worker's claim; a rival re-claims it.
        let claim_path = root
            .join("runs")
            .join(run.id())
            .join("shards")
            .join(&epoch)
            .join(claim_name(0));
        fs::remove_file(&claim_path).unwrap();
        let mut rival = tasks[0].clone();
        assert!(rival.try_claim("worker-fresh").unwrap());

        // The hung worker finally finishes: its write is refused, and the
        // rival's claim file survives untouched.
        assert!(!tasks[0].submit_results(&[evaluation(-1.0)]).unwrap());
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);
        assert!(claim_path.is_file(), "successor's claim must survive");

        assert!(rival.submit_results(&[evaluation(0.5)]).unwrap());
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(vec![evaluation(0.5)]));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn claiming_a_closed_epoch_is_a_clean_miss() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        let tasks = store.open_shard_tasks().unwrap();
        assert_eq!(tasks.len(), 1);

        // The submitter assembles and closes the epoch before the worker
        // gets to the task: the claim must fail gracefully, not error.
        plane.close_epoch(&epoch).unwrap();
        let mut tasks = tasks;
        assert!(!tasks[0].try_claim("late-worker").unwrap());
        assert_eq!(tasks[0].load_parameters().unwrap(), None);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn dead_worker_shard_claims_are_recovered() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();

        // Forge a claim from a dead process on this host (no Linux pid is
        // ever u32::MAX).
        let dead = ClaimInfo {
            owner: "dead-shard-worker".to_string(),
            pid: u32::MAX,
            host: crate::local_host().to_string(),
            claimed_unix: crate::now_unix(),
            fence: 1,
        };
        let claim_path = run.shards_dir().join(&epoch).join(claim_name(0));
        crate::write_json(&claim_path, &dead).unwrap();
        assert!(!plane.try_claim(&epoch, 0).unwrap(), "claim is held");

        // Recovery breaks the dead claim; the shard is claimable again.
        assert!(plane.recover(&epoch, 0).unwrap());
        assert!(plane.try_claim(&epoch, 0).unwrap());
        // A live claim (ours) is never recovered: fresh heartbeat, live pid.
        assert!(!plane.recover(&epoch, 0).unwrap());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn foreign_host_claims_go_stale_by_heartbeat_age() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_millis(50));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();

        let foreign = ClaimInfo {
            owner: "worker-on-another-box".to_string(),
            pid: std::process::id(), // same pid, *different* host
            host: "some-other-host".to_string(),
            claimed_unix: crate::now_unix(),
            fence: 1,
        };
        let claim_path = run.shards_dir().join(&epoch).join(claim_name(0));
        crate::write_json(&claim_path, &foreign).unwrap();

        // Fresh heartbeat: the foreign worker is presumed alive.
        assert!(!plane.recover(&epoch, 0).unwrap());
        // Stale heartbeat: presumed dead, claim broken.
        std::thread::sleep(Duration::from_millis(80));
        assert!(plane.recover(&epoch, 0).unwrap());
        assert!(plane.try_claim(&epoch, 0).unwrap());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_shards_clears_stale_epochs() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        for _ in 0..3 {
            let epoch = plane.open_epoch(1).unwrap();
            plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        }
        assert_eq!(run.shard_summary().unwrap().epochs, 3);
        assert_eq!(run.sweep_shards().unwrap(), 3);
        assert_eq!(run.shard_summary().unwrap(), ShardSummary::default());
        assert_eq!(run.sweep_shards().unwrap(), 0, "second sweep is a no-op");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn typed_variation_work_roundtrips_over_the_plane() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));

        let epoch = plane.open_typed_epoch(ShardWorkKind::Variation).unwrap();
        assert!(
            epoch.starts_with("var-"),
            "variation epochs are name-tagged: {epoch}"
        );
        let work = ShardWork::Variation {
            parameters: vec![0.25, 0.75],
            mc_seed: 0xfeed_beef,
        };
        plane.publish_work(&epoch, 0, &work).unwrap();

        // The worker view sees the typed payload; the eval-only view
        // declines it.
        let tasks = store.open_shard_tasks().unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].work_kind(), ShardWorkKind::Variation);
        assert_eq!(tasks[0].load_work().unwrap(), Some(work.clone()));
        assert_eq!(tasks[0].load_parameters().unwrap(), None);
        assert_eq!(work.kind(), ShardWorkKind::Variation);

        // Claim, service, fetch: the opaque data payload survives verbatim.
        let mut tasks = tasks;
        assert!(tasks[0].try_claim("variation-worker").unwrap());
        let outcome = ShardOutcome::Variation(VariationOutcome {
            data: Some(Value::Object(vec![(
                "gain_db".to_string(),
                Value::Float(61.5),
            )])),
            elapsed_seconds: 0.125,
        });
        assert!(tasks[0].submit_outcome(&outcome).unwrap());
        assert_eq!(plane.fetch_outcome(&epoch, 0).unwrap(), Some(outcome));
        // The eval-typed transport fetch declines a variation outcome
        // instead of misreading it.
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);

        let summary = run.shard_summary().unwrap();
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.variation_epochs, 1);
        assert_eq!(summary.tasks, 1);
        assert_eq!(summary.completed, 1);

        plane.close_epoch(&epoch).unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn eval_epochs_stay_untagged_and_uncounted_as_variation() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        assert!(epoch.starts_with("ep-"));
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        let summary = run.shard_summary().unwrap();
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.variation_epochs, 0);
        assert_eq!(
            store.open_shard_tasks().unwrap()[0].work_kind(),
            ShardWorkKind::Eval
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn variation_checkpoints_roundtrip_and_sweep() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        assert!(run.variation_checkpoint_indices().unwrap().is_empty());

        // Record types are the caller's own; the store is agnostic.
        run.save_variation_checkpoint(7, &vec![1.5f64, 2.5])
            .unwrap();
        run.save_variation_checkpoint(2, &vec![0.5f64]).unwrap();
        assert_eq!(run.variation_checkpoint_indices().unwrap(), vec![2, 7]);
        let restored: Vec<f64> = run.load_variation_checkpoint(7).unwrap();
        assert_eq!(restored, vec![1.5, 2.5]);

        // Generation checkpoints and variation checkpoints never collide.
        assert!(run.checkpoint_generations().unwrap().is_empty());

        assert_eq!(run.sweep_variation_checkpoints().unwrap(), 2);
        assert!(run.variation_checkpoint_indices().unwrap().is_empty());
        assert_eq!(run.sweep_variation_checkpoints().unwrap(), 0);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn plane_telemetry_reconciles_with_its_counters() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let recorder = Recorder::new();
        let plane = run
            .shard_plane(Duration::from_secs(30))
            .with_recorder(recorder.clone());
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        assert!(plane.try_claim(&epoch, 0).unwrap());

        // Steal the claim; the plane's own submit must be fenced and the
        // event stream must say so, at the same count as the counter.
        let claim_path = run.shards_dir().join(&epoch).join(claim_name(0));
        fs::remove_file(&claim_path).unwrap();
        let thief = run.shard_plane(Duration::from_secs(30));
        assert!(thief.try_claim(&epoch, 0).unwrap());
        plane.submit(&epoch, 0, &vec![evaluation(0.5)]).unwrap();
        assert_eq!(plane.fenced_rejections(), 1);

        let events = recorder.recent();
        let fenced: Vec<_> = events
            .iter()
            .filter(|e| e.kind == event_kind::SHARD_FENCED)
            .collect();
        assert_eq!(fenced.len() as u64, plane.fenced_rejections());
        assert_eq!(fenced[0].epoch.as_deref(), Some(epoch.as_str()));
        assert_eq!(fenced[0].shard, Some(0));
        assert_eq!(fenced[0].run_id.as_deref(), Some(run.id()));
        assert!(fenced[0].fence.is_some());
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == event_kind::SHARD_CLAIM)
                .count(),
            1
        );

        // A clean claim/submit cycle feeds the claim-to-submit histogram.
        thief.submit(&epoch, 0, &vec![evaluation(0.5)]).unwrap();
        assert!(plane.try_claim(&epoch, 0).unwrap());
        plane.submit(&epoch, 0, &vec![evaluation(0.5)]).unwrap();
        let histogram = recorder
            .metrics()
            .histogram("ayb_claim_to_submit_seconds")
            .expect("histogram exists");
        assert_eq!(histogram.count(), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn task_names_roundtrip() {
        assert_eq!(parse_task_name(&task_name(0)), Some(0));
        assert_eq!(parse_task_name(&task_name(123)), Some(123));
        assert_eq!(parse_task_name("shard_0001.result.json"), None);
        assert_eq!(parse_task_name("shard_x.task.json"), None);
        assert_eq!(parse_task_name("claim.json"), None);
    }
}
