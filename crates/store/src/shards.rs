//! The on-disk shard data plane: distributed batch evaluation over a shared
//! store.
//!
//! PR 3's job server distributes whole *runs* (the control plane); this
//! module distributes the *evaluation work inside one run* (the data plane).
//! A sharded flow splits each optimiser population into deterministic,
//! index-ordered shards and publishes them under its run directory:
//!
//! ```text
//! <root>/runs/<run_id>/shards/<epoch>/
//!     shard_0000.task.json     # candidate parameters of shard 0
//!     shard_0000.claim.json    # present while a worker evaluates shard 0
//!     shard_0000.result.json   # evaluations of shard 0, once done
//!     shard_0001.task.json
//!     ...
//! ```
//!
//! One *epoch* directory corresponds to one `evaluate_batch` call (one
//! optimiser generation, typically) and is disposed of once the submitter
//! has assembled every shard's results. Claims use the same atomic
//! hard-link lock files as run claims, so any number of worker processes —
//! `ayb serve` on this machine or on other hosts mounting the same store —
//! race safely for shards: exactly one wins each, and a worker that dies
//! mid-shard is recovered (its claim broken, the shard re-evaluated) without
//! changing any result, because candidate evaluation is pure and results are
//! written atomically.
//!
//! [`ShardDataPlane`] is the submitter's view — it implements
//! [`ayb_moo::ShardTransport`], plugging the store into
//! [`ayb_moo::ShardedEvaluator`]. [`ShardTask`] / [`Store::open_shard_tasks`]
//! are the worker's view: scan, claim, evaluate, submit.
//!
//! ```
//! use ayb_store::ShardDataPlane;
//! use ayb_moo::{Evaluation, ShardTransport};
//! use std::time::Duration;
//!
//! let dir = std::env::temp_dir().join(format!("ayb-shard-doc-{}", std::process::id()));
//! let plane = ShardDataPlane::open(&dir, Duration::from_secs(30));
//! let epoch = plane.open_epoch(1).unwrap();
//! plane.publish(&epoch, 0, &[vec![0.5, 0.5]]).unwrap();
//! assert!(plane.try_claim(&epoch, 0).unwrap());
//! plane
//!     .submit(&epoch, 0, &vec![Some(Evaluation::new(vec![0.5, 0.5], vec![1.0]))])
//!     .unwrap();
//! assert!(plane.fetch(&epoch, 0).unwrap().is_some());
//! plane.close_epoch(&epoch).unwrap();
//! # let _ = std::fs::remove_dir_all(dir);
//! ```

use crate::{
    break_claim_file, file_mtime_age, io_error, read_claim_file, read_json, take_claim_file,
    write_json, ClaimHealth, ClaimInfo, RunHandle, RunStatus, Store, StoreError,
};
use ayb_moo::{Evaluation, ShardError, ShardResults, ShardTransport};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Subdirectory of a run holding its shard epochs.
const SHARD_DIR: &str = "shards";

fn task_name(shard: usize) -> String {
    format!("shard_{shard:04}.task.json")
}

fn claim_name(shard: usize) -> String {
    format!("shard_{shard:04}.claim.json")
}

fn result_name(shard: usize) -> String {
    format!("shard_{shard:04}.result.json")
}

/// Parses `shard_NNNN.task.json` back into `NNNN`.
fn parse_task_name(name: &str) -> Option<usize> {
    name.strip_prefix("shard_")?
        .strip_suffix(".task.json")?
        .parse()
        .ok()
}

/// On-disk form of one shard's input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardTaskFile {
    /// Normalised candidate parameter vectors, in shard-local order.
    parameters: Vec<Vec<f64>>,
}

/// On-disk form of one shard's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardResultFile {
    /// One entry per candidate, in shard-local order.
    results: Vec<Option<Evaluation>>,
}

fn transport_error(error: StoreError) -> ShardError {
    ShardError::Transport(error.to_string())
}

/// The submitter's handle on a run's shard directory; implements
/// [`ShardTransport`] so an [`ayb_moo::ShardedEvaluator`] can distribute its
/// batches through the store (see [`RunHandle::shard_plane`]).
#[derive(Debug, Clone)]
pub struct ShardDataPlane {
    dir: PathBuf,
    stale_after: Duration,
}

impl ShardDataPlane {
    /// Opens a shard plane rooted at `dir` (usually
    /// `runs/<id>/shards`, via [`RunHandle::shard_plane`]); shard claims
    /// whose holder cannot be probed are considered dead once their
    /// heartbeat is older than `stale_after`.
    pub fn open(dir: impl Into<PathBuf>, stale_after: Duration) -> ShardDataPlane {
        ShardDataPlane {
            dir: dir.into(),
            stale_after,
        }
    }

    fn epoch_dir(&self, epoch: &str) -> PathBuf {
        self.dir.join(epoch)
    }
}

impl ShardTransport for ShardDataPlane {
    fn open_epoch(&self, _shard_count: usize) -> Result<String, ShardError> {
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let epoch = format!(
            "ep-{}-{}-{}",
            crate::now_unix(),
            std::process::id(),
            NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let dir = self.epoch_dir(&epoch);
        fs::create_dir_all(&dir).map_err(|e| transport_error(io_error(&dir, e)))?;
        Ok(epoch)
    }

    fn publish(
        &self,
        epoch: &str,
        shard: usize,
        parameters: &[Vec<f64>],
    ) -> Result<(), ShardError> {
        let path = self.epoch_dir(epoch).join(task_name(shard));
        write_json(
            &path,
            &ShardTaskFile {
                parameters: parameters.to_vec(),
            },
        )
        .map_err(transport_error)
    }

    fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        let dir = self.epoch_dir(epoch);
        let info = ClaimInfo::for_this_process("shard-submitter");
        take_claim_file(&dir, &dir.join(claim_name(shard)), &info).map_err(transport_error)
    }

    fn submit(&self, epoch: &str, shard: usize, results: &ShardResults) -> Result<(), ShardError> {
        let dir = self.epoch_dir(epoch);
        write_json(
            &dir.join(result_name(shard)),
            &ShardResultFile {
                results: results.clone(),
            },
        )
        .map_err(transport_error)?;
        let _ = fs::remove_file(dir.join(claim_name(shard)));
        Ok(())
    }

    fn fetch(&self, epoch: &str, shard: usize) -> Result<Option<ShardResults>, ShardError> {
        let path = self.epoch_dir(epoch).join(result_name(shard));
        if !path.is_file() {
            return Ok(None);
        }
        let file: ShardResultFile = read_json(&path).map_err(transport_error)?;
        Ok(Some(file.results))
    }

    fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        let dir = self.epoch_dir(epoch);
        let path = dir.join(claim_name(shard));
        let Some(claim) = read_claim_file(&path).map_err(transport_error)? else {
            return Ok(false);
        };
        let age = file_mtime_age(&path).unwrap_or(Duration::MAX);
        // Shard claims may be broken more aggressively than run claims:
        // duplicate shard evaluation is benign (pure function, atomic result
        // writes), so even a *hung* local holder is recovered once its claim
        // goes stale — the batch must not wedge behind it.
        let stale = match claim.health(age, self.stale_after) {
            ClaimHealth::Alive => false,
            ClaimHealth::Hung | ClaimHealth::Dead => true,
        };
        if !stale {
            return Ok(false);
        }
        break_claim_file(&dir, &path, &claim).map_err(transport_error)
    }

    fn close_epoch(&self, epoch: &str) -> Result<(), ShardError> {
        match fs::remove_dir_all(self.epoch_dir(epoch)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(transport_error(io_error(&self.epoch_dir(epoch), e))),
        }
        // Opportunistically drop the now-empty `shards/` parent, so idle
        // workers can dismiss this run with a single stat instead of a
        // directory scan (fails harmlessly if another epoch is open).
        let _ = fs::remove_dir(&self.dir);
        Ok(())
    }
}

/// Counts of a run's open shard work (see [`RunHandle::shard_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Open evaluation epochs under the run.
    pub epochs: usize,
    /// Published shard tasks across all open epochs.
    pub tasks: usize,
    /// Shards currently claimed by a worker.
    pub claimed: usize,
    /// Shards whose results have been submitted.
    pub completed: usize,
}

impl RunHandle {
    fn shards_dir(&self) -> PathBuf {
        self.dir().join(SHARD_DIR)
    }

    /// The run's shard data plane, ready to plug into an
    /// [`ayb_moo::ShardedEvaluator`]; see [`ShardDataPlane::open`] for
    /// `stale_after`.
    pub fn shard_plane(&self, stale_after: Duration) -> ShardDataPlane {
        ShardDataPlane::open(self.shards_dir(), stale_after)
    }

    /// Counts the run's open shard epochs, tasks, claims and results (for
    /// `ayb status` and monitoring).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when a directory scan fails.
    pub fn shard_summary(&self) -> Result<ShardSummary, StoreError> {
        let mut summary = ShardSummary::default();
        let shards = self.shards_dir();
        if !shards.is_dir() {
            return Ok(summary);
        }
        for epoch in read_dir_sorted(&shards)? {
            if !epoch.is_dir() {
                continue;
            }
            summary.epochs += 1;
            for path in read_dir_sorted(&epoch)? {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if name.ends_with(".task.json") {
                    summary.tasks += 1;
                } else if name.ends_with(".claim.json") {
                    summary.claimed += 1;
                } else if name.ends_with(".result.json") {
                    summary.completed += 1;
                }
            }
        }
        Ok(summary)
    }

    /// Removes every shard epoch under the run, returning how many were
    /// swept.
    ///
    /// Only safe for the run's exclusive owner (claim holder) or for
    /// housekeeping of terminal runs: a sharded flow sweeps leftovers from a
    /// dead predecessor when it starts, and `ayb gc` sweeps the shards of
    /// completed runs.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when an epoch directory cannot be removed.
    pub fn sweep_shards(&self) -> Result<usize, StoreError> {
        let shards = self.shards_dir();
        if !shards.is_dir() {
            return Ok(0);
        }
        let mut swept = 0;
        for epoch in read_dir_sorted(&shards)? {
            if !epoch.is_dir() {
                continue;
            }
            match fs::remove_dir_all(&epoch) {
                Ok(()) => swept += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_error(&epoch, e)),
            }
        }
        // Drop the empty parent too, so worker scans dismiss this run with
        // one stat (harmless failure if an epoch opened concurrently).
        let _ = fs::remove_dir(&shards);
        Ok(swept)
    }
}

/// Directory entries of `dir`, sorted by name for deterministic scans.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| io_error(dir, e))?;
    let mut paths = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| io_error(dir, e))?.path());
    }
    paths.sort();
    Ok(paths)
}

/// A claimable shard evaluation task, as seen by a worker (see
/// [`Store::open_shard_tasks`]): claim it, load its parameters, evaluate
/// them, submit the results.
#[derive(Debug, Clone)]
pub struct ShardTask {
    run_id: String,
    epoch: String,
    shard: usize,
    epoch_dir: PathBuf,
}

impl ShardTask {
    /// The run this shard belongs to.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The evaluation epoch (one optimiser batch) this shard belongs to.
    pub fn epoch(&self) -> &str {
        &self.epoch
    }

    /// The shard's index within its epoch.
    pub fn shard(&self) -> usize {
        self.shard
    }

    fn claim_path(&self) -> PathBuf {
        self.epoch_dir.join(claim_name(self.shard))
    }

    /// Atomically claims the shard for evaluation by this process. Returns
    /// `false` when another worker already holds it — or the epoch has been
    /// disposed of in the meantime.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on filesystem
    /// failures other than the ordinary lost race.
    pub fn try_claim(&self, owner: &str) -> Result<bool, StoreError> {
        let info = ClaimInfo::for_this_process(owner);
        take_claim_file(&self.epoch_dir, &self.claim_path(), &info)
    }

    /// Starts a heartbeat on this shard's claim (see [`crate::ClaimHeartbeat`]),
    /// protecting a slow evaluation from aggressive recovery.
    pub fn start_claim_heartbeat(&self, interval: Duration) -> crate::ClaimHeartbeat {
        crate::ClaimHeartbeat::start(self.claim_path(), interval)
    }

    /// Loads the shard's candidate parameters; `None` when the epoch was
    /// closed (the submitter assembled the batch without this shard —
    /// nothing left to do).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] when an existing task file is malformed.
    pub fn load_parameters(&self) -> Result<Option<Vec<Vec<f64>>>, StoreError> {
        let path = self.epoch_dir.join(task_name(self.shard));
        if !path.is_file() {
            return Ok(None);
        }
        let file: ShardTaskFile = read_json(&path)?;
        Ok(Some(file.parameters))
    }

    /// Atomically writes the shard's results and releases this worker's
    /// claim.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the result
    /// cannot be written (e.g. the epoch was closed mid-evaluation; the
    /// submitter no longer needs the result, so callers treat this as a
    /// skip, not a failure).
    pub fn submit_results(&self, results: &[Option<Evaluation>]) -> Result<(), StoreError> {
        write_json(
            &self.epoch_dir.join(result_name(self.shard)),
            &ShardResultFile {
                results: results.to_vec(),
            },
        )?;
        let _ = fs::remove_file(self.claim_path());
        Ok(())
    }

    /// Releases this worker's claim without submitting a result (e.g. the
    /// task file vanished after the claim).
    pub fn release(&self) {
        let _ = fs::remove_file(self.claim_path());
    }
}

impl Store {
    /// Scans for claimable shard evaluation tasks: published shards of
    /// `Running` runs that have no result and no claim yet, in deterministic
    /// (run, epoch, shard) order.
    ///
    /// Workers iterate the list and [`ShardTask::try_claim`] each candidate;
    /// a lost race simply moves on to the next. Shards whose claim holder
    /// died are re-offered once the submitter's recovery pass breaks the
    /// stale claim.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read
    /// (individual unreadable runs are skipped).
    pub fn open_shard_tasks(&self) -> Result<Vec<ShardTask>, StoreError> {
        let mut tasks = Vec::new();
        for run_id in self.run_ids()? {
            // Cheap checks first: workers poll this scan every tick, and a
            // store full of finished runs must cost stats, not JSON manifest
            // parses. Runs without open epochs (the overwhelming majority —
            // `close_epoch`/`sweep_shards` remove empty `shards/` dirs) are
            // dismissed before their manifest is ever read.
            let Ok(handle) = self.run(&run_id) else {
                continue;
            };
            let shards = handle.shards_dir();
            if !shards.is_dir() {
                continue;
            }
            let Ok(epochs) = read_dir_sorted(&shards) else {
                continue;
            };
            if epochs.is_empty() {
                continue;
            }
            // Only the claim-holding flow of a Running run publishes shards;
            // anything else has no live epochs worth scanning.
            if handle.status().ok() != Some(RunStatus::Running) {
                continue;
            }
            for epoch_dir in epochs {
                if !epoch_dir.is_dir() {
                    continue;
                }
                let Some(epoch) = epoch_dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .map(String::from)
                else {
                    continue;
                };
                let Ok(entries) = read_dir_sorted(&epoch_dir) else {
                    continue;
                };
                for path in entries {
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let Some(shard) = parse_task_name(name) else {
                        continue;
                    };
                    if epoch_dir.join(result_name(shard)).is_file()
                        || epoch_dir.join(claim_name(shard)).is_file()
                    {
                        continue;
                    }
                    tasks.push(ShardTask {
                        run_id: run_id.clone(),
                        epoch: epoch.clone(),
                        shard,
                        epoch_dir: epoch_dir.clone(),
                    });
                }
            }
        }
        Ok(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_moo::{GaConfig, OptimizerConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store() -> (PathBuf, Store) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "ayb-shards-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    fn running_run(store: &Store) -> RunHandle {
        store
            .create_run(
                7,
                &OptimizerConfig::Wbga(GaConfig::small_test()),
                &"flow-config",
            )
            .expect("run created")
    }

    fn evaluation(x: f64) -> Option<Evaluation> {
        Some(Evaluation::new(vec![x], vec![x * 2.0]))
    }

    #[test]
    fn publish_claim_submit_fetch_roundtrip() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));

        let epoch = plane.open_epoch(2).unwrap();
        plane.publish(&epoch, 0, &[vec![0.1], vec![0.2]]).unwrap();
        plane.publish(&epoch, 1, &[vec![0.3]]).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), None);

        assert!(plane.try_claim(&epoch, 0).unwrap());
        assert!(!plane.try_claim(&epoch, 0).unwrap(), "claims are exclusive");

        let results = vec![evaluation(0.1), None];
        plane.submit(&epoch, 0, &results).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(results));
        // Submitting released the claim.
        assert!(plane.try_claim(&epoch, 0).unwrap());

        let summary = run.shard_summary().unwrap();
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.tasks, 2);
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.claimed, 1);

        plane.close_epoch(&epoch).unwrap();
        assert_eq!(run.shard_summary().unwrap(), ShardSummary::default());
        // Closing twice is fine.
        plane.close_epoch(&epoch).unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn workers_discover_claim_and_service_tasks() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(2).unwrap();
        plane.publish(&epoch, 0, &[vec![0.1]]).unwrap();
        plane.publish(&epoch, 1, &[vec![0.2]]).unwrap();

        let tasks = store.open_shard_tasks().unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].run_id(), run.id());
        assert_eq!(tasks[0].epoch(), epoch);
        assert_eq!((tasks[0].shard(), tasks[1].shard()), (0, 1));

        // Worker services shard 0 end to end.
        let task = &tasks[0];
        assert!(task.try_claim("worker-a").unwrap());
        assert!(!task.try_claim("worker-b").unwrap());
        let parameters = task.load_parameters().unwrap().unwrap();
        assert_eq!(parameters, vec![vec![0.1]]);
        task.submit_results(&[evaluation(0.1)]).unwrap();
        assert_eq!(plane.fetch(&epoch, 0).unwrap(), Some(vec![evaluation(0.1)]));

        // Serviced and claimed shards disappear from the scan.
        assert!(tasks[1].try_claim("worker-c").unwrap());
        assert!(store.open_shard_tasks().unwrap().is_empty());
        tasks[1].release();
        assert_eq!(store.open_shard_tasks().unwrap().len(), 1);

        // Tasks of non-Running runs are never offered.
        run.set_status(RunStatus::Interrupted).unwrap();
        assert!(store.open_shard_tasks().unwrap().is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn claiming_a_closed_epoch_is_a_clean_miss() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        let tasks = store.open_shard_tasks().unwrap();
        assert_eq!(tasks.len(), 1);

        // The submitter assembles and closes the epoch before the worker
        // gets to the task: the claim must fail gracefully, not error.
        plane.close_epoch(&epoch).unwrap();
        assert!(!tasks[0].try_claim("late-worker").unwrap());
        assert_eq!(tasks[0].load_parameters().unwrap(), None);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn dead_worker_shard_claims_are_recovered() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();

        // Forge a claim from a dead process on this host (no Linux pid is
        // ever u32::MAX).
        let dead = ClaimInfo {
            owner: "dead-shard-worker".to_string(),
            pid: u32::MAX,
            host: crate::local_host().to_string(),
            claimed_unix: crate::now_unix(),
        };
        let claim_path = run.shards_dir().join(&epoch).join(claim_name(0));
        crate::write_json(&claim_path, &dead).unwrap();
        assert!(!plane.try_claim(&epoch, 0).unwrap(), "claim is held");

        // Recovery breaks the dead claim; the shard is claimable again.
        assert!(plane.recover(&epoch, 0).unwrap());
        assert!(plane.try_claim(&epoch, 0).unwrap());
        // A live claim (ours) is never recovered: fresh heartbeat, live pid.
        assert!(!plane.recover(&epoch, 0).unwrap());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn foreign_host_claims_go_stale_by_heartbeat_age() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_millis(50));
        let epoch = plane.open_epoch(1).unwrap();
        plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();

        let foreign = ClaimInfo {
            owner: "worker-on-another-box".to_string(),
            pid: std::process::id(), // same pid, *different* host
            host: "some-other-host".to_string(),
            claimed_unix: crate::now_unix(),
        };
        let claim_path = run.shards_dir().join(&epoch).join(claim_name(0));
        crate::write_json(&claim_path, &foreign).unwrap();

        // Fresh heartbeat: the foreign worker is presumed alive.
        assert!(!plane.recover(&epoch, 0).unwrap());
        // Stale heartbeat: presumed dead, claim broken.
        std::thread::sleep(Duration::from_millis(80));
        assert!(plane.recover(&epoch, 0).unwrap());
        assert!(plane.try_claim(&epoch, 0).unwrap());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_shards_clears_stale_epochs() {
        let (root, store) = temp_store();
        let run = running_run(&store);
        let plane = run.shard_plane(Duration::from_secs(30));
        for _ in 0..3 {
            let epoch = plane.open_epoch(1).unwrap();
            plane.publish(&epoch, 0, &[vec![0.5]]).unwrap();
        }
        assert_eq!(run.shard_summary().unwrap().epochs, 3);
        assert_eq!(run.sweep_shards().unwrap(), 3);
        assert_eq!(run.shard_summary().unwrap(), ShardSummary::default());
        assert_eq!(run.sweep_shards().unwrap(), 0, "second sweep is a no-op");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn task_names_roundtrip() {
        assert_eq!(parse_task_name(&task_name(0)), Some(0));
        assert_eq!(parse_task_name(&task_name(123)), Some(123));
        assert_eq!(parse_task_name("shard_0001.result.json"), None);
        assert_eq!(parse_task_name("shard_x.task.json"), None);
        assert_eq!(parse_task_name("claim.json"), None);
    }
}
