//! # ayb-store — a filesystem-backed persistent run store
//!
//! The model-generation flow is long-running and seed-deterministic; this
//! crate makes its runs *durable* and *addressable* so that a crash, kill or
//! deliberate pause loses nothing. A [`Store`] lays every run out on disk as
//!
//! ```text
//! <root>/runs/<run_id>/
//!     manifest.json              # id, seed, optimiser + flow config, status
//!     checkpoints/gen_0001.json  # one Checkpoint per completed generation
//!     checkpoints/gen_0002.json
//!     ...
//!     result.json                # the final FlowResult, once completed
//! ```
//!
//! * the **manifest** ([`Manifest`]) records everything needed to recreate
//!   the run: the RNG seed, the serialized
//!   [`OptimizerConfig`](ayb_moo::OptimizerConfig) (including any
//!   early-stopping criterion) and the flow configuration — the latter as a
//!   caller-supplied type parameter so this crate stays independent of the
//!   flow layer;
//! * **checkpoints** are the [`ayb_moo::Checkpoint`] snapshots emitted at
//!   every generation boundary; resuming from the latest one continues the
//!   exact run (bit-identical result to an uninterrupted run);
//! * the **result** is whatever serializable artefact the flow produces.
//!
//! All files are JSON via the workspace's vendored `serde_json` (floats use
//! shortest-round-trip formatting, so `f64` state survives losslessly) and
//! every write is atomic (temp file + rename), so a run killed mid-write
//! never leaves a torn manifest or checkpoint behind — at worst a stale
//! `.tmp` file that readers ignore.
//!
//! The flow layer (`ayb_core::FlowBuilder::with_store` / `resume`) and the
//! `ayb` CLI (`run` / `resume` / `list` / `show`) are the two consumers.
//!
//! ```no_run
//! use ayb_moo::{GaConfig, OptimizerConfig};
//! use ayb_store::Store;
//!
//! # fn main() -> Result<(), ayb_store::StoreError> {
//! let store = Store::open("./ayb-store")?;
//! let run = store.create_run(7, &OptimizerConfig::Wbga(GaConfig::small_test()), &"config")?;
//! println!("created {} under {}", run.id(), run.dir().display());
//! for id in store.run_ids()? {
//!     println!("run: {id}");
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ayb_moo::{Checkpoint, OptimizerConfig};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Errors produced by store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying error message.
        message: String,
    },
    /// A file held malformed JSON or JSON of the wrong shape.
    Json {
        /// Path of the offending file.
        path: PathBuf,
        /// Underlying error message.
        message: String,
    },
    /// The requested run does not exist.
    RunNotFound(String),
    /// A run with the requested id already exists.
    RunExists(String),
    /// The run id contains characters unsafe for a directory name.
    InvalidRunId(String),
    /// The run has no `result.json` (it never completed).
    NoResult(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at {}: {message}", path.display())
            }
            StoreError::Json { path, message } => {
                write!(f, "store JSON error at {}: {message}", path.display())
            }
            StoreError::RunNotFound(id) => write!(f, "run `{id}` not found in the store"),
            StoreError::RunExists(id) => write!(f, "run `{id}` already exists in the store"),
            StoreError::InvalidRunId(id) => write!(
                f,
                "invalid run id `{id}`: use 1-64 characters from [A-Za-z0-9._-], not starting with `.`"
            ),
            StoreError::NoResult(id) => write!(f, "run `{id}` has no result yet"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_error(path: &Path, error: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

fn json_error(path: &Path, error: impl fmt::Display) -> StoreError {
    StoreError::Json {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Writes `text` to `path` atomically (temp file in the same directory,
/// then rename), so concurrent readers and crashes never observe a torn file.
fn write_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, text).map_err(|e| io_error(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_error(path, e))
}

fn read_json<T: Deserialize>(path: &Path) -> Result<T, StoreError> {
    let text = fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    serde_json::from_str(&text).map_err(|e| json_error(path, e))
}

fn write_json<T: Serialize + ?Sized>(path: &Path, value: &T) -> Result<(), StoreError> {
    let text = serde_json::to_string_pretty(value).map_err(|e| json_error(path, e))?;
    write_atomic(path, &text)
}

/// Lifecycle state of a stored run.
///
/// A killed process cannot update its own manifest, so a crashed run keeps
/// the `Running` status it had when it died — `Interrupted` is only recorded
/// for *deliberate* halts at a checkpoint boundary. Both resume the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The flow is (or was, if the process died) executing.
    Running,
    /// The flow was deliberately halted at a checkpoint boundary.
    Interrupted,
    /// The flow finished and `result.json` was written.
    Completed,
    /// The flow failed with an error.
    Failed,
}

impl RunStatus {
    /// Stable lower-case name for display and scripting.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Running => "running",
            RunStatus::Interrupted => "interrupted",
            RunStatus::Completed => "completed",
            RunStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The durable description of one run (`manifest.json`).
///
/// `C` is the flow-level configuration type (the flow layer uses its
/// `FlowConfig`); keeping it generic lets this crate sit below the flow in
/// the dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest<C> {
    /// Identifier of the run (also its directory name).
    pub run_id: String,
    /// Lifecycle state.
    pub status: RunStatus,
    /// RNG seed the optimiser ran with (also recorded inside `optimizer`).
    pub seed: u64,
    /// Creation time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Last status change, seconds since the Unix epoch.
    pub updated_unix: u64,
    /// The optimisation algorithm and its full settings, including any
    /// early-stopping criterion — a resumed run honours them exactly.
    pub optimizer: OptimizerConfig,
    /// The flow-level configuration.
    pub flow: C,
}

/// A filesystem-backed store of runs (see the crate docs for the layout).
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

const MANIFEST_FILE: &str = "manifest.json";
const RESULT_FILE: &str = "result.json";
const CHECKPOINT_DIR: &str = "checkpoints";
const CHECKPOINT_PREFIX: &str = "gen_";

fn valid_run_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Store {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        let runs = root.join("runs");
        fs::create_dir_all(&runs).map_err(|e| io_error(&runs, e))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn runs_dir(&self) -> PathBuf {
        self.root.join("runs")
    }

    /// All run ids in the store, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn run_ids(&self) -> Result<Vec<String>, StoreError> {
        let runs = self.runs_dir();
        let entries = fs::read_dir(&runs).map_err(|e| io_error(&runs, e))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&runs, e))?;
            let is_dir = entry
                .file_type()
                .map_err(|e| io_error(&entry.path(), e))?
                .is_dir();
            if !is_dir {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if valid_run_id(name) {
                    ids.push(name.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// The next sequential run id (`run-0001`, `run-0002`, ...) that
    /// [`Store::create_run`] would allocate.
    ///
    /// The id is not reserved; a concurrent creator racing for it is
    /// resolved by [`Store::create_run_with_id`] failing with
    /// [`StoreError::RunExists`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn next_run_id(&self) -> Result<String, StoreError> {
        let highest = self
            .run_ids()?
            .iter()
            .filter_map(|id| id.strip_prefix("run-")?.parse::<u64>().ok())
            .max()
            .unwrap_or(0);
        Ok(format!("run-{:04}", highest + 1))
    }

    /// Creates a run with a fresh sequential id and writes its manifest
    /// (status [`RunStatus::Running`]).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on filesystem or
    /// serialization failures.
    pub fn create_run<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        let id = self.next_run_id()?;
        self.create_run_with_id(&id, seed, optimizer, flow)
    }

    /// Creates a run under a caller-chosen id (useful for scripting).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRunId`] for unsafe ids,
    /// [`StoreError::RunExists`] when the id is taken, and
    /// [`StoreError::Io`]/[`StoreError::Json`] on filesystem or
    /// serialization failures.
    pub fn create_run_with_id<C: Serialize>(
        &self,
        id: &str,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        if !valid_run_id(id) {
            return Err(StoreError::InvalidRunId(id.to_string()));
        }
        let dir = self.runs_dir().join(id);
        fs::create_dir(&dir).map_err(|e| {
            if e.kind() == io::ErrorKind::AlreadyExists {
                StoreError::RunExists(id.to_string())
            } else {
                io_error(&dir, e)
            }
        })?;
        let checkpoints = dir.join(CHECKPOINT_DIR);
        fs::create_dir(&checkpoints).map_err(|e| io_error(&checkpoints, e))?;

        let now = now_unix();
        let manifest = Manifest {
            run_id: id.to_string(),
            status: RunStatus::Running,
            seed,
            created_unix: now,
            updated_unix: now,
            optimizer: optimizer.clone(),
            flow,
        };
        let handle = RunHandle {
            run_id: id.to_string(),
            dir,
        };
        write_json(&handle.manifest_path(), &manifest)?;
        Ok(handle)
    }

    /// Opens an existing run.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RunNotFound`] when no such run directory (with
    /// a manifest) exists.
    pub fn run(&self, id: &str) -> Result<RunHandle, StoreError> {
        if !valid_run_id(id) {
            return Err(StoreError::InvalidRunId(id.to_string()));
        }
        let dir = self.runs_dir().join(id);
        if !dir.join(MANIFEST_FILE).is_file() {
            return Err(StoreError::RunNotFound(id.to_string()));
        }
        Ok(RunHandle {
            run_id: id.to_string(),
            dir,
        })
    }
}

/// Handle to one run directory inside a [`Store`].
#[derive(Debug, Clone)]
pub struct RunHandle {
    run_id: String,
    dir: PathBuf,
}

impl RunHandle {
    /// The run's identifier.
    pub fn id(&self) -> &str {
        &self.run_id
    }

    /// The run's directory on disk.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    fn result_path(&self) -> PathBuf {
        self.dir.join(RESULT_FILE)
    }

    fn checkpoint_path(&self, generation: usize) -> PathBuf {
        self.dir
            .join(CHECKPOINT_DIR)
            .join(format!("{CHECKPOINT_PREFIX}{generation:04}.json"))
    }

    /// Loads the typed manifest.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest is
    /// missing or malformed.
    pub fn manifest<C: Deserialize>(&self) -> Result<Manifest<C>, StoreError> {
        read_json(&self.manifest_path())
    }

    /// Loads the manifest as an untyped JSON value (for listings that do not
    /// know the flow-configuration type).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest is
    /// missing or malformed.
    pub fn manifest_value(&self) -> Result<Value, StoreError> {
        read_json(&self.manifest_path())
    }

    /// The run's current lifecycle status.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] when the manifest lacks a valid status.
    pub fn status(&self) -> Result<RunStatus, StoreError> {
        let value = self.manifest_value()?;
        let status = value
            .get("status")
            .ok_or_else(|| json_error(&self.manifest_path(), "manifest has no `status` field"))?;
        RunStatus::from_value(status).map_err(|e| json_error(&self.manifest_path(), e))
    }

    /// Updates the manifest's status (and `updated_unix`) in place, without
    /// needing to know the flow-configuration type.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest
    /// cannot be read back or rewritten.
    pub fn set_status(&self, status: RunStatus) -> Result<(), StoreError> {
        let mut value = self.manifest_value()?;
        let Value::Object(pairs) = &mut value else {
            return Err(json_error(
                &self.manifest_path(),
                "manifest is not an object",
            ));
        };
        for (key, field) in pairs.iter_mut() {
            match key.as_str() {
                "status" => *field = status.to_value(),
                "updated_unix" => *field = now_unix().to_value(),
                _ => {}
            }
        }
        write_json(&self.manifest_path(), &value)
    }

    /// Persists one checkpoint as `checkpoints/gen_NNNN.json` (atomically),
    /// returning the written path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_checkpoint(&self, checkpoint: &Checkpoint) -> Result<PathBuf, StoreError> {
        let path = self.checkpoint_path(checkpoint.next_generation);
        write_json(&path, checkpoint)?;
        Ok(path)
    }

    /// The generation indices of all stored checkpoints, sorted ascending.
    /// Stale `.tmp` files from a killed writer are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the checkpoint directory cannot be
    /// read.
    pub fn checkpoint_generations(&self) -> Result<Vec<usize>, StoreError> {
        let dir = self.dir.join(CHECKPOINT_DIR);
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let entries = fs::read_dir(&dir).map_err(|e| io_error(&dir, e))?;
        let mut generations = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(CHECKPOINT_PREFIX)
                .and_then(|s| s.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(generation) = stem.parse::<usize>() {
                generations.push(generation);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// Loads the checkpoint of a specific generation.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the file is
    /// missing or malformed.
    pub fn load_checkpoint(&self, generation: usize) -> Result<Checkpoint, StoreError> {
        read_json(&self.checkpoint_path(generation))
    }

    /// Loads the most recent checkpoint, if any exist.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on unreadable or
    /// malformed checkpoint files.
    pub fn latest_checkpoint(&self) -> Result<Option<Checkpoint>, StoreError> {
        match self.checkpoint_generations()?.last() {
            Some(&generation) => self.load_checkpoint(generation).map(Some),
            None => Ok(None),
        }
    }

    /// Persists the run's final result as `result.json` (atomically).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_result<R: Serialize>(&self, result: &R) -> Result<(), StoreError> {
        write_json(&self.result_path(), result)
    }

    /// Whether the run has a stored result.
    pub fn has_result(&self) -> bool {
        self.result_path().is_file()
    }

    /// Loads the run's result.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoResult`] when the run never completed, and
    /// [`StoreError::Io`]/[`StoreError::Json`] on unreadable or malformed
    /// files.
    pub fn load_result<R: Deserialize>(&self) -> Result<R, StoreError> {
        if !self.has_result() {
            return Err(StoreError::NoResult(self.run_id.clone()));
        }
        read_json(&self.result_path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_moo::{CheckpointIndividual, EarlyStop, Evaluation, GaConfig, GenerationStats, Sense};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A flow-configuration stand-in for the generic manifest parameter.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct FakeFlowConfig {
        threads: usize,
        sigma_level: f64,
        label: String,
    }

    fn fake_flow() -> FakeFlowConfig {
        FakeFlowConfig {
            threads: 4,
            sigma_level: 3.0,
            label: "reduced \"scale\"".to_string(),
        }
    }

    fn optimizer() -> OptimizerConfig {
        OptimizerConfig::Wbga(
            GaConfig::small_test().with_early_stop(EarlyStop::after_stalled_generations(5)),
        )
    }

    fn temp_store() -> (PathBuf, Store) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "ayb-store-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    fn sample_checkpoint(generation: usize) -> Checkpoint {
        Checkpoint {
            optimizer: "wbga".to_string(),
            next_generation: generation,
            rng_state: [9, 8, 7, 6],
            population: vec![CheckpointIndividual {
                parameters: vec![0.5, 0.25],
                weight_genes: vec![0.3, 0.7],
                objectives: Some(vec![1.25, 2.5]),
            }],
            archive: vec![Evaluation::new(vec![0.5, 0.25], vec![1.25, 2.5])],
            history: vec![GenerationStats {
                generation: 0,
                best_fitness: 1.0,
                mean_fitness: 0.5,
                feasible: 1,
            }],
            evaluations: 2,
            failed_evaluations: 1,
            stall_generations: 0,
            senses: vec![Sense::Maximize, Sense::Maximize],
        }
    }

    #[test]
    fn create_load_and_list_runs() {
        let (root, store) = temp_store();
        let a = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        let b = store.create_run(8, &optimizer(), &fake_flow()).unwrap();
        assert_eq!(a.id(), "run-0001");
        assert_eq!(b.id(), "run-0002");
        assert_eq!(store.run_ids().unwrap(), vec!["run-0001", "run-0002"]);

        let manifest: Manifest<FakeFlowConfig> = store.run("run-0002").unwrap().manifest().unwrap();
        assert_eq!(manifest.run_id, "run-0002");
        assert_eq!(manifest.seed, 8);
        assert_eq!(manifest.status, RunStatus::Running);
        assert_eq!(manifest.optimizer, optimizer());
        assert_eq!(manifest.flow, fake_flow());
        assert!(manifest.created_unix > 0);

        assert!(matches!(
            store.run("run-0003"),
            Err(StoreError::RunNotFound(_))
        ));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn explicit_ids_are_validated_and_unique() {
        let (root, store) = temp_store();
        let run = store
            .create_run_with_id("nightly_a.1", 1, &optimizer(), &fake_flow())
            .unwrap();
        assert_eq!(run.id(), "nightly_a.1");
        assert!(matches!(
            store.create_run_with_id("nightly_a.1", 1, &optimizer(), &fake_flow()),
            Err(StoreError::RunExists(_))
        ));
        for bad in ["", "../escape", "a/b", ".hidden", "x".repeat(65).as_str()] {
            assert!(
                matches!(
                    store.create_run_with_id(bad, 1, &optimizer(), &fake_flow()),
                    Err(StoreError::InvalidRunId(_))
                ),
                "id {bad:?} should be rejected"
            );
        }
        // Sequential allocation is not confused by foreign ids.
        let next = store.create_run(2, &optimizer(), &fake_flow()).unwrap();
        assert_eq!(next.id(), "run-0001");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn status_updates_preserve_the_rest_of_the_manifest() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        run.set_status(RunStatus::Interrupted).unwrap();
        assert_eq!(run.status().unwrap(), RunStatus::Interrupted);
        run.set_status(RunStatus::Completed).unwrap();

        let manifest: Manifest<FakeFlowConfig> = run.manifest().unwrap();
        assert_eq!(manifest.status, RunStatus::Completed);
        assert_eq!(manifest.seed, 7);
        assert_eq!(manifest.flow, fake_flow());
        assert!(manifest.updated_unix >= manifest.created_unix);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn checkpoints_roundtrip_and_latest_wins() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        assert!(run.latest_checkpoint().unwrap().is_none());

        for generation in [1usize, 2, 3, 10] {
            let path = run.save_checkpoint(&sample_checkpoint(generation)).unwrap();
            assert!(path.ends_with(format!("gen_{generation:04}.json")));
        }
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1, 2, 3, 10]);
        assert_eq!(
            run.load_checkpoint(2).unwrap(),
            sample_checkpoint(2),
            "checkpoints survive the JSON round-trip bit-for-bit"
        );
        assert_eq!(
            run.latest_checkpoint().unwrap(),
            Some(sample_checkpoint(10))
        );

        // A stale temp file from a killed writer is ignored.
        fs::write(run.dir().join("checkpoints/gen_0011.json.tmp"), "{").unwrap();
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1, 2, 3, 10]);
        assert_eq!(
            run.latest_checkpoint().unwrap(),
            Some(sample_checkpoint(10))
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn results_roundtrip_and_absence_is_reported() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        assert!(!run.has_result());
        assert!(matches!(
            run.load_result::<FakeFlowConfig>(),
            Err(StoreError::NoResult(_))
        ));

        let result = vec![fake_flow(), fake_flow()];
        run.save_result(&result).unwrap();
        assert!(run.has_result());
        let loaded: Vec<FakeFlowConfig> = run.load_result().unwrap();
        assert_eq!(loaded, result);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn errors_display_their_context() {
        let e = StoreError::RunNotFound("run-0042".into());
        assert!(e.to_string().contains("run-0042"));
        let e = StoreError::InvalidRunId("../x".into());
        assert!(e.to_string().contains("../x"));
        let (root, store) = temp_store();
        let run = store.create_run(1, &optimizer(), &fake_flow()).unwrap();
        fs::write(run.dir().join(MANIFEST_FILE), "not json").unwrap();
        assert!(matches!(run.status(), Err(StoreError::Json { .. })));
        let _ = fs::remove_dir_all(root);
    }
}
