//! # ayb-store — a filesystem-backed persistent run store
//!
//! The model-generation flow is long-running and seed-deterministic; this
//! crate makes its runs *durable* and *addressable* so that a crash, kill or
//! deliberate pause loses nothing. A [`Store`] lays every run out on disk as
//!
//! ```text
//! <root>/runs/<run_id>/
//!     manifest.json              # id, seed, optimiser + flow config, status
//!     checkpoints/gen_0001.json  # one Checkpoint per completed generation
//!     checkpoints/gen_0002.json
//!     ...
//!     result.json                # the final FlowResult, once completed
//! ```
//!
//! * the **manifest** ([`Manifest`]) records everything needed to recreate
//!   the run: the RNG seed, the serialized
//!   [`ayb_moo::OptimizerConfig`] (including any
//!   early-stopping criterion) and the flow configuration — the latter as a
//!   caller-supplied type parameter so this crate stays independent of the
//!   flow layer;
//! * **checkpoints** are the [`ayb_moo::Checkpoint`] snapshots emitted at
//!   every generation boundary; resuming from the latest one continues the
//!   exact run (bit-identical result to an uninterrupted run);
//! * the **result** is whatever serializable artefact the flow produces.
//!
//! All files are JSON via the workspace's vendored `serde_json` (floats use
//! shortest-round-trip formatting, so `f64` state survives losslessly) and
//! every write is atomic (temp file + rename), so a run killed mid-write
//! never leaves a torn manifest or checkpoint behind — at worst a stale
//! `.tmp` file that readers ignore (and [`Store::sweep_tmp_files`] removes).
//!
//! ## Serving many runs
//!
//! The store is also the source of truth for the job-server layer
//! (`ayb_jobs`): runs can be *enqueued* ([`Store::enqueue_run`], status
//! [`RunStatus::Queued`]) without being executed, scanned in FIFO order
//! ([`Store::queued_run_ids`]) and *claimed* for exclusive execution
//! ([`RunHandle::try_claim`]). A claim is a `claim.json` lock file created
//! atomically (`hard_link` of a fully written temp file, so claims are both
//! exclusive and never torn): two workers — or two server processes — racing
//! for the same run see exactly one winner. Claims record the owning process
//! so that claims left behind by a killed worker can be detected
//! ([`ClaimInfo::holder_alive`]) and the run re-queued.
//!
//! Claims carry a *heartbeat*: holders refresh the claim file's modification
//! time from a background thread ([`ClaimHeartbeat`],
//! [`RunHandle::start_claim_heartbeat`]), so recovery can tell a
//! slow-but-alive holder (fresh heartbeat) from a hung or vanished one
//! (stale heartbeat) — including holders on *other machines*, whose pids
//! cannot be probed ([`RunHandle::claim_health`], [`ClaimHealth`]).
//!
//! ## Sharded evaluation (the data plane)
//!
//! Queued runs distribute whole flows; the [`shards`] module additionally
//! distributes the *evaluation work inside one run*: a sharded flow
//! publishes each optimiser population as claimable shard tasks under
//! `runs/<id>/shards/`, and any number of worker processes — on this or
//! other machines sharing the store — evaluate them
//! ([`ShardDataPlane`], [`ShardTask`], [`Store::open_shard_tasks`]).
//!
//! The flow layer (`ayb_core::FlowBuilder::with_store` / `resume`), the job
//! server (`ayb_jobs::JobServer`) and the `ayb` CLI (`run` / `resume` /
//! `serve` / `submit` / `status` / `list` / `show` / `gc`) are the consumers.
//!
//! ```
//! use ayb_moo::{GaConfig, OptimizerConfig};
//! use ayb_store::{RunStatus, Store};
//!
//! # fn main() -> Result<(), ayb_store::StoreError> {
//! let root = std::env::temp_dir().join(format!("ayb-store-doc-{}", std::process::id()));
//! let store = Store::open(&root)?;
//! let run = store.create_run(7, &OptimizerConfig::Wbga(GaConfig::small_test()), &"config")?;
//! assert_eq!(run.id(), "run-0001");
//! assert_eq!(store.run_ids()?, vec!["run-0001".to_string()]);
//!
//! // Claim the run for exclusive execution, then finish it.
//! let claim = run.try_claim("docs-worker")?;
//! assert_eq!(claim.pid, std::process::id());
//! run.save_result(&"the result")?;
//! run.set_status(RunStatus::Completed)?;
//! run.release_claim()?;
//! # let _ = std::fs::remove_dir_all(root);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod shards;

pub use cache::{CacheEntry, CacheGcReport, ResultCache};
pub use shards::{
    ShardDataPlane, ShardOutcome, ShardSummary, ShardTask, ShardWork, ShardWorkKind,
    VariationOutcome, VariationPointWork,
};

use ayb_moo::{Checkpoint, OptimizerConfig};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Errors produced by store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying error message.
        message: String,
    },
    /// A file held malformed JSON or JSON of the wrong shape.
    Json {
        /// Path of the offending file.
        path: PathBuf,
        /// Underlying error message.
        message: String,
    },
    /// The requested run does not exist.
    RunNotFound(String),
    /// A run with the requested id already exists.
    RunExists(String),
    /// The run id contains characters unsafe for a directory name.
    InvalidRunId(String),
    /// The run has no `result.json` (it never completed).
    NoResult(String),
    /// The run already has a result; executing it again is pointless.
    AlreadyCompleted(String),
    /// The run is claimed for execution by another worker or process.
    RunClaimed {
        /// Id of the claimed run.
        run_id: String,
        /// Owner label recorded in the claim file.
        owner: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at {}: {message}", path.display())
            }
            StoreError::Json { path, message } => {
                write!(f, "store JSON error at {}: {message}", path.display())
            }
            StoreError::RunNotFound(id) => write!(f, "run `{id}` not found in the store"),
            StoreError::RunExists(id) => write!(f, "run `{id}` already exists in the store"),
            StoreError::InvalidRunId(id) => write!(
                f,
                "invalid run id `{id}`: use 1-64 characters from [A-Za-z0-9._-], not starting with `.`"
            ),
            StoreError::NoResult(id) => write!(f, "run `{id}` has no result yet"),
            StoreError::AlreadyCompleted(id) => {
                write!(f, "run `{id}` already has a result; nothing to execute")
            }
            StoreError::RunClaimed { run_id, owner } => {
                write!(f, "run `{run_id}` is claimed by `{owner}`")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_error(path: &Path, error: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

fn json_error(path: &Path, error: impl fmt::Display) -> StoreError {
    StoreError::Json {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A staging-file name segment unique across threads, processes *and hosts*
/// sharing one store: hostname hash + pid + per-process counter. Pids alone
/// collide between machines mounting the same store path, and a shared
/// staging name would let one writer truncate another's temp file mid-write
/// — publishing a torn "atomic" file.
fn unique_write_token() -> String {
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    static HOST_HASH: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let host_hash = HOST_HASH.get_or_init(|| {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in local_host().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    });
    format!(
        "{:08x}-{}-{}",
        host_hash & 0xffff_ffff,
        std::process::id(),
        NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    )
}

/// Writes `text` to `path` atomically (temp file in the same directory,
/// then rename), so concurrent readers and crashes never observe a torn
/// file. The temp name is unique per writer ([`unique_write_token`]), so
/// even two processes writing the *same* target concurrently — e.g. a
/// recovered shard re-evaluated while its slow original worker finishes —
/// each rename a complete file (last one wins, both readable).
fn write_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".{}.tmp", unique_write_token()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, text).map_err(|e| io_error(&tmp, e))?;
    let renamed = fs::rename(&tmp, path).map_err(|e| io_error(path, e));
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

fn read_json<T: Deserialize>(path: &Path) -> Result<T, StoreError> {
    let text = fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    serde_json::from_str(&text).map_err(|e| json_error(path, e))
}

fn write_json<T: Serialize + ?Sized>(path: &Path, value: &T) -> Result<(), StoreError> {
    let text = serde_json::to_string_pretty(value).map_err(|e| json_error(path, e))?;
    write_atomic(path, &text)
}

// ---------------------------------------------------------------------------
// Claim machinery (shared by run claims and shard claims)
// ---------------------------------------------------------------------------

/// Atomically takes the claim lock file at `path` (scratch files staged in
/// `dir`): `Ok(true)` when this process now holds the claim, `Ok(false)`
/// when somebody else does — or the parent directory disappeared, which for
/// claims means the claimable thing itself is gone.
fn take_claim_file(dir: &Path, path: &Path, info: &ClaimInfo) -> Result<bool, StoreError> {
    let text = serde_json::to_string_pretty(info).map_err(|e| json_error(path, e))?;
    let tmp = dir.join(format!(".claim-{}.tmp", unique_write_token()));
    match fs::write(&tmp, text) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(io_error(&tmp, e)),
    }
    let linked = fs::hard_link(&tmp, path);
    let _ = fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(io_error(path, e)),
    }
}

/// Reads the claim at `path`, `None` when no claim exists.
/// Mints the next fencing token from a fence file (a JSON counter living
/// next to the claim file it fences): reads the current value (0 when the
/// file does not exist yet), advances it, writes it back atomically and
/// returns it. Callers stamp the token into their [`ClaimInfo`] *before*
/// taking the claim, so by the time a claim with token `t` is visible, the
/// counter is at least `t` and every later successful claim carries a
/// different token. (Two racing minters can read the same value, but only
/// one of them wins the claim link — the loser's token is never written
/// into a claim, so claim tokens stay unique.)
///
/// # Errors
///
/// Returns [`StoreError::Io`]/[`StoreError::Json`] when the fence file
/// exists but cannot be read, or cannot be written.
pub fn next_fence(fence_path: &Path) -> Result<u64, StoreError> {
    let current: u64 = if fence_path.is_file() {
        read_json(fence_path)?
    } else {
        0
    };
    let fence = current + 1;
    write_json(fence_path, &fence)?;
    Ok(fence)
}

fn read_claim_file(path: &Path) -> Result<Option<ClaimInfo>, StoreError> {
    match fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| json_error(path, e)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_error(path, e)),
    }
}

/// Compare-and-delete of the claim at `path` (scratch staged in `dir`): the
/// claim is broken only if it still matches `expected`. See
/// [`RunHandle::break_claim`] for the race analysis.
fn break_claim_file(dir: &Path, path: &Path, expected: &ClaimInfo) -> Result<bool, StoreError> {
    // Cheap pre-check: if the claim already changed hands since the caller
    // read it (recovery scans can be seconds old), never touch the file.
    if read_claim_file(path)?.as_ref() != Some(expected) {
        return Ok(false);
    }
    let staging = dir.join(format!("claim.breaking-{}", unique_write_token()));
    match fs::rename(path, &staging) {
        Ok(()) => {}
        // Already released or broken by somebody else.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(io_error(path, e)),
    }
    let current: Option<ClaimInfo> = fs::read_to_string(&staging)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    if current.as_ref() == Some(expected) {
        let _ = fs::remove_file(&staging);
        return Ok(true);
    }
    // The claim changed hands between the pre-check and the rename —
    // restore it. The hard_link only fails if yet another claim landed in
    // the meantime, in which case the newer claim stays authoritative.
    let _ = fs::hard_link(&staging, path);
    let _ = fs::remove_file(&staging);
    Ok(false)
}

/// Modification-time age of the file at `path` (the claim heartbeat signal),
/// `None` when the file does not exist or the clock is unreadable.
fn file_mtime_age(path: &Path) -> Option<Duration> {
    let mtime = fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// Refreshes the modification time of the claim file at `path` to "now".
/// Errors (e.g. the claim was released concurrently) are ignored — a missed
/// heartbeat tick is harmless.
fn touch_claim_file(path: &Path) {
    if let Ok(file) = fs::OpenOptions::new().append(true).open(path) {
        let _ = file.set_modified(SystemTime::now());
    }
}

/// A background thread refreshing a claim file's modification time — the
/// claim *heartbeat* — every `interval`, until the guard is dropped.
///
/// Liveness of a claim holder is judged two ways: by pid (authoritative, but
/// only on the holder's own host) and by the claim file's modification time
/// (works across hosts sharing the store, and distinguishes a *slow but
/// alive* holder — fresh heartbeat — from a *hung or vanished* one — stale
/// heartbeat). Long-running holders keep a heartbeat guard alive for as long
/// as they hold the claim; see [`RunHandle::start_claim_heartbeat`].
#[derive(Debug)]
pub struct ClaimHeartbeat {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ClaimHeartbeat {
    /// Starts a heartbeat thread touching `path` every `interval`.
    pub fn start(path: PathBuf, interval: Duration) -> ClaimHeartbeat {
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let (lock, wake) = &*thread_stop;
            let mut stopped = lock.lock().expect("heartbeat lock");
            loop {
                let (next, _) = wake
                    .wait_timeout(stopped, interval)
                    .expect("heartbeat lock");
                stopped = next;
                if *stopped {
                    return;
                }
                touch_claim_file(&path);
            }
        });
        ClaimHeartbeat {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for ClaimHeartbeat {
    fn drop(&mut self) {
        let (lock, wake) = &*self.stop;
        *lock.lock().expect("heartbeat lock") = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Lifecycle state of a stored run.
///
/// A killed process cannot update its own manifest, so a crashed run keeps
/// the `Running` status it had when it died — `Interrupted` is only recorded
/// for *deliberate* halts at a checkpoint boundary. Both resume the same way.
///
/// `Queued` runs have a manifest but were never started: `ayb submit` /
/// [`Store::enqueue_run`] create them for a job server to claim and execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The run is waiting in the queue; no process has executed it yet.
    Queued,
    /// The flow is (or was, if the process died) executing.
    Running,
    /// The flow was deliberately halted at a checkpoint boundary.
    Interrupted,
    /// The flow finished and `result.json` was written.
    Completed,
    /// The flow failed with an error.
    Failed,
}

impl RunStatus {
    /// Stable lower-case name for display and scripting.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Interrupted => "interrupted",
            RunStatus::Completed => "completed",
            RunStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The durable description of one run (`manifest.json`).
///
/// `C` is the flow-level configuration type (the flow layer uses its
/// `FlowConfig`); keeping it generic lets this crate sit below the flow in
/// the dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest<C> {
    /// Identifier of the run (also its directory name).
    pub run_id: String,
    /// Lifecycle state.
    pub status: RunStatus,
    /// RNG seed the optimiser ran with (also recorded inside `optimizer`).
    pub seed: u64,
    /// Creation time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Last status change, seconds since the Unix epoch.
    pub updated_unix: u64,
    /// The optimisation algorithm and its full settings, including any
    /// early-stopping criterion — a resumed run honours them exactly.
    pub optimizer: OptimizerConfig,
    /// The flow-level configuration.
    pub flow: C,
}

/// A filesystem-backed store of runs (see the crate docs for the layout).
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

const MANIFEST_FILE: &str = "manifest.json";
const RESULT_FILE: &str = "result.json";
const CLAIM_FILE: &str = "claim.json";
const CLAIM_FENCE_FILE: &str = "claim.fence.json";

/// Per-run transport diagnostic report (see
/// [`RunHandle::save_transport_report`]).
const TRANSPORT_REPORT_FILE: &str = "transport.json";
/// Per-run append-only telemetry log (see [`RunHandle::events_path`]).
const EVENTS_FILE: &str = "events.jsonl";
const CHECKPOINT_DIR: &str = "checkpoints";
const CHECKPOINT_PREFIX: &str = "gen_";
const VARIATION_CHECKPOINT_PREFIX: &str = "variation_";

/// Attempts [`Store::create_run`] makes before giving up when racing other
/// creators for sequential ids.
const CREATE_RUN_ATTEMPTS: usize = 256;

/// Sort key that orders `run-9999` before `run-10000`: the id is split into
/// a stem and its trailing decimal digits, and the digits compare
/// numerically. Ids without a numeric suffix fall back to plain string
/// order; the full id breaks remaining ties (e.g. `run-001` vs `run-1`).
fn run_id_sort_key(id: &str) -> (&str, Option<u64>, &str) {
    let digits = id.chars().rev().take_while(char::is_ascii_digit).count();
    let (stem, suffix) = id.split_at(id.len() - digits);
    (stem, suffix.parse::<u64>().ok(), id)
}

/// Whether `key` is one of the core `Manifest` fields, which extras may
/// never shadow (a `status` "extra" silently diverging from the real status
/// would corrupt the lifecycle).
fn manifest_core_key(key: &str) -> bool {
    matches!(
        key,
        "run_id" | "status" | "seed" | "created_unix" | "updated_unix" | "optimizer" | "flow"
    )
}

fn valid_run_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Store {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        let runs = root.join("runs");
        fs::create_dir_all(&runs).map_err(|e| io_error(&runs, e))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn runs_dir(&self) -> PathBuf {
        self.root.join("runs")
    }

    /// All run ids in the store, sorted with numeric awareness: sequential
    /// ids order by their number (`run-9999` before `run-10000`), so listings
    /// and "latest run" consumers stay correct past four digits; ids without
    /// a numeric suffix sort lexicographically among themselves.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn run_ids(&self) -> Result<Vec<String>, StoreError> {
        let runs = self.runs_dir();
        let entries = fs::read_dir(&runs).map_err(|e| io_error(&runs, e))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&runs, e))?;
            let is_dir = entry
                .file_type()
                .map_err(|e| io_error(&entry.path(), e))?
                .is_dir();
            if !is_dir {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if valid_run_id(name) {
                    ids.push(name.to_string());
                }
            }
        }
        ids.sort_by(|a, b| run_id_sort_key(a).cmp(&run_id_sort_key(b)));
        Ok(ids)
    }

    /// The next sequential run id (`run-0001`, `run-0002`, ...) that
    /// [`Store::create_run`] would allocate.
    ///
    /// The id is not reserved; a concurrent creator racing for it is
    /// resolved by [`Store::create_run_with_id`] failing with
    /// [`StoreError::RunExists`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn next_run_id(&self) -> Result<String, StoreError> {
        let highest = self
            .run_ids()?
            .iter()
            .filter_map(|id| id.strip_prefix("run-")?.parse::<u64>().ok())
            .max()
            .unwrap_or(0);
        Ok(format!("run-{:04}", highest + 1))
    }

    /// Creates a run with a fresh sequential id and writes its manifest
    /// (status [`RunStatus::Running`]).
    ///
    /// Safe under concurrency: when several creators race for the same
    /// sequential id, the losers transparently retry with the next id
    /// instead of surfacing a spurious [`StoreError::RunExists`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on filesystem or
    /// serialization failures.
    pub fn create_run<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        self.create_sequential(seed, optimizer, flow, RunStatus::Running)
    }

    /// Creates a run with a fresh sequential id and status
    /// [`RunStatus::Queued`]: the run is recorded but not executed, waiting
    /// for a job server's worker to claim it. Retries on id races exactly
    /// like [`Store::create_run`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on filesystem or
    /// serialization failures.
    pub fn enqueue_run<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        self.enqueue_run_with_extras(seed, optimizer, flow, &[])
    }

    /// [`Store::enqueue_run`] with additional manifest keys written
    /// atomically alongside the core manifest — there is no window in which
    /// the run is visible to a polling job server without them. The service
    /// plane uses this for its `tenant`/`priority`/`submission_digest`
    /// annotations; [`RunHandle::set_status`] and every other manifest
    /// rewrite preserve such extra keys. Extras shadowing a core manifest
    /// key (`run_id`, `status`, `seed`, `created_unix`, `updated_unix`,
    /// `optimizer`, `flow`) are ignored.
    ///
    /// # Errors
    ///
    /// As [`Store::enqueue_run`].
    pub fn enqueue_run_with_extras<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
        extras: &[(String, Value)],
    ) -> Result<RunHandle, StoreError> {
        let mut id = self.next_run_id()?;
        for _ in 0..CREATE_RUN_ATTEMPTS {
            match self.create_with_status_and_extras(
                &id,
                seed,
                optimizer,
                flow,
                RunStatus::Queued,
                extras,
            ) {
                Err(StoreError::RunExists(taken)) => {
                    let n = taken
                        .strip_prefix("run-")
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(0);
                    id = format!("run-{:04}", n + 1);
                }
                other => return other,
            }
        }
        Err(StoreError::RunExists(id))
    }

    /// Creates a run under a caller-chosen id with status
    /// [`RunStatus::Queued`] (the scripting companion of
    /// [`Store::enqueue_run`]).
    ///
    /// # Errors
    ///
    /// As [`Store::create_run_with_id`].
    pub fn enqueue_run_with_id<C: Serialize>(
        &self,
        id: &str,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        self.create_with_status(id, seed, optimizer, flow, RunStatus::Queued)
    }

    fn create_sequential<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
        status: RunStatus,
    ) -> Result<RunHandle, StoreError> {
        let mut id = self.next_run_id()?;
        for _ in 0..CREATE_RUN_ATTEMPTS {
            match self.create_with_status(&id, seed, optimizer, flow, status) {
                Err(StoreError::RunExists(taken)) => {
                    // Lost the id to a concurrent creator; advance past it.
                    let n = taken
                        .strip_prefix("run-")
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(0);
                    id = format!("run-{:04}", n + 1);
                }
                other => return other,
            }
        }
        Err(StoreError::RunExists(id))
    }

    /// Creates a run under a caller-chosen id (useful for scripting).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRunId`] for unsafe ids,
    /// [`StoreError::RunExists`] when the id is taken, and
    /// [`StoreError::Io`]/[`StoreError::Json`] on filesystem or
    /// serialization failures.
    pub fn create_run_with_id<C: Serialize>(
        &self,
        id: &str,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<RunHandle, StoreError> {
        self.create_with_status(id, seed, optimizer, flow, RunStatus::Running)
    }

    fn create_with_status<C: Serialize>(
        &self,
        id: &str,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
        status: RunStatus,
    ) -> Result<RunHandle, StoreError> {
        self.create_with_status_and_extras(id, seed, optimizer, flow, status, &[])
    }

    fn create_with_status_and_extras<C: Serialize>(
        &self,
        id: &str,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
        status: RunStatus,
        extras: &[(String, Value)],
    ) -> Result<RunHandle, StoreError> {
        if !valid_run_id(id) {
            return Err(StoreError::InvalidRunId(id.to_string()));
        }
        let dir = self.runs_dir().join(id);
        fs::create_dir(&dir).map_err(|e| {
            if e.kind() == io::ErrorKind::AlreadyExists {
                StoreError::RunExists(id.to_string())
            } else {
                io_error(&dir, e)
            }
        })?;
        let checkpoints = dir.join(CHECKPOINT_DIR);
        fs::create_dir(&checkpoints).map_err(|e| io_error(&checkpoints, e))?;

        let now = now_unix();
        let manifest = Manifest {
            run_id: id.to_string(),
            status,
            seed,
            created_unix: now,
            updated_unix: now,
            optimizer: optimizer.clone(),
            flow,
        };
        let handle = RunHandle {
            run_id: id.to_string(),
            dir,
        };
        if extras.is_empty() {
            write_json(&handle.manifest_path(), &manifest)?;
        } else {
            let mut value = manifest.to_value();
            if let Value::Object(pairs) = &mut value {
                for (key, extra) in extras {
                    if manifest_core_key(key) || pairs.iter().any(|(k, _)| k == key) {
                        continue;
                    }
                    pairs.push((key.clone(), extra.clone()));
                }
            }
            write_json(&handle.manifest_path(), &value)?;
        }
        Ok(handle)
    }

    /// Opens an existing run.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RunNotFound`] when no such run directory (with
    /// a manifest) exists.
    pub fn run(&self, id: &str) -> Result<RunHandle, StoreError> {
        if !valid_run_id(id) {
            return Err(StoreError::InvalidRunId(id.to_string()));
        }
        let dir = self.runs_dir().join(id);
        if !dir.join(MANIFEST_FILE).is_file() {
            return Err(StoreError::RunNotFound(id.to_string()));
        }
        Ok(RunHandle {
            run_id: id.to_string(),
            dir,
        })
    }

    /// Ids of all [`RunStatus::Queued`] runs in FIFO order (creation time,
    /// then id order for same-second submissions). Runs whose manifest is
    /// unreadable — e.g. a creator killed between `mkdir` and the manifest
    /// write — are skipped rather than failing the scan.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn queued_run_ids(&self) -> Result<Vec<String>, StoreError> {
        self.poll_queued(&mut HashSet::new())
    }

    /// [`Store::queued_run_ids`] for repeated polling: ids in `terminal`
    /// are skipped without touching their manifests, and runs observed
    /// `Completed`/`Failed` are added to it. A job server polling a store
    /// with thousands of finished runs therefore reads each dead manifest
    /// once, not once per tick — each poll is O(live runs).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the runs directory cannot be read.
    pub fn poll_queued(&self, terminal: &mut HashSet<String>) -> Result<Vec<String>, StoreError> {
        let mut queued: Vec<(u64, usize, String)> = Vec::new();
        for (index, id) in self.run_ids()?.into_iter().enumerate() {
            if terminal.contains(&id) {
                continue;
            }
            let Ok(handle) = self.run(&id) else { continue };
            let Ok(value) = handle.manifest_value() else {
                continue;
            };
            let status = value
                .get("status")
                .and_then(|s| RunStatus::from_value(s).ok());
            match status {
                Some(RunStatus::Queued) => {
                    let created = value
                        .get("created_unix")
                        .and_then(|v| u64::from_value(v).ok())
                        .unwrap_or(0);
                    queued.push((created, index, id));
                }
                Some(RunStatus::Completed) | Some(RunStatus::Failed) => {
                    terminal.insert(id);
                }
                _ => {}
            }
        }
        queued.sort();
        Ok(queued.into_iter().map(|(_, _, id)| id).collect())
    }

    /// Removes stale `*.tmp` files left behind by killed writers, in every
    /// run directory and checkpoint directory. Only files whose modification
    /// time is at least `min_age` old are touched, so a writer that is
    /// mid-`rename` right now is never raced; pass [`Duration::ZERO`] to
    /// sweep unconditionally. Claim-machinery scratch files are always kept
    /// for at least a minute regardless of `min_age` — deleting one
    /// mid-claim would fail a live worker. Returns the removed paths.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when a directory scan or removal fails
    /// (a file that disappears concurrently is not an error).
    pub fn sweep_tmp_files(&self, min_age: Duration) -> Result<Vec<PathBuf>, StoreError> {
        let mut removed = Vec::new();
        for id in self.run_ids()? {
            let dir = self.runs_dir().join(&id);
            sweep_tmp_dir(&dir, min_age, &mut removed)?;
            sweep_tmp_dir(&dir.join(CHECKPOINT_DIR), min_age, &mut removed)?;
        }
        Ok(removed)
    }
}

/// Claim-machinery scratch files (`.claim-*.tmp` staging for `try_claim`,
/// `claim.breaking-*` staging for `break_claim`) are never swept younger
/// than this, whatever `min_age` the caller asked for: deleting one
/// mid-operation would make a concurrent worker's claim fail spuriously
/// (and the run be reported failed). They only linger when their process
/// died mid-claim, so a minute is plenty.
const CLAIM_SWEEP_FLOOR: Duration = Duration::from_secs(60);

/// Removes `*.tmp` (and orphaned `claim.breaking-*`) files older than
/// `min_age` directly inside `dir`.
fn sweep_tmp_dir(
    dir: &Path,
    min_age: Duration,
    removed: &mut Vec<PathBuf>,
) -> Result<(), StoreError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| io_error(dir, e))?;
    let now = SystemTime::now();
    for entry in entries {
        let entry = entry.map_err(|e| io_error(dir, e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let is_claim_scratch = name.starts_with(".claim-") || name.starts_with("claim.breaking-");
        let sweepable = name.ends_with(".tmp") || name.starts_with("claim.breaking-");
        if !sweepable || !path.is_file() {
            continue;
        }
        let required_age = if is_claim_scratch {
            min_age.max(CLAIM_SWEEP_FLOOR)
        } else {
            min_age
        };
        let age = entry
            .metadata()
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|mtime| now.duration_since(mtime).ok())
            .unwrap_or(Duration::MAX);
        if age < required_age {
            continue;
        }
        match fs::remove_file(&path) {
            Ok(()) => removed.push(path),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_error(&path, e)),
        }
    }
    Ok(())
}

/// Handle to one run directory inside a [`Store`].
#[derive(Debug, Clone)]
pub struct RunHandle {
    run_id: String,
    dir: PathBuf,
}

impl RunHandle {
    /// The run's identifier.
    pub fn id(&self) -> &str {
        &self.run_id
    }

    /// The run's directory on disk.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    fn result_path(&self) -> PathBuf {
        self.dir.join(RESULT_FILE)
    }

    /// The run's append-only telemetry log (`events.jsonl`). The file is
    /// created by the first event sink aimed at it; it may legitimately not
    /// exist (telemetry disabled, or a run predating the telemetry plane).
    /// Every writer appends complete single-`write` lines (`ayb_obs`'s
    /// `JsonlSink`), so concurrent appends from several processes never
    /// tear.
    pub fn events_path(&self) -> PathBuf {
        self.dir.join(EVENTS_FILE)
    }

    fn checkpoint_path(&self, generation: usize) -> PathBuf {
        self.dir
            .join(CHECKPOINT_DIR)
            .join(format!("{CHECKPOINT_PREFIX}{generation:04}.json"))
    }

    /// Loads the typed manifest.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest is
    /// missing or malformed.
    pub fn manifest<C: Deserialize>(&self) -> Result<Manifest<C>, StoreError> {
        read_json(&self.manifest_path())
    }

    /// Loads the manifest as an untyped JSON value (for listings that do not
    /// know the flow-configuration type).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest is
    /// missing or malformed.
    pub fn manifest_value(&self) -> Result<Value, StoreError> {
        read_json(&self.manifest_path())
    }

    /// The run's current lifecycle status.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] when the manifest lacks a valid status.
    pub fn status(&self) -> Result<RunStatus, StoreError> {
        let value = self.manifest_value()?;
        let status = value
            .get("status")
            .ok_or_else(|| json_error(&self.manifest_path(), "manifest has no `status` field"))?;
        RunStatus::from_value(status).map_err(|e| json_error(&self.manifest_path(), e))
    }

    /// Updates the manifest's status (and `updated_unix`) in place, without
    /// needing to know the flow-configuration type.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest
    /// cannot be read back or rewritten.
    pub fn set_status(&self, status: RunStatus) -> Result<(), StoreError> {
        let mut value = self.manifest_value()?;
        let Value::Object(pairs) = &mut value else {
            return Err(json_error(
                &self.manifest_path(),
                "manifest is not an object",
            ));
        };
        for (key, field) in pairs.iter_mut() {
            match key.as_str() {
                "status" => *field = status.to_value(),
                "updated_unix" => *field = now_unix().to_value(),
                _ => {}
            }
        }
        write_json(&self.manifest_path(), &value)
    }

    /// Upserts extra (non-core) keys into the manifest, atomically and
    /// without disturbing the typed fields — the read-modify-rewrite
    /// counterpart of [`Store::enqueue_run_with_extras`] for annotations
    /// that change after creation (the service plane's `dedup_hits` counter,
    /// a `cancelled` marker). Keys shadowing a core manifest field are
    /// ignored. Existing extra keys are replaced, new ones appended.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest
    /// cannot be read back or rewritten.
    pub fn merge_manifest_extras(&self, extras: &[(String, Value)]) -> Result<(), StoreError> {
        let mut value = self.manifest_value()?;
        let Value::Object(pairs) = &mut value else {
            return Err(json_error(
                &self.manifest_path(),
                "manifest is not an object",
            ));
        };
        for (key, extra) in extras {
            if manifest_core_key(key) {
                continue;
            }
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, field)) => *field = extra.clone(),
                None => pairs.push((key.clone(), extra.clone())),
            }
        }
        write_json(&self.manifest_path(), &value)
    }

    /// Reads one extra manifest key (as written by
    /// [`Store::enqueue_run_with_extras`] or
    /// [`RunHandle::merge_manifest_extras`]), or `None` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the manifest is
    /// missing or malformed.
    pub fn manifest_extra(&self, key: &str) -> Result<Option<Value>, StoreError> {
        Ok(self.manifest_value()?.get(key).cloned())
    }

    /// Persists one checkpoint as `checkpoints/gen_NNNN.json` (atomically),
    /// returning the written path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_checkpoint(&self, checkpoint: &Checkpoint) -> Result<PathBuf, StoreError> {
        let path = self.checkpoint_path(checkpoint.next_generation);
        write_json(&path, checkpoint)?;
        Ok(path)
    }

    /// The generation indices of all stored checkpoints, sorted ascending.
    /// Stale `.tmp` files from a killed writer are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the checkpoint directory cannot be
    /// read.
    pub fn checkpoint_generations(&self) -> Result<Vec<usize>, StoreError> {
        let dir = self.dir.join(CHECKPOINT_DIR);
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let entries = fs::read_dir(&dir).map_err(|e| io_error(&dir, e))?;
        let mut generations = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(CHECKPOINT_PREFIX)
                .and_then(|s| s.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(generation) = stem.parse::<usize>() {
                generations.push(generation);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// Loads the checkpoint of a specific generation.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the file is
    /// missing or malformed.
    pub fn load_checkpoint(&self, generation: usize) -> Result<Checkpoint, StoreError> {
        read_json(&self.checkpoint_path(generation))
    }

    /// Loads the most recent checkpoint, if any exist.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on unreadable or
    /// malformed checkpoint files.
    pub fn latest_checkpoint(&self) -> Result<Option<Checkpoint>, StoreError> {
        match self.checkpoint_generations()?.last() {
            Some(&generation) => self.load_checkpoint(generation).map(Some),
            None => Ok(None),
        }
    }

    fn variation_checkpoint_path(&self, index: usize) -> PathBuf {
        self.dir
            .join(CHECKPOINT_DIR)
            .join(format!("{VARIATION_CHECKPOINT_PREFIX}{index:04}.json"))
    }

    /// Persists one analysed Pareto point's record as
    /// `checkpoints/variation_NNNN.json` (atomically), returning the written
    /// path. The record type is the flow's own (the store is agnostic to
    /// it), typically `ayb_core`'s per-point variation record.
    ///
    /// These per-point checkpoints are what lets an interrupted flow resume
    /// *mid variation stage*: points already on disk are restored instead of
    /// re-analysed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_variation_checkpoint<T: Serialize>(
        &self,
        index: usize,
        record: &T,
    ) -> Result<PathBuf, StoreError> {
        let path = self.variation_checkpoint_path(index);
        write_json(&path, record)?;
        Ok(path)
    }

    /// The Pareto-point indices of all stored variation checkpoints, sorted
    /// ascending. Stale `.tmp` files from a killed writer are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the checkpoint directory cannot be
    /// read.
    pub fn variation_checkpoint_indices(&self) -> Result<Vec<usize>, StoreError> {
        let dir = self.dir.join(CHECKPOINT_DIR);
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let entries = fs::read_dir(&dir).map_err(|e| io_error(&dir, e))?;
        let mut indices = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(VARIATION_CHECKPOINT_PREFIX)
                .and_then(|s| s.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(index) = stem.parse::<usize>() {
                indices.push(index);
            }
        }
        indices.sort_unstable();
        Ok(indices)
    }

    /// Loads the variation checkpoint of a specific Pareto-point index.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the file is
    /// missing or malformed.
    pub fn load_variation_checkpoint<T: Deserialize>(&self, index: usize) -> Result<T, StoreError> {
        read_json(&self.variation_checkpoint_path(index))
    }

    /// Removes every variation checkpoint, returning how many were removed.
    /// Housekeeping for *completed* runs (`ayb gc`): once `result.json`
    /// exists, the per-point records are dead weight.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when a checkpoint file cannot be removed.
    pub fn sweep_variation_checkpoints(&self) -> Result<usize, StoreError> {
        let indices = self.variation_checkpoint_indices()?;
        let mut removed = 0;
        for &index in &indices {
            let path = self.variation_checkpoint_path(index);
            match fs::remove_file(&path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_error(&path, e)),
            }
        }
        Ok(removed)
    }

    /// Persists the run's final result as `result.json` (atomically).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_result<R: Serialize>(&self, result: &R) -> Result<(), StoreError> {
        write_json(&self.result_path(), result)
    }

    /// Whether the run has a stored result.
    pub fn has_result(&self) -> bool {
        self.result_path().is_file()
    }

    /// Persists the run's transport report as `transport.json` (atomically):
    /// a diagnostic record of the shard data plane's traffic and every
    /// degradation to local evaluation, written by the flow and shown by
    /// `ayb status`. The report never affects results or digests.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] on write failures.
    pub fn save_transport_report<R: Serialize>(&self, report: &R) -> Result<(), StoreError> {
        write_json(&self.dir.join(TRANSPORT_REPORT_FILE), report)
    }

    /// Loads the run's transport report as raw JSON, or `None` when the run
    /// never wrote one (unsharded flows, or flows predating the report).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// report is unreadable.
    pub fn transport_report_value(&self) -> Result<Option<Value>, StoreError> {
        let path = self.dir.join(TRANSPORT_REPORT_FILE);
        if !path.is_file() {
            return Ok(None);
        }
        read_json(&path).map(Some)
    }

    /// Loads the run's result.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoResult`] when the run never completed, and
    /// [`StoreError::Io`]/[`StoreError::Json`] on unreadable or malformed
    /// files.
    pub fn load_result<R: Deserialize>(&self) -> Result<R, StoreError> {
        if !self.has_result() {
            return Err(StoreError::NoResult(self.run_id.clone()));
        }
        read_json(&self.result_path())
    }

    fn claim_path(&self) -> PathBuf {
        self.dir.join(CLAIM_FILE)
    }

    /// Atomically claims the run for exclusive execution.
    ///
    /// The claim is a `claim.json` lock file created with `hard_link` from a
    /// fully written temp file: creation is atomic *and* exclusive, so of any
    /// number of workers (in any number of processes) racing for the run,
    /// exactly one gets `Ok` — and a reader never observes a torn claim.
    /// The claim records this process and `owner` so that stale claims left
    /// by a killed worker can be detected ([`ClaimInfo::holder_alive`]) and
    /// broken by a recovery pass.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RunClaimed`] when the run is already claimed,
    /// or [`StoreError::Io`]/[`StoreError::Json`] on filesystem failures.
    pub fn try_claim(&self, owner: &str) -> Result<ClaimInfo, StoreError> {
        let fence = next_fence(&self.dir.join(CLAIM_FENCE_FILE))?;
        let info = ClaimInfo::for_this_process(owner).with_fence(fence);
        if take_claim_file(&self.dir, &self.claim_path(), &info)? {
            Ok(info)
        } else {
            let owner = self
                .claim()
                .ok()
                .flatten()
                .map_or_else(|| "unknown".to_string(), |claim| claim.owner);
            Err(StoreError::RunClaimed {
                run_id: self.run_id.clone(),
                owner,
            })
        }
    }

    /// The run's current claim, if any.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// claim file cannot be read (claims are written atomically, so this
    /// indicates external corruption, not a torn write).
    pub fn claim(&self) -> Result<Option<ClaimInfo>, StoreError> {
        read_claim_file(&self.claim_path())
    }

    /// Age of the run claim's last heartbeat (its file modification time),
    /// `None` when the run is unclaimed.
    ///
    /// Claim holders refresh the heartbeat with
    /// [`RunHandle::start_claim_heartbeat`]; readers combine this age with
    /// [`ClaimInfo::holder_alive`] through [`RunHandle::claim_health`].
    pub fn claim_heartbeat_age(&self) -> Option<Duration> {
        file_mtime_age(&self.claim_path())
    }

    /// Starts a heartbeat thread refreshing this run's claim file every
    /// `interval`, for as long as the returned guard lives.
    ///
    /// Meant to be called by the claim *holder* right after a successful
    /// [`RunHandle::try_claim`]; drop the guard before releasing the claim.
    pub fn start_claim_heartbeat(&self, interval: Duration) -> ClaimHeartbeat {
        ClaimHeartbeat::start(self.claim_path(), interval)
    }

    /// Judges the run claim's health, combining the pid liveness check
    /// (authoritative on the holder's own host) with the heartbeat age
    /// (meaningful across hosts): see [`ClaimHealth`]. Returns `None` when
    /// the run is unclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// claim file cannot be read.
    pub fn claim_health(
        &self,
        max_heartbeat_age: Duration,
    ) -> Result<Option<(ClaimInfo, ClaimHealth)>, StoreError> {
        let Some(claim) = self.claim()? else {
            return Ok(None);
        };
        let age = self.claim_heartbeat_age().unwrap_or(Duration::MAX);
        let health = claim.health(age, max_heartbeat_age);
        Ok(Some((claim, health)))
    }

    /// The run's claim *if* its holder is provably gone
    /// ([`ClaimHealth::Dead`]): a dead pid on this host, or — for claims
    /// from other hosts, where pids cannot be probed — a heartbeat older
    /// than `max_heartbeat_age`.
    ///
    /// A *hung* holder (alive pid, stale heartbeat) is deliberately not
    /// reported here: use [`RunHandle::stalled_claim`] when the caller's
    /// writes are fence-guarded and stealing from a process that may yet
    /// wake up is therefore safe.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// claim file cannot be read.
    pub fn stale_claim(
        &self,
        max_heartbeat_age: Duration,
    ) -> Result<Option<ClaimInfo>, StoreError> {
        Ok(self
            .claim_health(max_heartbeat_age)?
            .and_then(|(claim, health)| (health == ClaimHealth::Dead).then_some(claim)))
    }

    /// The run's claim *if* its holder has stalled — [`ClaimHealth::Dead`]
    /// (provably gone) **or** [`ClaimHealth::Hung`] (alive pid, heartbeat
    /// older than `max_heartbeat_age`). This is the steal set of a
    /// *fencing-aware* recovery pass: stealing from a hung-but-alive holder
    /// is safe since claims carry fencing tokens ([`ClaimInfo::fence`]) and
    /// every holder guards its durable writes by re-checking the claim file
    /// still holds *its* claim — a stolen holder that wakes up discards its
    /// own late writes instead of persisting them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// claim file cannot be read.
    pub fn stalled_claim(
        &self,
        max_heartbeat_age: Duration,
    ) -> Result<Option<ClaimInfo>, StoreError> {
        Ok(self
            .claim_health(max_heartbeat_age)?
            .and_then(|(claim, health)| (health != ClaimHealth::Alive).then_some(claim)))
    }

    /// Whether the claim file still holds exactly `expected` — the fencing
    /// check a claim holder performs immediately before every durable write
    /// (checkpoint, variation point, result). `false` means the claim was
    /// stolen (or released): the holder must discard the write and stop.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when an existing
    /// claim file cannot be read.
    pub fn claim_is(&self, expected: &ClaimInfo) -> Result<bool, StoreError> {
        Ok(self.claim()?.as_ref() == Some(expected))
    }

    /// Releases the run's claim. Returns whether a claim file existed.
    ///
    /// This is for the claim's *owner*; a recovery pass breaking somebody
    /// else's stale claim must use [`RunHandle::break_claim`] instead, which
    /// re-checks that the claim has not changed hands.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the claim file exists but cannot be
    /// removed.
    pub fn release_claim(&self) -> Result<bool, StoreError> {
        match fs::remove_file(self.claim_path()) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_error(&self.claim_path(), e)),
        }
    }

    /// Breaks a (presumed stale) claim *only if* it still matches
    /// `expected`, as previously read via [`RunHandle::claim`]. Returns
    /// whether the claim was broken.
    ///
    /// A blind `release_claim` here would be a check-then-act race: between
    /// reading the stale claim and deleting the file, another recovery pass
    /// may have already broken it and a new worker legitimately re-claimed
    /// the run — deleting *that* claim would let two processes execute the
    /// run concurrently. Instead the claim is re-read immediately before
    /// the break (a changed claim aborts without touching the file), then
    /// atomically renamed to a unique name (exactly one racing breaker wins
    /// the rename), compared once more, and on a mismatch the live claim is
    /// restored. A sub-microsecond window remains in which a live claim is
    /// renamed away and restored — closing it entirely needs an ownership
    /// heartbeat, which the ROADMAP tracks; every realistic interleaving
    /// (two recovery passes racing, a worker re-claiming mid-break) resolves
    /// to exactly one execution.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on rename failures other than the claim
    /// being gone already.
    pub fn break_claim(&self, expected: &ClaimInfo) -> Result<bool, StoreError> {
        break_claim_file(&self.dir, &self.claim_path(), expected)
    }

    /// Deletes all but the newest `keep_last` checkpoints (resuming only
    /// ever needs the latest one), returning the pruned generation indices.
    /// `ayb gc` uses this to bound the disk footprint of completed runs.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the checkpoint directory cannot be
    /// scanned or a file cannot be removed.
    pub fn prune_checkpoints(&self, keep_last: usize) -> Result<Vec<usize>, StoreError> {
        let generations = self.checkpoint_generations()?;
        let cut = generations.len().saturating_sub(keep_last);
        let pruned = &generations[..cut];
        for &generation in pruned {
            let path = self.checkpoint_path(generation);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_error(&path, e)),
            }
        }
        Ok(pruned.to_vec())
    }
}

/// Health judgment of a claim, combining pid liveness and heartbeat age
/// (see [`RunHandle::claim_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimHealth {
    /// The holder is alive: a live pid on this host, or a fresh heartbeat
    /// from anywhere.
    Alive,
    /// The holder's pid is alive on this host but its heartbeat went stale:
    /// the process is hung (or never heartbeats). Not safe to steal — it may
    /// wake up — but worth surfacing to operators.
    Hung,
    /// The holder is provably (or presumably) gone: dead pid on this host,
    /// or a foreign-host claim whose heartbeat went stale. Recovery may
    /// break the claim.
    Dead,
}

/// Contents of a run's `claim.json` lock file: who is executing the run.
///
/// `Deserialize` is implemented by hand so claims written before the `host`
/// field existed still load: an absent host defaults to *this* host, which
/// preserves the pre-heartbeat pid-based liveness semantics for old claims.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClaimInfo {
    /// Caller-supplied label of the claiming worker (for diagnostics).
    pub owner: String,
    /// OS process id of the claiming process.
    pub pid: u32,
    /// Hostname of the claiming process — pid liveness checks are only
    /// meaningful on the claimant's own host; stores shared between machines
    /// rely on the claim heartbeat instead.
    pub host: String,
    /// Claim time, seconds since the Unix epoch.
    pub claimed_unix: u64,
    /// Fencing token: a counter (kept in a fence file next to the claim)
    /// that every successful claim advances. Two claims on the same resource
    /// are therefore never equal — even re-claims by the same process within
    /// the same second — which is what lets a *writer* verify, immediately
    /// before a durable write, that the claim file still holds *its* claim
    /// and not a successor's. That check is how stealing a Hung (alive-pid,
    /// stale-heartbeat) claim becomes safe: if the hung holder wakes up
    /// after the steal, its claim no longer matches and its late write is
    /// discarded. Claims written before fencing deserialize with token 0.
    pub fence: u64,
}

impl ClaimInfo {
    /// A claim record describing this process (the normal way claims are
    /// minted; [`RunHandle::try_claim`] uses it).
    pub fn for_this_process(owner: &str) -> ClaimInfo {
        ClaimInfo {
            owner: owner.to_string(),
            pid: std::process::id(),
            host: local_host().to_string(),
            claimed_unix: now_unix(),
            fence: 0,
        }
    }

    /// The same claim stamped with fencing token `fence` (see
    /// [`ClaimInfo::fence`]); claim takers mint the token with
    /// [`next_fence`] right before linking the claim into place.
    #[must_use]
    pub fn with_fence(mut self, fence: u64) -> ClaimInfo {
        self.fence = fence;
        self
    }

    /// Whether the claim was minted on this host (making its pid probeable).
    pub fn same_host(&self) -> bool {
        self.host == local_host()
    }

    /// Whether this claim's pid can be probed *authoritatively*: its own
    /// process always can; other same-host pids only where `/proc` exists.
    /// Everywhere else liveness must be judged by heartbeat age instead.
    fn pid_probe_is_authoritative(&self) -> bool {
        self.same_host() && (self.pid == std::process::id() || cfg!(target_os = "linux"))
    }

    /// Whether the claiming process still appears to be alive.
    ///
    /// The claiming process itself always sees `true`. For other pids on
    /// *this host* the check is `/proc/<pid>` on Linux (an hour's grace on
    /// platforms without `/proc`). Claims minted on **other hosts** are
    /// conservatively considered alive — a foreign pid cannot be probed;
    /// judge those by heartbeat age instead ([`ClaimInfo::health`],
    /// [`RunHandle::claim_health`]).
    pub fn holder_alive(&self) -> bool {
        if self.pid == std::process::id() && self.same_host() {
            return true;
        }
        if !self.same_host() {
            return true;
        }
        #[cfg(target_os = "linux")]
        {
            Path::new("/proc").join(self.pid.to_string()).is_dir()
        }
        #[cfg(not(target_os = "linux"))]
        {
            now_unix().saturating_sub(self.claimed_unix) < 3600
        }
    }

    /// Judges this claim's health given its heartbeat age (the claim file's
    /// modification-time age) and the staleness threshold.
    ///
    /// Where the pid can be probed authoritatively (same host with `/proc`,
    /// or the holder is this very process) the pid decides dead-vs-alive and
    /// the heartbeat only distinguishes [`ClaimHealth::Hung`]. Everywhere
    /// else — other hosts, or platforms without `/proc` — the heartbeat is
    /// the only trustworthy signal, so a fresh heartbeat always means
    /// [`ClaimHealth::Alive`] (a long-running holder is never mistaken for
    /// dead just because a pid guess timed out).
    pub fn health(&self, heartbeat_age: Duration, max_heartbeat_age: Duration) -> ClaimHealth {
        if self.pid_probe_is_authoritative() {
            if !self.holder_alive() {
                ClaimHealth::Dead
            } else if heartbeat_age > max_heartbeat_age {
                ClaimHealth::Hung
            } else {
                ClaimHealth::Alive
            }
        } else if heartbeat_age > max_heartbeat_age {
            ClaimHealth::Dead
        } else {
            ClaimHealth::Alive
        }
    }
}

impl Deserialize for ClaimInfo {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        // Claims written before the heartbeat work carried no host; treating
        // them as local preserves their original pid-based semantics.
        let host = match value.get("host") {
            Some(field) => Deserialize::from_value(field)?,
            None => local_host().to_string(),
        };
        // Claims written before fencing carry no token; 0 ("never fenced")
        // keeps them comparable without ever colliding with a minted token.
        let fence = match value.get("fence") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        Ok(ClaimInfo {
            owner: Deserialize::from_value(serde::__field(value, "owner")?)?,
            pid: Deserialize::from_value(serde::__field(value, "pid")?)?,
            host,
            claimed_unix: Deserialize::from_value(serde::__field(value, "claimed_unix")?)?,
            fence,
        })
    }
}

/// This machine's hostname, as recorded in claim files: read once from
/// `/proc/sys/kernel/hostname` (Linux) or the `HOSTNAME` environment
/// variable, falling back to `"unknown-host"`.
pub fn local_host() -> &'static str {
    static HOST: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    HOST.get_or_init(|| {
        fs::read_to_string("/proc/sys/kernel/hostname")
            .ok()
            .map(|name| name.trim().to_string())
            .filter(|name| !name.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok().filter(|h| !h.is_empty()))
            .unwrap_or_else(|| "unknown-host".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_moo::{CheckpointIndividual, EarlyStop, Evaluation, GaConfig, GenerationStats, Sense};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A flow-configuration stand-in for the generic manifest parameter.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct FakeFlowConfig {
        threads: usize,
        sigma_level: f64,
        label: String,
    }

    fn fake_flow() -> FakeFlowConfig {
        FakeFlowConfig {
            threads: 4,
            sigma_level: 3.0,
            label: "reduced \"scale\"".to_string(),
        }
    }

    fn optimizer() -> OptimizerConfig {
        OptimizerConfig::Wbga(
            GaConfig::small_test().with_early_stop(EarlyStop::after_stalled_generations(5)),
        )
    }

    fn temp_store() -> (PathBuf, Store) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "ayb-store-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    fn sample_checkpoint(generation: usize) -> Checkpoint {
        Checkpoint {
            optimizer: "wbga".to_string(),
            next_generation: generation,
            rng_state: [9, 8, 7, 6],
            population: vec![CheckpointIndividual {
                parameters: vec![0.5, 0.25],
                weight_genes: vec![0.3, 0.7],
                objectives: Some(vec![1.25, 2.5]),
            }],
            archive: vec![Evaluation::new(vec![0.5, 0.25], vec![1.25, 2.5])],
            history: vec![GenerationStats {
                generation: 0,
                best_fitness: 1.0,
                mean_fitness: 0.5,
                feasible: 1,
            }],
            evaluations: 2,
            failed_evaluations: 1,
            stall_generations: 0,
            senses: vec![Sense::Maximize, Sense::Maximize],
        }
    }

    #[test]
    fn manifest_extras_are_atomic_and_survive_every_rewrite() {
        let (root, store) = temp_store();
        let extras = vec![
            ("tenant".to_string(), Value::Str("acme".to_string())),
            ("submission_digest".to_string(), Value::Str("abc".into())),
            // Core keys may not be shadowed; this one must be dropped.
            ("status".to_string(), Value::Str("completed".into())),
        ];
        let handle = store
            .enqueue_run_with_extras(7, &optimizer(), &fake_flow(), &extras)
            .unwrap();
        assert_eq!(handle.status().unwrap(), RunStatus::Queued);
        assert_eq!(
            handle.manifest_extra("tenant").unwrap(),
            Some(Value::Str("acme".into()))
        );
        assert_eq!(handle.manifest_extra("absent").unwrap(), None);

        // The typed manifest still parses (extras are invisible to it).
        let manifest: Manifest<FakeFlowConfig> = handle.manifest().unwrap();
        assert_eq!(manifest.seed, 7);
        assert_eq!(manifest.flow, fake_flow());

        // A status flip preserves the extras...
        handle.set_status(RunStatus::Running).unwrap();
        assert_eq!(
            handle.manifest_extra("tenant").unwrap(),
            Some(Value::Str("acme".into()))
        );
        // ...and merges upsert without disturbing core fields.
        handle
            .merge_manifest_extras(&[
                ("dedup_hits".to_string(), 3u64.to_value()),
                ("tenant".to_string(), Value::Str("acme-2".into())),
                ("seed".to_string(), 999u64.to_value()),
            ])
            .unwrap();
        assert_eq!(
            handle.manifest_extra("dedup_hits").unwrap(),
            Some(3u64.to_value())
        );
        assert_eq!(
            handle.manifest_extra("tenant").unwrap(),
            Some(Value::Str("acme-2".into()))
        );
        let manifest: Manifest<FakeFlowConfig> = handle.manifest().unwrap();
        assert_eq!(manifest.seed, 7, "core keys are never shadowed");
        assert_eq!(manifest.status, RunStatus::Running);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn create_load_and_list_runs() {
        let (root, store) = temp_store();
        let a = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        let b = store.create_run(8, &optimizer(), &fake_flow()).unwrap();
        assert_eq!(a.id(), "run-0001");
        assert_eq!(b.id(), "run-0002");
        assert_eq!(store.run_ids().unwrap(), vec!["run-0001", "run-0002"]);

        let manifest: Manifest<FakeFlowConfig> = store.run("run-0002").unwrap().manifest().unwrap();
        assert_eq!(manifest.run_id, "run-0002");
        assert_eq!(manifest.seed, 8);
        assert_eq!(manifest.status, RunStatus::Running);
        assert_eq!(manifest.optimizer, optimizer());
        assert_eq!(manifest.flow, fake_flow());
        assert!(manifest.created_unix > 0);

        assert!(matches!(
            store.run("run-0003"),
            Err(StoreError::RunNotFound(_))
        ));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn explicit_ids_are_validated_and_unique() {
        let (root, store) = temp_store();
        let run = store
            .create_run_with_id("nightly_a.1", 1, &optimizer(), &fake_flow())
            .unwrap();
        assert_eq!(run.id(), "nightly_a.1");
        assert!(matches!(
            store.create_run_with_id("nightly_a.1", 1, &optimizer(), &fake_flow()),
            Err(StoreError::RunExists(_))
        ));
        for bad in ["", "../escape", "a/b", ".hidden", "x".repeat(65).as_str()] {
            assert!(
                matches!(
                    store.create_run_with_id(bad, 1, &optimizer(), &fake_flow()),
                    Err(StoreError::InvalidRunId(_))
                ),
                "id {bad:?} should be rejected"
            );
        }
        // Sequential allocation is not confused by foreign ids.
        let next = store.create_run(2, &optimizer(), &fake_flow()).unwrap();
        assert_eq!(next.id(), "run-0001");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn status_updates_preserve_the_rest_of_the_manifest() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        run.set_status(RunStatus::Interrupted).unwrap();
        assert_eq!(run.status().unwrap(), RunStatus::Interrupted);
        run.set_status(RunStatus::Completed).unwrap();

        let manifest: Manifest<FakeFlowConfig> = run.manifest().unwrap();
        assert_eq!(manifest.status, RunStatus::Completed);
        assert_eq!(manifest.seed, 7);
        assert_eq!(manifest.flow, fake_flow());
        assert!(manifest.updated_unix >= manifest.created_unix);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn checkpoints_roundtrip_and_latest_wins() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        assert!(run.latest_checkpoint().unwrap().is_none());

        for generation in [1usize, 2, 3, 10] {
            let path = run.save_checkpoint(&sample_checkpoint(generation)).unwrap();
            assert!(path.ends_with(format!("gen_{generation:04}.json")));
        }
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1, 2, 3, 10]);
        assert_eq!(
            run.load_checkpoint(2).unwrap(),
            sample_checkpoint(2),
            "checkpoints survive the JSON round-trip bit-for-bit"
        );
        assert_eq!(
            run.latest_checkpoint().unwrap(),
            Some(sample_checkpoint(10))
        );

        // A stale temp file from a killed writer is ignored.
        fs::write(run.dir().join("checkpoints/gen_0011.json.tmp"), "{").unwrap();
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1, 2, 3, 10]);
        assert_eq!(
            run.latest_checkpoint().unwrap(),
            Some(sample_checkpoint(10))
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn results_roundtrip_and_absence_is_reported() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        assert!(!run.has_result());
        assert!(matches!(
            run.load_result::<FakeFlowConfig>(),
            Err(StoreError::NoResult(_))
        ));

        let result = vec![fake_flow(), fake_flow()];
        run.save_result(&result).unwrap();
        assert!(run.has_result());
        let loaded: Vec<FakeFlowConfig> = run.load_result().unwrap();
        assert_eq!(loaded, result);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn run_ids_sort_numerically_past_four_digits() {
        let (root, store) = temp_store();
        for id in ["run-10000", "run-9999", "run-0002", "custom-b", "custom-a"] {
            store
                .create_run_with_id(id, 1, &optimizer(), &fake_flow())
                .unwrap();
        }
        // Numeric suffixes order numerically (the lexicographic order would
        // put run-10000 first); non-numeric ids keep string order.
        assert_eq!(
            store.run_ids().unwrap(),
            vec!["custom-a", "custom-b", "run-0002", "run-9999", "run-10000"]
        );
        // The next sequential id continues past the numeric maximum.
        assert_eq!(store.next_run_id().unwrap(), "run-10001");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn concurrent_create_run_never_collides() {
        let (root, store) = temp_store();
        let created: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = store.clone();
                    scope.spawn(move || {
                        (0..4)
                            .map(|_| {
                                store
                                    .create_run(7, &optimizer(), &fake_flow())
                                    .expect("concurrent create_run retries id races")
                                    .id()
                                    .to_string()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut unique = created.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), created.len(), "every creator got its own id");
        assert_eq!(store.run_ids().unwrap().len(), 32);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn claims_are_exclusive_and_released() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        assert_eq!(run.claim().unwrap(), None);

        let claim = run.try_claim("worker-1").unwrap();
        assert_eq!(claim.owner, "worker-1");
        assert_eq!(claim.pid, std::process::id());
        assert!(claim.holder_alive(), "our own claim is alive");
        assert_eq!(run.claim().unwrap(), Some(claim));

        let second = run.try_claim("worker-2");
        assert!(
            matches!(
                &second,
                Err(StoreError::RunClaimed { run_id, owner })
                    if run_id == run.id() && owner == "worker-1"
            ),
            "double claim must fail, got {second:?}"
        );

        assert!(run.release_claim().unwrap());
        assert!(!run.release_claim().unwrap(), "second release is a no-op");
        run.try_claim("worker-2").unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn concurrent_claims_have_exactly_one_winner() {
        let (root, store) = temp_store();
        store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        let wins: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|i| {
                    let store = store.clone();
                    scope.spawn(move || {
                        let run = store.run("run-0001").unwrap();
                        match run.try_claim(&format!("worker-{i}")) {
                            Ok(_) => 1usize,
                            Err(StoreError::RunClaimed { .. }) => 0,
                            Err(e) => panic!("unexpected claim error: {e}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1, "exactly one of 16 racing workers claims the run");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn break_claim_is_compare_and_delete() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();

        // Matching claim: broken.
        let stale = run.try_claim("dead-worker").unwrap();
        assert!(run.break_claim(&stale).unwrap());
        assert_eq!(run.claim().unwrap(), None);

        // Claim changed hands between the read and the break: the newer
        // claim survives and the break reports failure.
        let old = run.try_claim("worker-1").unwrap();
        run.release_claim().unwrap();
        let newer = run.try_claim("worker-2").unwrap();
        assert!(!run.break_claim(&old).unwrap());
        assert_eq!(run.claim().unwrap(), Some(newer.clone()));

        // No claim at all: nothing to break.
        run.release_claim().unwrap();
        assert!(!run.break_claim(&newer).unwrap());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_never_touches_fresh_claim_scratch_files() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        // A concurrent try_claim/break_claim mid-operation: even an
        // unconditional sweep must leave these alone (they get a one-minute
        // floor), or a live worker's claim would fail spuriously.
        let claim_tmp = run.dir().join(".claim-12345-0.tmp");
        let breaking = run.dir().join("claim.breaking-12345-0");
        fs::write(&claim_tmp, "{}").unwrap();
        fs::write(&breaking, "{}").unwrap();
        let removed = store.sweep_tmp_files(Duration::ZERO).unwrap();
        assert!(removed.is_empty(), "removed: {removed:?}");
        assert!(claim_tmp.is_file());
        assert!(breaking.is_file());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn stale_claims_from_dead_processes_are_detected() {
        let claim = ClaimInfo {
            owner: "dead-worker".to_string(),
            // No Linux pid can be u32::MAX (pid_max tops out at 2^22), so
            // this claimant is reliably "not running".
            pid: u32::MAX,
            host: local_host().to_string(),
            claimed_unix: now_unix(),
            fence: 1,
        };
        assert!(claim.same_host());
        #[cfg(target_os = "linux")]
        assert!(!claim.holder_alive());
        let own = ClaimInfo::for_this_process("me");
        assert_eq!(own.pid, std::process::id());
        assert!(own.holder_alive());
        // A claim from another host cannot be probed by pid: conservatively
        // alive, judged by heartbeat age instead.
        let foreign = ClaimInfo {
            host: "some-other-host".to_string(),
            ..claim.clone()
        };
        assert!(!foreign.same_host());
        assert!(foreign.holder_alive());
        assert_eq!(
            foreign.health(Duration::from_secs(1), Duration::from_secs(30)),
            ClaimHealth::Alive
        );
        assert_eq!(
            foreign.health(Duration::from_secs(60), Duration::from_secs(30)),
            ClaimHealth::Dead
        );
        #[cfg(target_os = "linux")]
        assert_eq!(
            claim.health(Duration::ZERO, Duration::from_secs(30)),
            ClaimHealth::Dead,
            "a dead pid on this host is dead however fresh the file looks"
        );
        assert_eq!(
            own.health(Duration::from_secs(60), Duration::from_secs(30)),
            ClaimHealth::Hung,
            "an alive pid that stopped heartbeating is hung, not dead"
        );
    }

    #[test]
    fn claim_heartbeat_refreshes_mtime_and_recovery_respects_it() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        run.try_claim("heartbeating-worker").unwrap();

        // Age the claim file artificially, then let the heartbeat refresh it.
        let claim_path = run.dir().join(CLAIM_FILE);
        let past = SystemTime::now() - Duration::from_secs(600);
        fs::OpenOptions::new()
            .append(true)
            .open(&claim_path)
            .unwrap()
            .set_modified(past)
            .unwrap();
        assert!(run.claim_heartbeat_age().unwrap() > Duration::from_secs(500));
        // Slow-but-alive holders look hung once their heartbeat lapses...
        let (_, health) = run.claim_health(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(health, ClaimHealth::Hung);
        // ...but a hung same-host holder with a live pid is never *stolen*.
        assert_eq!(run.stale_claim(Duration::from_secs(30)).unwrap(), None);

        let heartbeat = run.start_claim_heartbeat(Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            run.claim_heartbeat_age().unwrap() < Duration::from_secs(10),
            "heartbeat thread refreshed the claim mtime"
        );
        let (_, health) = run.claim_health(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(health, ClaimHealth::Alive);
        drop(heartbeat);

        // A foreign-host claim is judged purely by heartbeat age.
        run.release_claim().unwrap();
        let foreign = ClaimInfo {
            owner: "remote".to_string(),
            pid: 1,
            host: "another-host".to_string(),
            claimed_unix: now_unix(),
            fence: 1,
        };
        write_json(&claim_path, &foreign).unwrap();
        assert_eq!(
            run.stale_claim(Duration::from_secs(3600)).unwrap(),
            None,
            "fresh foreign claim is presumed alive"
        );
        fs::OpenOptions::new()
            .append(true)
            .open(&claim_path)
            .unwrap()
            .set_modified(past)
            .unwrap();
        assert_eq!(
            run.stale_claim(Duration::from_secs(30)).unwrap(),
            Some(foreign),
            "stale foreign claim is recoverable"
        );

        // An unclaimed run has no heartbeat and no health.
        run.release_claim().unwrap();
        assert_eq!(run.claim_heartbeat_age(), None);
        assert_eq!(run.claim_health(Duration::from_secs(30)).unwrap(), None);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn enqueued_runs_scan_in_fifo_order() {
        let (root, store) = temp_store();
        let a = store.enqueue_run(1, &optimizer(), &fake_flow()).unwrap();
        let b = store.enqueue_run(2, &optimizer(), &fake_flow()).unwrap();
        store
            .enqueue_run_with_id("priority-job", 3, &optimizer(), &fake_flow())
            .unwrap();
        let running = store.create_run(4, &optimizer(), &fake_flow()).unwrap();

        assert_eq!(a.status().unwrap(), RunStatus::Queued);
        assert_eq!(running.status().unwrap(), RunStatus::Running);

        // All queued runs, none of the running one; FIFO by creation time
        // with id order breaking same-second ties.
        let queued = store.queued_run_ids().unwrap();
        assert_eq!(queued.len(), 3);
        assert!(queued.contains(&"priority-job".to_string()));
        let a_pos = queued.iter().position(|id| id == a.id()).unwrap();
        let b_pos = queued.iter().position(|id| id == b.id()).unwrap();
        assert!(a_pos < b_pos, "run-0001 queues ahead of run-0002");

        // Claiming or completing removes a run from the queue scan.
        b.set_status(RunStatus::Running).unwrap();
        assert!(!store
            .queued_run_ids()
            .unwrap()
            .contains(&b.id().to_string()));

        // A torn creation (directory without manifest) is skipped.
        fs::create_dir(store.root().join("runs/torn")).unwrap();
        assert_eq!(store.queued_run_ids().unwrap().len(), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_removes_stale_tmp_files_but_respects_min_age() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        run.save_checkpoint(&sample_checkpoint(1)).unwrap();
        // Torn writes from killed writers: partial JSON in both locations.
        let torn_manifest = run.dir().join("manifest.json.tmp");
        let torn_checkpoint = run.dir().join("checkpoints/gen_0002.json.tmp");
        fs::write(&torn_manifest, "{\"partial").unwrap();
        fs::write(&torn_checkpoint, "{").unwrap();

        // Readers ignore the torn files...
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1]);
        assert_eq!(run.status().unwrap(), RunStatus::Running);

        // ...a min_age larger than their age leaves them alone...
        assert!(store
            .sweep_tmp_files(Duration::from_secs(3600))
            .unwrap()
            .is_empty());
        assert!(torn_manifest.is_file());

        // ...and an unconditional sweep removes exactly them.
        let mut removed = store.sweep_tmp_files(Duration::ZERO).unwrap();
        removed.sort();
        assert_eq!(removed, {
            let mut expected = vec![torn_manifest.clone(), torn_checkpoint.clone()];
            expected.sort();
            expected
        });
        assert!(!torn_manifest.exists());
        assert!(!torn_checkpoint.exists());
        assert_eq!(run.checkpoint_generations().unwrap(), vec![1]);
        assert!(run.dir().join("manifest.json").is_file());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn prune_checkpoints_keeps_the_newest_k() {
        let (root, store) = temp_store();
        let run = store.create_run(7, &optimizer(), &fake_flow()).unwrap();
        for generation in 1..=5 {
            run.save_checkpoint(&sample_checkpoint(generation)).unwrap();
        }
        assert_eq!(run.prune_checkpoints(2).unwrap(), vec![1, 2, 3]);
        assert_eq!(run.checkpoint_generations().unwrap(), vec![4, 5]);
        // The latest checkpoint — the only one resume needs — survives.
        assert_eq!(run.latest_checkpoint().unwrap(), Some(sample_checkpoint(5)));
        // Pruning with a larger budget than stored checkpoints is a no-op.
        assert!(run.prune_checkpoints(10).unwrap().is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn errors_display_their_context() {
        let e = StoreError::RunNotFound("run-0042".into());
        assert!(e.to_string().contains("run-0042"));
        let e = StoreError::InvalidRunId("../x".into());
        assert!(e.to_string().contains("../x"));
        let e = StoreError::RunClaimed {
            run_id: "run-0007".into(),
            owner: "worker-3".into(),
        };
        assert!(e.to_string().contains("run-0007") && e.to_string().contains("worker-3"));
        let (root, store) = temp_store();
        let run = store.create_run(1, &optimizer(), &fake_flow()).unwrap();
        fs::write(run.dir().join(MANIFEST_FILE), "not json").unwrap();
        assert!(matches!(run.status(), Err(StoreError::Json { .. })));
        let _ = fs::remove_dir_all(root);
    }
}
