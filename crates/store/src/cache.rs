//! A persistent, content-addressed **result cache**.
//!
//! The service plane's in-memory dedup index collapses *live* duplicate
//! submissions; this module makes the same content address durable. Once a
//! run completes, its submission digest maps to the finished result forever
//! (until an operator runs `ayb cache gc`): a byte-identical resubmission —
//! after a restart, after the dedup entry dropped, even after the run
//! directory itself was pruned — is answered from here without executing
//! anything.
//!
//! ## Layout
//!
//! ```text
//! <root>/cache/
//!     digest_index.json        # the index: digest → run id, insert time, hits
//!     digest_index.lock        # writer mutual exclusion (create_new + retry)
//!     results/<digest>.json    # content-addressed copy of the run's result
//! ```
//!
//! The index entry *points at* the completed run (`runs/<id>/result.json`),
//! and insertion also copies the result into `results/<digest>.json` — the
//! content-addressed blob is what lets a cache hit outlive store GC of the
//! run directory. [`ResultCache::load_result`] prefers the blob and falls
//! back to the run's own `result.json` when the blob is missing (e.g. an
//! operator deleted it to force re-execution).
//!
//! ## Atomicity
//!
//! Readers never take a lock: `digest_index.json` is always replaced by an
//! atomic rename, so any read observes a complete, consistent snapshot.
//! Writers serialise through `digest_index.lock` (created with
//! `create_new`, retried briefly, and broken when older than
//! [`LOCK_STALE_AFTER`] so a crashed writer cannot wedge the cache). The
//! result blob is fully written *before* the index entry appears, so an
//! indexed digest always has a readable result.

use crate::{io_error, now_unix, read_json, write_json, Store, StoreError};
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Index file name under `<root>/cache/`.
const INDEX_FILE: &str = "digest_index.json";
/// Writer lock file name under `<root>/cache/`.
const LOCK_FILE: &str = "digest_index.lock";
/// Directory of content-addressed result blobs under `<root>/cache/`.
const RESULTS_DIR: &str = "results";
/// Attempts to acquire the writer lock before giving up.
const LOCK_ATTEMPTS: usize = 150;
/// Delay between lock attempts.
const LOCK_RETRY: Duration = Duration::from_millis(10);
/// A lock file older than this belongs to a crashed writer and is broken.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(30);
/// On-disk index schema version (bumped on incompatible layout changes).
const SCHEMA_VERSION: u64 = 1;

/// One index entry: a completed submission digest and where its result is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The submission digest, as the fixed-width hex the manifests use.
    pub digest: String,
    /// The completed run whose result this entry points at.
    pub run_id: String,
    /// Insertion time, seconds since the Unix epoch.
    pub inserted_unix: u64,
    /// Times this entry answered a resubmission.
    pub hits: u64,
}

/// The serialized form of `digest_index.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheIndex {
    /// Layout version of this file.
    schema_version: u64,
    /// All entries, in insertion order.
    entries: Vec<CacheEntry>,
}

impl CacheIndex {
    fn empty() -> CacheIndex {
        CacheIndex {
            schema_version: SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }
}

/// What [`ResultCache::gc`] removed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheGcReport {
    /// Index entries dropped (aged out or pointing at nothing readable).
    pub entries_removed: usize,
    /// Index entries still live after the sweep.
    pub entries_kept: usize,
    /// Result blobs deleted (orphaned or belonging to removed entries).
    pub blobs_removed: usize,
}

/// A handle on a store's persistent digest → result cache.
///
/// Cloneable and cheap; all state lives on disk under `<root>/cache/`.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    runs_dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if necessary) the cache of `store`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the cache directories cannot be
    /// created.
    pub fn open(store: &Store) -> Result<ResultCache, StoreError> {
        let dir = store.root().join("cache");
        let results = dir.join(RESULTS_DIR);
        fs::create_dir_all(&results).map_err(|e| io_error(&results, e))?;
        Ok(ResultCache {
            dir,
            runs_dir: store.root().join("runs"),
        })
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    fn blob_path(&self, digest: &str) -> PathBuf {
        self.dir.join(RESULTS_DIR).join(format!("{digest}.json"))
    }

    /// Reads the current index snapshot (no lock — the index is only ever
    /// replaced atomically). A missing file is an empty cache.
    fn read_index(&self) -> Result<CacheIndex, StoreError> {
        let path = self.index_path();
        if !path.exists() {
            return Ok(CacheIndex::empty());
        }
        read_json(&path)
    }

    /// Runs `mutate` on the index under the writer lock and publishes the
    /// result atomically.
    fn update_index<R>(&self, mutate: impl FnOnce(&mut CacheIndex) -> R) -> Result<R, StoreError> {
        let _lock = IndexLock::acquire(self.dir.join(LOCK_FILE))?;
        let mut index = self.read_index()?;
        let outcome = mutate(&mut index);
        write_json(&self.index_path(), &index)?;
        Ok(outcome)
    }

    /// Whether `digest` looks like a manifest digest (16 hex chars) — the
    /// guard that keeps blob paths inside `results/`.
    fn valid_digest(digest: &str) -> bool {
        digest.len() == 16 && digest.chars().all(|c| c.is_ascii_hexdigit())
    }

    /// Records `digest` → the completed run `run_id`, copying `result` into
    /// the content-addressed blob. Re-inserting an existing digest updates
    /// the pointer but keeps the hit count.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Json`] for an invalid digest and IO/lock
    /// failures otherwise.
    pub fn insert<T: Serialize + ?Sized>(
        &self,
        digest: &str,
        run_id: &str,
        result: &T,
    ) -> Result<(), StoreError> {
        if !Self::valid_digest(digest) {
            return Err(StoreError::Json {
                path: self.index_path(),
                message: format!("invalid cache digest `{digest}`"),
            });
        }
        // Blob first, index second: an indexed digest always has a result.
        write_json(&self.blob_path(digest), result)?;
        let digest = digest.to_string();
        let run_id = run_id.to_string();
        self.update_index(move |index| {
            if let Some(entry) = index.entries.iter_mut().find(|e| e.digest == digest) {
                entry.run_id = run_id;
                entry.inserted_unix = now_unix();
            } else {
                index.entries.push(CacheEntry {
                    digest,
                    run_id,
                    inserted_unix: now_unix(),
                    hits: 0,
                });
            }
        })
    }

    /// Looks up `digest`, returning its entry when present.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the index
    /// cannot be read.
    pub fn lookup(&self, digest: &str) -> Result<Option<CacheEntry>, StoreError> {
        Ok(self
            .read_index()?
            .entries
            .into_iter()
            .find(|e| e.digest == digest))
    }

    /// All entries, in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the index
    /// cannot be read.
    pub fn entries(&self) -> Result<Vec<CacheEntry>, StoreError> {
        Ok(self.read_index()?.entries)
    }

    /// The entry (if any) whose result came from `run_id`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the index
    /// cannot be read.
    pub fn find_by_run(&self, run_id: &str) -> Result<Option<CacheEntry>, StoreError> {
        Ok(self
            .read_index()?
            .entries
            .into_iter()
            .find(|e| e.run_id == run_id))
    }

    /// Bumps the hit counter of `digest` (a no-op for unknown digests).
    ///
    /// # Errors
    ///
    /// Returns lock/IO errors from the index update.
    pub fn record_hit(&self, digest: &str) -> Result<(), StoreError> {
        let digest = digest.to_string();
        self.update_index(move |index| {
            if let Some(entry) = index.entries.iter_mut().find(|e| e.digest == digest) {
                entry.hits += 1;
            }
        })
    }

    /// Loads the cached result of `digest`: the content-addressed blob when
    /// present, else the pointed-at run's own `result.json`. `None` when the
    /// digest is not in the index or neither file is readable (a stale
    /// entry — `gc` removes those).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`]/[`StoreError::Json`] when the index
    /// cannot be read.
    pub fn load_result(&self, digest: &str) -> Result<Option<Value>, StoreError> {
        let Some(entry) = self.lookup(digest)? else {
            return Ok(None);
        };
        let blob = self.blob_path(&entry.digest);
        if let Ok(value) = read_json::<Value>(&blob) {
            return Ok(Some(value));
        }
        let run_result = self.runs_dir.join(&entry.run_id).join(crate::RESULT_FILE);
        Ok(read_json::<Value>(&run_result).ok())
    }

    /// Removes `digest` from the index and deletes its blob. Returns whether
    /// an entry existed.
    ///
    /// # Errors
    ///
    /// Returns lock/IO errors from the index update.
    pub fn remove(&self, digest: &str) -> Result<bool, StoreError> {
        let owned = digest.to_string();
        let removed = self.update_index(move |index| {
            let before = index.entries.len();
            index.entries.retain(|e| e.digest != owned);
            index.entries.len() != before
        })?;
        if removed {
            let _ = fs::remove_file(self.blob_path(digest));
        }
        Ok(removed)
    }

    /// Sweeps the cache: drops entries older than `max_age` (when given),
    /// drops entries whose result is readable from *neither* the blob nor
    /// the run directory, and deletes orphaned blobs no entry points at.
    ///
    /// # Errors
    ///
    /// Returns lock/IO errors from the index update; blob deletions are
    /// best-effort.
    pub fn gc(&self, max_age: Option<Duration>) -> Result<CacheGcReport, StoreError> {
        let now = now_unix();
        let dir = self.clone();
        let mut report = CacheGcReport::default();
        let removed_digests = self.update_index(|index| {
            let mut removed = Vec::new();
            index.entries.retain(|entry| {
                let aged_out = max_age
                    .is_some_and(|age| now.saturating_sub(entry.inserted_unix) > age.as_secs());
                let readable = dir.blob_path(&entry.digest).exists()
                    || dir
                        .runs_dir
                        .join(&entry.run_id)
                        .join(crate::RESULT_FILE)
                        .exists();
                let keep = !aged_out && readable;
                if !keep {
                    removed.push(entry.digest.clone());
                }
                keep
            });
            report.entries_kept = index.entries.len();
            removed
        })?;
        report.entries_removed = removed_digests.len();
        for digest in &removed_digests {
            if fs::remove_file(self.blob_path(digest)).is_ok() {
                report.blobs_removed += 1;
            }
        }
        // Orphan blobs: results/<digest>.json with no index entry.
        let live: Vec<String> = self
            .read_index()?
            .entries
            .iter()
            .map(|e| format!("{}.json", e.digest))
            .collect();
        let results = self.dir.join(RESULTS_DIR);
        if let Ok(dir_entries) = fs::read_dir(&results) {
            for entry in dir_entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".json")
                    && !live.iter().any(|l| l == name)
                    && fs::remove_file(entry.path()).is_ok()
                {
                    report.blobs_removed += 1;
                }
            }
        }
        Ok(report)
    }
}

/// The held writer lock: a `create_new` file removed on drop.
struct IndexLock {
    path: PathBuf,
}

impl IndexLock {
    fn acquire(path: PathBuf) -> Result<IndexLock, StoreError> {
        for _ in 0..LOCK_ATTEMPTS {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(IndexLock { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Break locks abandoned by a crashed writer.
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    std::thread::sleep(LOCK_RETRY);
                }
                Err(e) => return Err(io_error(&path, e)),
            }
        }
        Err(StoreError::Io {
            path,
            message: "cache index lock held too long".to_string(),
        })
    }
}

impl Drop for IndexLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn temp_store(label: &str) -> (PathBuf, Store) {
        let root = std::env::temp_dir().join(format!(
            "ayb-cache-{label}-{}-{}",
            std::process::id(),
            now_unix()
        ));
        let store = Store::open(&root).expect("store opens");
        (root, store)
    }

    fn cleanup(root: &Path) {
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn insert_lookup_and_hits_round_trip() {
        let (root, store) = temp_store("roundtrip");
        let cache = ResultCache::open(&store).unwrap();
        let digest = "00deadbeef001234";
        assert!(cache.lookup(digest).unwrap().is_none());

        cache
            .insert(digest, "run-0001", &Value::Str("payload".to_string()))
            .unwrap();
        let entry = cache.lookup(digest).unwrap().expect("entry present");
        assert_eq!(entry.run_id, "run-0001");
        assert_eq!(entry.hits, 0);

        cache.record_hit(digest).unwrap();
        cache.record_hit(digest).unwrap();
        assert_eq!(cache.lookup(digest).unwrap().unwrap().hits, 2);
        assert_eq!(
            cache.load_result(digest).unwrap(),
            Some(Value::Str("payload".to_string()))
        );
        assert_eq!(
            cache.find_by_run("run-0001").unwrap().unwrap().digest,
            digest
        );
        cleanup(&root);
    }

    #[test]
    fn results_survive_reopen_and_run_dir_removal() {
        let (root, store) = temp_store("survive");
        let digest = "aaaabbbbccccdddd";
        {
            let cache = ResultCache::open(&store).unwrap();
            cache.insert(digest, "run-gone", &42u64.to_value()).unwrap();
        }
        // A fresh handle (fresh process, conceptually) still sees the entry,
        // and the result loads even though `runs/run-gone` never existed.
        let cache = ResultCache::open(&store).unwrap();
        assert!(cache.lookup(digest).unwrap().is_some());
        let expected: Value = serde_json::from_str("42").unwrap();
        assert_eq!(cache.load_result(digest).unwrap(), Some(expected));
        cleanup(&root);
    }

    #[test]
    fn invalid_digests_are_rejected() {
        let (root, store) = temp_store("invalid");
        let cache = ResultCache::open(&store).unwrap();
        for bad in ["", "short", "../../etc/passwd", "zzzzzzzzzzzzzzzz"] {
            assert!(cache.insert(bad, "run-0001", &1u64.to_value()).is_err());
        }
        cleanup(&root);
    }

    #[test]
    fn gc_drops_aged_and_unreadable_entries_and_orphan_blobs() {
        let (root, store) = temp_store("gc");
        let cache = ResultCache::open(&store).unwrap();
        cache
            .insert("1111111111111111", "run-0001", &1u64.to_value())
            .unwrap();
        cache
            .insert("2222222222222222", "run-0002", &2u64.to_value())
            .unwrap();
        // Entry 2's blob vanishes and its run never existed → unreadable.
        fs::remove_file(cache.blob_path("2222222222222222")).unwrap();
        // An orphan blob no entry points at.
        fs::write(root.join("cache/results/3333333333333333.json"), "3").unwrap();

        let report = cache.gc(None).unwrap();
        assert_eq!(report.entries_kept, 1);
        assert_eq!(report.entries_removed, 1);
        assert_eq!(report.blobs_removed, 1); // the orphan
        assert!(cache.lookup("1111111111111111").unwrap().is_some());
        assert!(cache.lookup("2222222222222222").unwrap().is_none());

        // Age-based sweep: everything is "older" than a zero max-age once
        // a second has passed; force it by back-dating the entry.
        cache
            .update_index(|index| {
                for e in &mut index.entries {
                    e.inserted_unix = e.inserted_unix.saturating_sub(3600);
                }
            })
            .unwrap();
        let report = cache.gc(Some(Duration::from_secs(60))).unwrap();
        assert_eq!(report.entries_removed, 1);
        assert_eq!(report.entries_kept, 0);
        cleanup(&root);
    }

    #[test]
    fn a_stale_lock_is_broken_instead_of_wedging_writers() {
        let (root, store) = temp_store("stalelock");
        let cache = ResultCache::open(&store).unwrap();
        let lock = root.join("cache").join(LOCK_FILE);
        fs::write(&lock, "crashed writer").unwrap();
        // Back-date the lock so it reads as stale immediately.
        let old = std::time::SystemTime::now() - Duration::from_secs(120);
        let file = fs::OpenOptions::new().write(true).open(&lock).unwrap();
        file.set_modified(old).unwrap();
        drop(file);
        cache
            .insert("4444444444444444", "run-0004", &4u64.to_value())
            .unwrap();
        assert!(cache.lookup("4444444444444444").unwrap().is_some());
        cleanup(&root);
    }
}
