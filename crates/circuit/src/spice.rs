//! SPICE-like netlist text output and a small parser.
//!
//! The paper's flow starts from "a transistor level netlist for the chosen
//! circuit topology" (§3.1). This module provides a human-readable text form
//! of a [`Circuit`] so generated candidates can be inspected, archived and
//! re-imported, mirroring the data files that the original flow passed to
//! Spectre.
//!
//! The format is deliberately a small, line-oriented subset of SPICE:
//!
//! ```text
//! * title line
//! .model nmos nmos vto=0.5 kp=1.7e-4 lambda=0.06 gamma=0.58 phi=0.84 cox=4.54e-3
//! m1 d g s b nmos w=10u l=1u
//! r1 a b 1k
//! c1 out 0 5p
//! v1 in 0 dc 1.5 ac 1
//! i1 vdd nb dc 20u
//! g1 out 0 inp inn 1m
//! e1 out 0 inp inn 10
//! .end
//! ```

use crate::device::{AcSpec, Device, Mosfet};
use crate::error::{CircuitError, Result};
use crate::model::{MosfetModelCard, MosfetPolarity};
use crate::netlist::Circuit;
use std::fmt::Write as _;

/// Formats an engineering value using SPICE suffixes where convenient.
fn format_value(value: f64) -> String {
    let abs = value.abs();
    if abs == 0.0 {
        return "0".to_string();
    }
    let (scaled, suffix) = if abs >= 1e6 {
        (value / 1e6, "meg")
    } else if abs >= 1e3 {
        (value / 1e3, "k")
    } else if abs >= 1.0 {
        (value, "")
    } else if abs >= 1e-3 {
        (value * 1e3, "m")
    } else if abs >= 1e-6 {
        (value * 1e6, "u")
    } else if abs >= 1e-9 {
        (value * 1e9, "n")
    } else if abs >= 1e-12 {
        (value * 1e12, "p")
    } else {
        (value * 1e15, "f")
    };
    let mut s = format!("{scaled:.6}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    format!("{s}{suffix}")
}

/// Parses a SPICE number with optional engineering suffix (`10u`, `1.5k`, `5p`, `2meg`).
fn parse_value(token: &str) -> Option<f64> {
    let lower = token.trim().to_ascii_lowercase();
    let (mult, digits) = if let Some(stripped) = lower.strip_suffix("meg") {
        (1e6, stripped)
    } else if let Some(stripped) = lower.strip_suffix('t') {
        (1e12, stripped)
    } else if let Some(stripped) = lower.strip_suffix('g') {
        (1e9, stripped)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (1e3, stripped)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (1e-3, stripped)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (1e-6, stripped)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (1e-9, stripped)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (1e-12, stripped)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (1e-15, stripped)
    } else {
        (1.0, lower.as_str())
    };
    digits.parse::<f64>().ok().map(|v| v * mult)
}

/// Writes a circuit as SPICE-like netlist text.
pub fn to_spice(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {}", circuit.name());
    for card in circuit.models().values() {
        let _ = writeln!(
            out,
            ".model {} {} vto={} kp={} lambda={} gamma={} phi={} cox={} cgdo={} cgso={} cj={} ld={}",
            card.name,
            card.polarity,
            card.vto,
            card.kp,
            card.lambda,
            card.gamma,
            card.phi,
            card.cox,
            card.cgdo,
            card.cgso,
            card.cj,
            card.ld
        );
    }
    let node = |id| circuit.node_name(id).to_string();
    for inst in circuit.instances() {
        let name = &inst.name;
        match &inst.device {
            Device::Resistor(r) => {
                let _ = writeln!(
                    out,
                    "r{name} {} {} {}",
                    node(r.plus),
                    node(r.minus),
                    format_value(r.resistance)
                );
            }
            Device::Capacitor(c) => {
                let _ = writeln!(
                    out,
                    "c{name} {} {} {}",
                    node(c.plus),
                    node(c.minus),
                    format_value(c.capacitance)
                );
            }
            Device::VoltageSource(v) => {
                let mut line = format!("v{name} {} {} dc {}", node(v.plus), node(v.minus), v.dc);
                if v.ac.magnitude != 0.0 {
                    let _ = write!(line, " ac {}", v.ac.magnitude);
                }
                let _ = writeln!(out, "{line}");
            }
            Device::CurrentSource(i) => {
                let mut line = format!(
                    "i{name} {} {} dc {}",
                    node(i.plus),
                    node(i.minus),
                    format_value(i.dc)
                );
                if i.ac.magnitude != 0.0 {
                    let _ = write!(line, " ac {}", i.ac.magnitude);
                }
                let _ = writeln!(out, "{line}");
            }
            Device::Vccs(g) => {
                let _ = writeln!(
                    out,
                    "g{name} {} {} {} {} {}",
                    node(g.out_plus),
                    node(g.out_minus),
                    node(g.ctrl_plus),
                    node(g.ctrl_minus),
                    format_value(g.gm)
                );
            }
            Device::Vcvs(e) => {
                let _ = writeln!(
                    out,
                    "e{name} {} {} {} {} {}",
                    node(e.out_plus),
                    node(e.out_minus),
                    node(e.ctrl_plus),
                    node(e.ctrl_minus),
                    e.gain
                );
            }
            Device::Mosfet(m) => {
                let _ = writeln!(
                    out,
                    "m{name} {} {} {} {} {} w={} l={} m={}",
                    node(m.drain),
                    node(m.gate),
                    node(m.source),
                    node(m.bulk),
                    m.model,
                    format_value(m.w),
                    format_value(m.l),
                    m.m
                );
            }
            Device::BehavioralOta(o) => {
                let _ = writeln!(
                    out,
                    "* behavioural ota {name}: gain={:.3} rout={} cout={}",
                    o.gain,
                    format_value(o.rout),
                    format_value(o.cout)
                );
                let _ = writeln!(
                    out,
                    "gota_{name} {} 0 {} {} {}",
                    node(o.out),
                    node(o.in_plus),
                    node(o.in_minus),
                    format_value(o.gm)
                );
                let _ = writeln!(
                    out,
                    "rota_{name} {} 0 {}",
                    node(o.out),
                    format_value(o.rout)
                );
                if o.cout > 0.0 {
                    let _ = writeln!(
                        out,
                        "cota_{name} {} 0 {}",
                        node(o.out),
                        format_value(o.cout)
                    );
                }
            }
        }
    }
    out.push_str(".end\n");
    out
}

fn parse_named(tokens: &[&str], key: &str) -> Option<f64> {
    tokens.iter().find_map(|t| {
        let (k, v) = t.split_once('=')?;
        if k.eq_ignore_ascii_case(key) {
            parse_value(v)
        } else {
            None
        }
    })
}

/// Parses a SPICE-like netlist produced by [`to_spice`] (plus hand-written
/// netlists using the same subset) back into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] describing the first offending line.
pub fn from_spice(text: &str) -> Result<Circuit> {
    let mut circuit = Circuit::new("imported");
    let mut pending_mosfets: Vec<(String, Mosfet)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            if line_no == 1 && line.starts_with('*') {
                circuit = Circuit::new(line.trim_start_matches('*').trim());
            }
            continue;
        }
        let lower = line.to_ascii_lowercase();
        let tokens: Vec<&str> = lower.split_whitespace().collect();
        let err = |reason: &str| CircuitError::Parse {
            line: line_no,
            reason: reason.to_string(),
        };
        if tokens[0] == ".end" {
            break;
        }
        if tokens[0] == ".model" {
            if tokens.len() < 3 {
                return Err(err("expected `.model <name> <nmos|pmos> key=value...`"));
            }
            let polarity = match tokens[2] {
                "nmos" => MosfetPolarity::Nmos,
                "pmos" => MosfetPolarity::Pmos,
                other => return Err(err(&format!("unknown model polarity `{other}`"))),
            };
            let base = match polarity {
                MosfetPolarity::Nmos => MosfetModelCard::nmos_035um(),
                MosfetPolarity::Pmos => MosfetModelCard::pmos_035um(),
            };
            let card = MosfetModelCard {
                name: tokens[1].to_string(),
                polarity,
                vto: parse_named(&tokens, "vto").unwrap_or(base.vto),
                kp: parse_named(&tokens, "kp").unwrap_or(base.kp),
                lambda: parse_named(&tokens, "lambda").unwrap_or(base.lambda),
                gamma: parse_named(&tokens, "gamma").unwrap_or(base.gamma),
                phi: parse_named(&tokens, "phi").unwrap_or(base.phi),
                cox: parse_named(&tokens, "cox").unwrap_or(base.cox),
                cgdo: parse_named(&tokens, "cgdo").unwrap_or(base.cgdo),
                cgso: parse_named(&tokens, "cgso").unwrap_or(base.cgso),
                cj: parse_named(&tokens, "cj").unwrap_or(base.cj),
                ld: parse_named(&tokens, "ld").unwrap_or(base.ld),
            };
            circuit.add_model(card);
            continue;
        }
        let kind = tokens[0].chars().next().unwrap_or(' ');
        // The full element token (including the type letter) is used as the
        // instance name so hand-written netlists like `v1` + `r1` do not collide.
        let name = tokens[0].to_string();
        match kind {
            'r' => {
                if tokens.len() < 4 {
                    return Err(err("resistor needs `r<name> n+ n- value`"));
                }
                let plus = circuit.node(tokens[1]);
                let minus = circuit.node(tokens[2]);
                let value = parse_value(tokens[3]).ok_or_else(|| err("bad resistance value"))?;
                circuit.add_resistor(name, plus, minus, value)?;
            }
            'c' => {
                if tokens.len() < 4 {
                    return Err(err("capacitor needs `c<name> n+ n- value`"));
                }
                let plus = circuit.node(tokens[1]);
                let minus = circuit.node(tokens[2]);
                let value = parse_value(tokens[3]).ok_or_else(|| err("bad capacitance value"))?;
                circuit.add_capacitor(name, plus, minus, value)?;
            }
            'v' | 'i' => {
                if tokens.len() < 3 {
                    return Err(err("source needs at least `x<name> n+ n-`"));
                }
                let plus = circuit.node(tokens[1]);
                let minus = circuit.node(tokens[2]);
                let mut dc = 0.0;
                let mut ac = AcSpec::none();
                let mut i = 3;
                while i < tokens.len() {
                    match tokens[i] {
                        "dc" if i + 1 < tokens.len() => {
                            dc = parse_value(tokens[i + 1]).ok_or_else(|| err("bad dc value"))?;
                            i += 2;
                        }
                        "ac" if i + 1 < tokens.len() => {
                            ac.magnitude =
                                parse_value(tokens[i + 1]).ok_or_else(|| err("bad ac value"))?;
                            i += 2;
                        }
                        other => {
                            // Bare value means DC.
                            dc = parse_value(other).ok_or_else(|| err("bad source value"))?;
                            i += 1;
                        }
                    }
                }
                if kind == 'v' {
                    circuit.add_vsource_ac(name, plus, minus, dc, ac)?;
                } else {
                    circuit.add_isource(name, plus, minus, dc)?;
                }
            }
            'g' | 'e' => {
                if tokens.len() < 6 {
                    return Err(err("controlled source needs 4 nodes and a value"));
                }
                let op = circuit.node(tokens[1]);
                let om = circuit.node(tokens[2]);
                let cp = circuit.node(tokens[3]);
                let cm = circuit.node(tokens[4]);
                let value =
                    parse_value(tokens[5]).ok_or_else(|| err("bad controlled-source value"))?;
                if kind == 'g' {
                    circuit.add_vccs(name, op, om, cp, cm, value)?;
                } else {
                    circuit.add_vcvs(name, op, om, cp, cm, value)?;
                }
            }
            'm' => {
                if tokens.len() < 6 {
                    return Err(err("mosfet needs `m<name> d g s b model w=.. l=..`"));
                }
                let d = circuit.node(tokens[1]);
                let g = circuit.node(tokens[2]);
                let s = circuit.node(tokens[3]);
                let b = circuit.node(tokens[4]);
                let model = tokens[5].to_string();
                let w = parse_named(&tokens, "w").ok_or_else(|| err("mosfet missing w="))?;
                let l = parse_named(&tokens, "l").ok_or_else(|| err("mosfet missing l="))?;
                let mut mosfet = Mosfet::new(d, g, s, b, model, w, l);
                if let Some(m) = parse_named(&tokens, "m") {
                    mosfet.m = m;
                }
                // Model cards may appear after instances; defer registration checks.
                pending_mosfets.push((name, mosfet));
            }
            other => {
                return Err(err(&format!("unsupported element type `{other}`")));
            }
        }
    }
    for (name, mosfet) in pending_mosfets {
        circuit.add_mosfet(name, mosfet)?;
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};

    #[test]
    fn format_and_parse_values_roundtrip() {
        for &v in &[1.0, 1e3, 4.7e-12, 20e-6, 2.2e6, 0.35e-6, 1e9] {
            let text = format_value(v);
            let back = parse_value(&text).unwrap();
            assert!((back - v).abs() / v < 1e-6, "{v} -> {text} -> {back}");
        }
        assert_eq!(parse_value("2meg"), Some(2e6));
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn ota_testbench_survives_spice_roundtrip() {
        let ckt = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
            .unwrap();
        let text = to_spice(&ckt);
        assert!(text.contains(".model nmos"));
        assert!(text.contains(".model pmos"));
        let back = from_spice(&text).unwrap();
        assert_eq!(back.mosfet_count(), ckt.mosfet_count());
        assert_eq!(back.stats().capacitors, ckt.stats().capacitors);
        assert_eq!(back.stats().vsources, ckt.stats().vsources);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "* test\nr1 a b 1k\nqq bogus line\n";
        let err = from_spice(text).unwrap_err();
        match err {
            CircuitError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_handles_dc_and_ac_specs() {
        let text = "* src\nv1 in 0 dc 1.5 ac 1\nr1 in 0 1k\n.end\n";
        let ckt = from_spice(text).unwrap();
        match &ckt.instance("v1").unwrap().device {
            Device::VoltageSource(v) => {
                assert!((v.dc - 1.5).abs() < 1e-12);
                assert!((v.ac.magnitude - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected voltage source"),
        }
    }

    #[test]
    fn mosfet_lines_can_precede_model_cards() {
        let text = "* order\nm1 d g 0 0 nmos w=10u l=1u\nv1 d 0 dc 1\nv2 g 0 dc 1\n.model nmos nmos vto=0.5\n.end\n";
        let ckt = from_spice(text).unwrap();
        assert_eq!(ckt.mosfet_count(), 1);
    }
}
