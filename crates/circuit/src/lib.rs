//! # ayb-circuit — analogue circuit and netlist representation
//!
//! This crate provides the structural substrate of the AYB (Analogue Yield
//! Behavioural modelling) workspace, which reproduces *"A New Approach for
//! Combining Yield and Performance in Behavioural Models for Analogue
//! Integrated Circuits"* (Ali et al., DATE 2008):
//!
//! * [`Circuit`] — a flat netlist of named device [`Instance`]s over interned
//!   nodes, with MOSFET [`MosfetModelCard`]s attached,
//! * [`Parameter`] / [`ParameterSet`] / [`DesignPoint`] — designable-parameter
//!   spaces with normalised `[0, 1]` coordinates used by the GA string,
//! * [`ota`] — the symmetrical OTA benchmark topology and its open-loop
//!   test bench (paper §4),
//! * [`filter`] — the 2nd-order gm-C low-pass filter application (paper §5),
//! * [`spice`] — SPICE-like netlist text output and parsing.
//!
//! # Examples
//!
//! Building the paper's OTA test bench and printing its netlist:
//!
//! ```
//! use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
//!
//! # fn main() -> Result<(), ayb_circuit::CircuitError> {
//! let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())?;
//! assert_eq!(tb.mosfet_count(), 10);
//! let netlist_text = ayb_circuit::spice::to_spice(&tb);
//! assert!(netlist_text.contains("mxota.m1"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod error;
pub mod filter;
pub mod model;
pub mod netlist;
pub mod node;
pub mod ota;
pub mod params;
pub mod spice;

pub use device::{
    AcSpec, BehavioralOta, Capacitor, CurrentSource, Device, Mosfet, Resistor, Vccs, Vcvs,
    VoltageSource,
};
pub use error::{CircuitError, Result};
pub use model::{MosfetModelCard, MosfetPolarity};
pub use netlist::{Circuit, CircuitStats, Instance};
pub use node::{NodeId, NodeTable};
pub use params::{DesignPoint, Parameter, ParameterSet, Scaling};
