//! Second-order gm-C low-pass filter topology (paper §5, Figure 9).
//!
//! The application example of the paper builds a 2nd-order low-pass
//! (anti-aliasing) filter out of the modelled OTA plus three capacitors
//! C1–C3. We use the standard two-integrator-loop gm-C biquad:
//!
//! * `ota_in`  : transconducts the input into the bandpass node `v1`,
//! * `ota_fb`  : feeds the low-pass output back into `v1` (sets ω₀ with C1/C2),
//! * `ota_int` : integrates `v1` onto the low-pass output node `v2`,
//! * `ota_q`   : damping transconductor at `v1` (sets Q),
//! * `C1` at `v1`, `C2` at `v2`, `C3` bridging `v1`–`v2` (an additional
//!   designable degree of freedom, as in the paper's three-capacitor sizing).
//!
//! Two construction paths are provided: one instantiating behavioural OTA
//! macromodels (the paper's hierarchical flow) and one expanding each OTA to
//! the full ten-transistor symmetrical OTA for verification.

use crate::device::AcSpec;
use crate::device::BehavioralOta;
use crate::error::Result;
use crate::netlist::Circuit;
use crate::ota::{add_symmetrical_ota, OtaParameters};
use crate::params::{DesignPoint, Parameter, ParameterSet};
use serde::{Deserialize, Serialize};

/// Capacitor sizing of the biquad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterParameters {
    /// Integrating capacitor at the bandpass node in farads.
    pub c1: f64,
    /// Integrating capacitor at the low-pass output node in farads.
    pub c2: f64,
    /// Bridging capacitor between the two integrator nodes in farads.
    pub c3: f64,
}

impl FilterParameters {
    /// A reasonable starting sizing for a ~1 MHz cut-off with a 100 µS OTA.
    pub fn nominal() -> Self {
        FilterParameters {
            c1: 20e-12,
            c2: 20e-12,
            c3: 1e-12,
        }
    }

    /// Designable capacitor space used by the filter optimisation of §5
    /// (logarithmic scaling because capacitors span decades).
    pub fn parameter_set() -> ParameterSet {
        ParameterSet::new()
            .with(Parameter::new_log("c1", 1e-12, 200e-12, "F"))
            .with(Parameter::new_log("c2", 1e-12, 200e-12, "F"))
            .with(Parameter::new_log("c3", 0.1e-12, 50e-12, "F"))
    }

    /// Builds capacitor sizing from a named design point (keys `c1`, `c2`, `c3`).
    pub fn from_design_point(point: &DesignPoint) -> Self {
        let mut p = FilterParameters::nominal();
        if let Some(v) = point.get("c1") {
            p.c1 = v;
        }
        if let Some(v) = point.get("c2") {
            p.c2 = v;
        }
        if let Some(v) = point.get("c3") {
            p.c3 = v;
        }
        p
    }

    /// Converts the sizing into a named design point.
    pub fn to_design_point(&self) -> DesignPoint {
        DesignPoint::new()
            .with("c1", self.c1)
            .with("c2", self.c2)
            .with("c3", self.c3)
    }
}

impl Default for FilterParameters {
    fn default() -> Self {
        FilterParameters::nominal()
    }
}

/// Small-signal description of an OTA used as a filter building block.
///
/// The behavioural model flow produces these numbers (gain, transconductance,
/// output resistance, output capacitance) from the combined performance /
/// variation tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaMacroSpec {
    /// Transconductance in siemens.
    pub gm: f64,
    /// Output resistance in ohms.
    pub rout: f64,
    /// Output capacitance in farads.
    pub cout: f64,
}

impl OtaMacroSpec {
    /// Builds a macromodel spec from an open-loop gain (dB) and unity-gain
    /// bandwidth, assuming the given load capacitance dominated the response.
    ///
    /// `gain_db = 20·log10(gm·rout)` and `f_unity ≈ gm / (2π·c_load)`.
    pub fn from_gain_and_bandwidth(gain_db: f64, f_unity_hz: f64, c_load: f64) -> Self {
        let gain = 10f64.powf(gain_db / 20.0);
        let gm = 2.0 * std::f64::consts::PI * f_unity_hz * c_load;
        let rout = gain / gm;
        OtaMacroSpec {
            gm,
            rout,
            cout: c_load * 0.1,
        }
    }

    /// Low-frequency voltage gain (linear).
    pub fn gain(&self) -> f64 {
        self.gm * self.rout
    }

    /// Low-frequency voltage gain in dB.
    pub fn gain_db(&self) -> f64 {
        20.0 * self.gain().log10()
    }
}

/// Node names used by the generated filter circuits.
pub const FILTER_INPUT: &str = "vin";
/// Bandpass (first integrator) node name.
pub const FILTER_BANDPASS: &str = "v1";
/// Low-pass output node name.
pub const FILTER_OUTPUT: &str = "vout";
/// Name of the AC input source.
pub const FILTER_INPUT_SOURCE: &str = "vsig";

fn add_filter_passives(ckt: &mut Circuit, params: &FilterParameters) -> Result<()> {
    let gnd = ckt.gnd();
    let v1 = ckt.node(FILTER_BANDPASS);
    let vout = ckt.node(FILTER_OUTPUT);
    ckt.add_capacitor("c1", v1, gnd, params.c1)?;
    ckt.add_capacitor("c2", vout, gnd, params.c2)?;
    ckt.add_capacitor("c3", v1, vout, params.c3)?;
    Ok(())
}

/// Builds the biquad using behavioural OTA macromodels (the hierarchical
/// design path of the paper).
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn build_filter_with_macromodels(
    params: &FilterParameters,
    ota: &OtaMacroSpec,
) -> Result<Circuit> {
    let mut ckt = Circuit::new("gmc_biquad_behavioral");
    let gnd = ckt.gnd();
    let vin = ckt.node(FILTER_INPUT);
    let v1 = ckt.node(FILTER_BANDPASS);
    let vout = ckt.node(FILTER_OUTPUT);

    ckt.add_vsource_ac(FILTER_INPUT_SOURCE, vin, gnd, 0.0, AcSpec::unit())?;

    let make = |in_plus, in_minus, out| BehavioralOta {
        in_plus,
        in_minus,
        out,
        gain: ota.gain(),
        rout: ota.rout,
        cout: ota.cout,
        gm: ota.gm,
    };
    // Input transconductor into v1.
    ckt.add_behavioral_ota("ota_in", make(vin, gnd, v1))?;
    // Feedback transconductor from vout into v1 (inverting).
    ckt.add_behavioral_ota("ota_fb", make(gnd, vout, v1))?;
    // Integrator from v1 to vout.
    ckt.add_behavioral_ota("ota_int", make(v1, gnd, vout))?;
    // Damping transconductor at v1 (unity-feedback resistor of value 1/gm).
    ckt.add_behavioral_ota("ota_q", make(gnd, v1, v1))?;

    add_filter_passives(&mut ckt, params)?;
    Ok(ckt)
}

/// Builds the biquad with every OTA expanded to the ten-transistor
/// symmetrical OTA (the verification path of the paper, §5 final Monte Carlo).
///
/// `supply` is the supply voltage and `vcm` the common-mode bias applied to
/// the signal path through the input source DC value.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn build_filter_with_transistor_otas(
    params: &FilterParameters,
    ota_params: &OtaParameters,
    supply: f64,
    vcm: f64,
) -> Result<Circuit> {
    let mut ckt = Circuit::new("gmc_biquad_transistor");
    ckt.add_default_models();
    let gnd = ckt.gnd();
    let vdd = ckt.node("vdd");
    let vin = ckt.node(FILTER_INPUT);
    let vcm_node = ckt.node("vcm");

    ckt.add_vsource("vsupply", vdd, gnd, supply)?;
    ckt.add_vsource_ac(FILTER_INPUT_SOURCE, vin, gnd, vcm, AcSpec::unit())?;
    // Common-mode reference for the grounded OTA inputs.
    ckt.add_vsource("vcmref", vcm_node, gnd, vcm)?;

    add_symmetrical_ota(
        &mut ckt,
        "xin.",
        ota_params,
        FILTER_INPUT,
        "vcm",
        FILTER_BANDPASS,
        "vdd",
    )?;
    add_symmetrical_ota(
        &mut ckt,
        "xfb.",
        ota_params,
        "vcm",
        FILTER_OUTPUT,
        FILTER_BANDPASS,
        "vdd",
    )?;
    add_symmetrical_ota(
        &mut ckt,
        "xint.",
        ota_params,
        FILTER_BANDPASS,
        "vcm",
        FILTER_OUTPUT,
        "vdd",
    )?;
    add_symmetrical_ota(
        &mut ckt,
        "xq.",
        ota_params,
        "vcm",
        FILTER_BANDPASS,
        FILTER_BANDPASS,
        "vdd",
    )?;

    add_filter_passives(&mut ckt, params)?;
    Ok(ckt)
}

/// Ideal (infinite output-resistance) biquad design equations.
///
/// With equal transconductances `gm` and `c3 = 0` the transfer function is
/// `H(s) = gm²/(C1·C2) / (s² + s·gm/C1 + gm²/(C1·C2))`, giving
/// `ω0 = gm/√(C1·C2)` and `Q = √(C1/C2)`.
pub fn ideal_biquad_characteristics(params: &FilterParameters, gm: f64) -> (f64, f64) {
    let w0 = gm / (params.c1 * params.c2).sqrt();
    let q = (params.c1 / params.c2).sqrt();
    (w0 / (2.0 * std::f64::consts::PI), q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_filter_validates() {
        let ckt = build_filter_with_macromodels(
            &FilterParameters::nominal(),
            &OtaMacroSpec::from_gain_and_bandwidth(50.0, 10e6, 5e-12),
        )
        .unwrap();
        assert!(ckt.validate().is_ok());
        let stats = ckt.stats();
        assert_eq!(stats.otas, 4);
        assert_eq!(stats.capacitors, 3);
        assert!(ckt.find_node(FILTER_OUTPUT).is_some());
    }

    #[test]
    fn transistor_filter_has_forty_transistors() {
        let ckt = build_filter_with_transistor_otas(
            &FilterParameters::nominal(),
            &OtaParameters::nominal(),
            3.3,
            1.5,
        )
        .unwrap();
        assert_eq!(ckt.mosfet_count(), 40);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn macrospec_gain_roundtrip() {
        let spec = OtaMacroSpec::from_gain_and_bandwidth(50.0, 10e6, 5e-12);
        assert!((spec.gain_db() - 50.0).abs() < 1e-9);
        assert!(spec.gm > 0.0 && spec.rout > 0.0);
    }

    #[test]
    fn ideal_characteristics_follow_design_equations() {
        let p = FilterParameters {
            c1: 10e-12,
            c2: 10e-12,
            c3: 0.0,
        };
        let gm = 2.0 * std::f64::consts::PI * 1e6 * 10e-12; // puts f0 at 1 MHz
        let (f0, q) = ideal_biquad_characteristics(&p, gm);
        assert!((f0 - 1e6).abs() / 1e6 < 1e-9);
        assert!((q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_parameters_design_point_roundtrip() {
        let p = FilterParameters::nominal();
        let point = p.to_design_point();
        let back = FilterParameters::from_design_point(&point);
        assert_eq!(back, p);
        let set = FilterParameters::parameter_set();
        assert_eq!(set.len(), 3);
        assert!(set.normalize(&point).is_ok());
    }
}
