//! The [`Circuit`] container: named device instances, node table and model cards.

use crate::device::{
    AcSpec, BehavioralOta, Capacitor, CurrentSource, Device, Mosfet, Resistor, Vccs, Vcvs,
    VoltageSource,
};
use crate::error::{CircuitError, Result};
use crate::model::MosfetModelCard;
use crate::node::{NodeId, NodeTable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A named device instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Unique instance name (e.g. `"m1"`, `"xota.m3"`).
    pub name: String,
    /// The device element.
    pub device: Device,
}

/// A flat analogue circuit: node table, device instances and MOSFET model cards.
///
/// # Examples
///
/// ```
/// use ayb_circuit::{Circuit, MosfetModelCard};
///
/// let mut ckt = Circuit::new("divider");
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// let gnd = ckt.gnd();
/// ckt.add_vsource("v1", vin, gnd, 1.0).unwrap();
/// ckt.add_resistor("r1", vin, out, 1e3).unwrap();
/// ckt.add_resistor("r2", out, gnd, 1e3).unwrap();
/// assert_eq!(ckt.instances().len(), 3);
/// assert!(ckt.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    nodes: NodeTable,
    instances: Vec<Instance>,
    models: BTreeMap<String, MosfetModelCard>,
}

impl Circuit {
    /// Creates an empty circuit with the given title.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nodes: NodeTable::new(),
            instances: Vec::new(),
            models: BTreeMap::new(),
        }
    }

    /// Circuit title.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ground node.
    pub fn gnd(&self) -> NodeId {
        NodeId::GROUND
    }

    /// Returns (interning if necessary) the node with the given name.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.nodes.intern(name)
    }

    /// Looks up an existing node without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name)
    }

    /// Human readable name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.nodes.name(id)
    }

    /// Node table accessor.
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// All device instances in insertion order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Mutable access to the device instances (used by the Monte Carlo engine
    /// to apply per-instance mismatch).
    pub fn instances_mut(&mut self) -> &mut [Instance] {
        &mut self.instances
    }

    /// Registered MOSFET model cards keyed by name.
    pub fn models(&self) -> &BTreeMap<String, MosfetModelCard> {
        &self.models
    }

    /// Mutable access to the model cards (used to apply global process variation).
    pub fn models_mut(&mut self) -> &mut BTreeMap<String, MosfetModelCard> {
        &mut self.models
    }

    /// Looks up an instance by name.
    pub fn instance(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Mutable lookup of an instance by name.
    pub fn instance_mut(&mut self, name: &str) -> Option<&mut Instance> {
        self.instances.iter_mut().find(|i| i.name == name)
    }

    /// Registers (or replaces) a MOSFET model card.
    pub fn add_model(&mut self, card: MosfetModelCard) {
        self.models.insert(card.name.clone(), card);
    }

    /// Adds both generic 0.35 µm model cards (`nmos`, `pmos`).
    pub fn add_default_models(&mut self) {
        self.add_model(MosfetModelCard::nmos_035um());
        self.add_model(MosfetModelCard::pmos_035um());
    }

    fn push(&mut self, name: impl Into<String>, device: Device) -> Result<()> {
        let name = name.into().to_ascii_lowercase();
        if name.is_empty() {
            return Err(CircuitError::InvalidNode("instance name is empty".into()));
        }
        if self.instances.iter().any(|i| i.name == name) {
            return Err(CircuitError::DuplicateInstance(name));
        }
        self.instances.push(Instance { name, device });
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is duplicated or the resistance is not
    /// strictly positive and finite.
    pub fn add_resistor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        resistance: f64,
    ) -> Result<()> {
        let name = name.into();
        if !(resistance.is_finite() && resistance > 0.0) {
            return Err(CircuitError::InvalidValue {
                instance: name,
                reason: format!("resistance must be positive and finite, got {resistance}"),
            });
        }
        self.push(
            name,
            Device::Resistor(Resistor {
                plus,
                minus,
                resistance,
            }),
        )
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is duplicated or the capacitance is not
    /// strictly positive and finite.
    pub fn add_capacitor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        capacitance: f64,
    ) -> Result<()> {
        let name = name.into();
        if !(capacitance.is_finite() && capacitance > 0.0) {
            return Err(CircuitError::InvalidValue {
                instance: name,
                reason: format!("capacitance must be positive and finite, got {capacitance}"),
            });
        }
        self.push(
            name,
            Device::Capacitor(Capacitor {
                plus,
                minus,
                capacitance,
            }),
        )
    }

    /// Adds an independent DC voltage source.
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated.
    pub fn add_vsource(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        dc: f64,
    ) -> Result<()> {
        self.push(
            name,
            Device::VoltageSource(VoltageSource {
                plus,
                minus,
                dc,
                ac: AcSpec::none(),
            }),
        )
    }

    /// Adds an independent voltage source with both DC and AC values.
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated.
    pub fn add_vsource_ac(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        dc: f64,
        ac: AcSpec,
    ) -> Result<()> {
        self.push(
            name,
            Device::VoltageSource(VoltageSource {
                plus,
                minus,
                dc,
                ac,
            }),
        )
    }

    /// Adds an independent DC current source (current flows from `plus` to `minus`).
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated.
    pub fn add_isource(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        dc: f64,
    ) -> Result<()> {
        self.push(
            name,
            Device::CurrentSource(CurrentSource {
                plus,
                minus,
                dc,
                ac: AcSpec::none(),
            }),
        )
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated.
    pub fn add_vccs(
        &mut self,
        name: impl Into<String>,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_plus: NodeId,
        ctrl_minus: NodeId,
        gm: f64,
    ) -> Result<()> {
        self.push(
            name,
            Device::Vccs(Vccs {
                out_plus,
                out_minus,
                ctrl_plus,
                ctrl_minus,
                gm,
            }),
        )
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated.
    pub fn add_vcvs(
        &mut self,
        name: impl Into<String>,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_plus: NodeId,
        ctrl_minus: NodeId,
        gain: f64,
    ) -> Result<()> {
        self.push(
            name,
            Device::Vcvs(Vcvs {
                out_plus,
                out_minus,
                ctrl_plus,
                ctrl_minus,
                gain,
            }),
        )
    }

    /// Adds a MOSFET instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is duplicated, the referenced model card is
    /// not registered, or W/L are non-physical.
    pub fn add_mosfet(&mut self, name: impl Into<String>, mosfet: Mosfet) -> Result<()> {
        let name = name.into();
        if !self.models.contains_key(&mosfet.model) {
            return Err(CircuitError::UnknownModel(mosfet.model));
        }
        if !(mosfet.w.is_finite() && mosfet.w > 0.0 && mosfet.l.is_finite() && mosfet.l > 0.0) {
            return Err(CircuitError::InvalidValue {
                instance: name,
                reason: format!(
                    "width and length must be positive, got w={} l={}",
                    mosfet.w, mosfet.l
                ),
            });
        }
        self.push(name, Device::Mosfet(mosfet))
    }

    /// Adds a behavioural OTA macromodel element.
    ///
    /// # Errors
    ///
    /// Returns an error if the instance name is duplicated or `rout`/`cout`
    /// are non-physical.
    pub fn add_behavioral_ota(
        &mut self,
        name: impl Into<String>,
        ota: BehavioralOta,
    ) -> Result<()> {
        let name = name.into();
        if !(ota.rout > 0.0 && ota.cout >= 0.0) {
            return Err(CircuitError::InvalidValue {
                instance: name,
                reason: "behavioural OTA requires rout > 0 and cout >= 0".into(),
            });
        }
        self.push(name, Device::BehavioralOta(ota))
    }

    /// Number of MOSFET instances.
    pub fn mosfet_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| matches!(i.device, Device::Mosfet(_)))
            .count()
    }

    /// Number of extra branch-current unknowns required by MNA.
    pub fn branch_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.device.needs_branch_current())
            .count()
    }

    /// Total number of MNA unknowns: non-ground nodes plus branch currents.
    pub fn unknown_count(&self) -> usize {
        self.nodes.unknown_count() + self.branch_count()
    }

    /// Structural validation: every referenced model exists, every node is
    /// attached to at least two terminals (or one terminal plus ground usage),
    /// and at least one source or nonlinear element exists.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Validation`] describing the first problem found.
    pub fn validate(&self) -> Result<()> {
        if self.instances.is_empty() {
            return Err(CircuitError::Validation("circuit has no devices".into()));
        }
        let mut touch_counts = vec![0usize; self.nodes.len()];
        for inst in &self.instances {
            if let Device::Mosfet(m) = &inst.device {
                if !self.models.contains_key(&m.model) {
                    return Err(CircuitError::UnknownModel(m.model.clone()));
                }
            }
            for node in inst.device.nodes() {
                touch_counts[node.index()] += 1;
            }
        }
        for id in self.nodes.iter() {
            if id.is_ground() {
                continue;
            }
            if touch_counts[id.index()] == 0 {
                return Err(CircuitError::Validation(format!(
                    "node `{}` is not connected to any device",
                    self.nodes.name(id)
                )));
            }
            if touch_counts[id.index()] == 1 {
                return Err(CircuitError::Validation(format!(
                    "node `{}` is connected to only one device terminal (floating)",
                    self.nodes.name(id)
                )));
            }
        }
        Ok(())
    }

    /// Set of distinct model names referenced by MOSFET instances.
    pub fn referenced_models(&self) -> HashSet<&str> {
        self.instances
            .iter()
            .filter_map(|i| match &i.device {
                Device::Mosfet(m) => Some(m.model.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Summary statistics used in reports.
    pub fn stats(&self) -> CircuitStats {
        let mut stats = CircuitStats {
            nodes: self.nodes.unknown_count(),
            ..CircuitStats::default()
        };
        for inst in &self.instances {
            match inst.device {
                Device::Resistor(_) => stats.resistors += 1,
                Device::Capacitor(_) => stats.capacitors += 1,
                Device::VoltageSource(_) => stats.vsources += 1,
                Device::CurrentSource(_) => stats.isources += 1,
                Device::Vccs(_) | Device::Vcvs(_) => stats.controlled_sources += 1,
                Device::Mosfet(_) => stats.mosfets += 1,
                Device::BehavioralOta(_) => stats.otas += 1,
            }
        }
        stats
    }
}

/// Device-count summary of a circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Non-ground node count.
    pub nodes: usize,
    /// Resistor count.
    pub resistors: usize,
    /// Capacitor count.
    pub capacitors: usize,
    /// Independent voltage-source count.
    pub vsources: usize,
    /// Independent current-source count.
    pub isources: usize,
    /// Controlled-source count (VCCS + VCVS).
    pub controlled_sources: usize,
    /// MOSFET count.
    pub mosfets: usize,
    /// Behavioural OTA count.
    pub otas: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new("divider");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", vin, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", vin, out, 1e3).unwrap();
        ckt.add_resistor("r2", out, gnd, 1e3).unwrap();
        ckt
    }

    #[test]
    fn divider_validates_and_counts_unknowns() {
        let ckt = divider();
        assert!(ckt.validate().is_ok());
        // Two nodes plus one branch current for the voltage source.
        assert_eq!(ckt.unknown_count(), 3);
        assert_eq!(ckt.branch_count(), 1);
        let stats = ckt.stats();
        assert_eq!(stats.resistors, 2);
        assert_eq!(stats.vsources, 1);
        assert_eq!(stats.nodes, 2);
    }

    #[test]
    fn duplicate_instance_names_are_rejected() {
        let mut ckt = divider();
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        // Names are case-insensitive.
        let err = ckt.add_resistor("R1", a, gnd, 1.0).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateInstance("r1".into()));
    }

    #[test]
    fn negative_element_values_are_rejected() {
        let mut ckt = Circuit::new("bad");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        assert!(ckt.add_resistor("r1", a, gnd, -5.0).is_err());
        assert!(ckt.add_capacitor("c1", a, gnd, 0.0).is_err());
        assert!(ckt.add_capacitor("c1", a, gnd, f64::NAN).is_err());
    }

    #[test]
    fn mosfet_requires_registered_model() {
        let mut ckt = Circuit::new("m");
        let d = ckt.node("d");
        let g = ckt.node("g");
        let gnd = ckt.gnd();
        let m = Mosfet::new(d, g, gnd, gnd, "nmos", 10e-6, 1e-6);
        assert!(matches!(
            ckt.add_mosfet("m1", m.clone()),
            Err(CircuitError::UnknownModel(_))
        ));
        ckt.add_default_models();
        assert!(ckt.add_mosfet("m1", m).is_ok());
        assert_eq!(ckt.mosfet_count(), 1);
        assert!(ckt.referenced_models().contains("nmos"));
    }

    #[test]
    fn floating_node_fails_validation() {
        let mut ckt = divider();
        let fl = ckt.node("floating");
        let gnd = ckt.gnd();
        ckt.add_resistor("r3", fl, gnd, 1e3).unwrap();
        let err = ckt.validate().unwrap_err();
        assert!(matches!(err, CircuitError::Validation(_)));
    }

    #[test]
    fn instance_lookup_and_mutation() {
        let mut ckt = divider();
        assert!(ckt.instance("r1").is_some());
        assert!(ckt.instance("zz").is_none());
        if let Some(inst) = ckt.instance_mut("r1") {
            if let Device::Resistor(r) = &mut inst.device {
                r.resistance = 2e3;
            }
        }
        match &ckt.instance("r1").unwrap().device {
            Device::Resistor(r) => assert_eq!(r.resistance, 2e3),
            _ => panic!("expected resistor"),
        }
    }

    #[test]
    fn serde_roundtrip_preserves_circuit() {
        let ckt = divider();
        let json = serde_json::to_string(&ckt).unwrap();
        let back: Circuit = serde_json::from_str(&json).unwrap();
        assert_eq!(back.instances().len(), ckt.instances().len());
        assert_eq!(back.unknown_count(), ckt.unknown_count());
        assert_eq!(back.name(), "divider");
    }
}
