//! Circuit devices.
//!
//! Every device variant carries its terminal [`NodeId`]s and element values.
//! The simulator in `ayb-sim` pattern-matches on [`Device`] to stamp the MNA
//! matrices; the process-variation engine mutates the mismatch fields of
//! [`Mosfet`] instances.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Small-signal (AC) source specification shared by voltage and current sources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcSpec {
    /// AC magnitude (volts or amps).
    pub magnitude: f64,
    /// AC phase in degrees.
    pub phase_deg: f64,
}

impl AcSpec {
    /// Unit-magnitude, zero-phase AC stimulus.
    pub fn unit() -> Self {
        AcSpec {
            magnitude: 1.0,
            phase_deg: 0.0,
        }
    }

    /// No AC stimulus.
    pub fn none() -> Self {
        AcSpec {
            magnitude: 0.0,
            phase_deg: 0.0,
        }
    }
}

impl Default for AcSpec {
    fn default() -> Self {
        AcSpec::none()
    }
}

/// Linear resistor between `plus` and `minus`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resistor {
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// Resistance in ohms (must be positive).
    pub resistance: f64,
}

/// Linear capacitor between `plus` and `minus`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// Capacitance in farads (must be positive).
    pub capacitance: f64,
}

/// Independent voltage source from `plus` to `minus`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageSource {
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// DC value in volts.
    pub dc: f64,
    /// Small-signal stimulus.
    pub ac: AcSpec,
}

/// Independent current source pushing current from `plus` to `minus`
/// (conventional SPICE direction: current flows out of the `plus` node
/// through the source into the `minus` node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentSource {
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// DC value in amps.
    pub dc: f64,
    /// Small-signal stimulus.
    pub ac: AcSpec,
}

/// Linear voltage-controlled current source: `i(out) = gm * v(cp, cn)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vccs {
    /// Current output positive terminal (current flows into this node for positive gm and control voltage).
    pub out_plus: NodeId,
    /// Current output negative terminal.
    pub out_minus: NodeId,
    /// Positive control node.
    pub ctrl_plus: NodeId,
    /// Negative control node.
    pub ctrl_minus: NodeId,
    /// Transconductance in siemens.
    pub gm: f64,
}

/// Linear voltage-controlled voltage source: `v(out) = gain * v(cp, cn)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vcvs {
    /// Output positive terminal.
    pub out_plus: NodeId,
    /// Output negative terminal.
    pub out_minus: NodeId,
    /// Positive control node.
    pub ctrl_plus: NodeId,
    /// Negative control node.
    pub ctrl_minus: NodeId,
    /// Voltage gain (dimensionless).
    pub gain: f64,
}

/// Four-terminal MOSFET instance referencing a model card by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Drain terminal.
    pub drain: NodeId,
    /// Gate terminal.
    pub gate: NodeId,
    /// Source terminal.
    pub source: NodeId,
    /// Bulk terminal.
    pub bulk: NodeId,
    /// Model card name (must exist in the circuit's model table).
    pub model: String,
    /// Channel width in metres.
    pub w: f64,
    /// Channel length in metres.
    pub l: f64,
    /// Parallel multiplicity.
    pub m: f64,
    /// Local-mismatch threshold-voltage offset in volts (added to the card's VTO
    /// with the polarity sign handled by the process engine).
    pub delta_vto: f64,
    /// Local-mismatch current-factor multiplier (1.0 = nominal).
    pub beta_mult: f64,
}

impl Mosfet {
    /// Creates a nominal (mismatch-free) MOSFET instance.
    pub fn new(
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        bulk: NodeId,
        model: impl Into<String>,
        w: f64,
        l: f64,
    ) -> Self {
        Mosfet {
            drain,
            gate,
            source,
            bulk,
            model: model.into(),
            w,
            l,
            m: 1.0,
            delta_vto: 0.0,
            beta_mult: 1.0,
        }
    }

    /// Gate area `W·L·m` in m², used by Pelgrom-law mismatch models.
    pub fn gate_area(&self) -> f64 {
        self.w * self.l * self.m
    }
}

/// Idealised behavioural OTA element used for hierarchical (filter-level)
/// simulation: a single-pole voltage-controlled current source with finite
/// output resistance.
///
/// This is the Rust-side equivalent of the Verilog-A behavioural module in the
/// paper: `V(out) <+ V(in)·(-A) − I(out)·ro`, augmented with an explicit output
/// capacitance so that a dominant pole and hence a phase response exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehavioralOta {
    /// Non-inverting input node.
    pub in_plus: NodeId,
    /// Inverting input node.
    pub in_minus: NodeId,
    /// Output node.
    pub out: NodeId,
    /// Low-frequency open-loop voltage gain (linear, not dB).
    pub gain: f64,
    /// Output resistance in ohms.
    pub rout: f64,
    /// Output capacitance in farads (sets the dominant pole together with `rout`).
    pub cout: f64,
    /// Transconductance in siemens; `gain = gm * rout`.
    pub gm: f64,
}

impl BehavioralOta {
    /// Builds a behavioural OTA from transconductance / output-resistance values.
    pub fn from_gm_rout(
        in_plus: NodeId,
        in_minus: NodeId,
        out: NodeId,
        gm: f64,
        rout: f64,
        cout: f64,
    ) -> Self {
        BehavioralOta {
            in_plus,
            in_minus,
            out,
            gain: gm * rout,
            rout,
            cout,
            gm,
        }
    }
}

/// Any element that can appear in a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Independent voltage source.
    VoltageSource(VoltageSource),
    /// Independent current source.
    CurrentSource(CurrentSource),
    /// Voltage-controlled current source.
    Vccs(Vccs),
    /// Voltage-controlled voltage source.
    Vcvs(Vcvs),
    /// MOSFET transistor.
    Mosfet(Mosfet),
    /// Behavioural OTA macromodel.
    BehavioralOta(BehavioralOta),
}

impl Device {
    /// Terminal nodes of the device in declaration order.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Device::Resistor(r) => vec![r.plus, r.minus],
            Device::Capacitor(c) => vec![c.plus, c.minus],
            Device::VoltageSource(v) => vec![v.plus, v.minus],
            Device::CurrentSource(i) => vec![i.plus, i.minus],
            Device::Vccs(g) => vec![g.out_plus, g.out_minus, g.ctrl_plus, g.ctrl_minus],
            Device::Vcvs(e) => vec![e.out_plus, e.out_minus, e.ctrl_plus, e.ctrl_minus],
            Device::Mosfet(m) => vec![m.drain, m.gate, m.source, m.bulk],
            Device::BehavioralOta(o) => vec![o.in_plus, o.in_minus, o.out],
        }
    }

    /// Returns `true` if the device introduces an extra MNA branch-current
    /// unknown (voltage sources and VCVS elements do).
    pub fn needs_branch_current(&self) -> bool {
        matches!(self, Device::VoltageSource(_) | Device::Vcvs(_))
    }

    /// Returns `true` for nonlinear devices that require Newton iteration.
    pub fn is_nonlinear(&self) -> bool {
        matches!(self, Device::Mosfet(_))
    }

    /// Short human-readable kind tag (used in reports and netlist output).
    pub fn kind(&self) -> &'static str {
        match self {
            Device::Resistor(_) => "resistor",
            Device::Capacitor(_) => "capacitor",
            Device::VoltageSource(_) => "vsource",
            Device::CurrentSource(_) => "isource",
            Device::Vccs(_) => "vccs",
            Device::Vcvs(_) => "vcvs",
            Device::Mosfet(_) => "mosfet",
            Device::BehavioralOta(_) => "ota",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn device_nodes_follow_declaration_order() {
        let r = Device::Resistor(Resistor {
            plus: n(1),
            minus: n(2),
            resistance: 1e3,
        });
        assert_eq!(r.nodes(), vec![n(1), n(2)]);

        let m = Device::Mosfet(Mosfet::new(n(3), n(4), n(5), n(0), "nmos", 1e-6, 1e-6));
        assert_eq!(m.nodes(), vec![n(3), n(4), n(5), n(0)]);
    }

    #[test]
    fn branch_current_devices_are_identified() {
        let v = Device::VoltageSource(VoltageSource {
            plus: n(1),
            minus: n(0),
            dc: 1.0,
            ac: AcSpec::none(),
        });
        assert!(v.needs_branch_current());
        let i = Device::CurrentSource(CurrentSource {
            plus: n(1),
            minus: n(0),
            dc: 1.0,
            ac: AcSpec::none(),
        });
        assert!(!i.needs_branch_current());
    }

    #[test]
    fn only_mosfets_are_nonlinear() {
        let m = Device::Mosfet(Mosfet::new(n(1), n(2), n(0), n(0), "nmos", 1e-6, 1e-6));
        assert!(m.is_nonlinear());
        let o = Device::BehavioralOta(BehavioralOta::from_gm_rout(
            n(1),
            n(2),
            n(3),
            1e-3,
            1e6,
            1e-12,
        ));
        assert!(!o.is_nonlinear());
        assert_eq!(o.kind(), "ota");
    }

    #[test]
    fn behavioral_ota_gain_is_gm_times_rout() {
        let o = BehavioralOta::from_gm_rout(n(1), n(2), n(3), 2e-3, 5e5, 1e-12);
        assert!((o.gain - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mosfet_gate_area_scales_with_multiplicity() {
        let mut m = Mosfet::new(n(1), n(2), n(0), n(0), "nmos", 10e-6, 1e-6);
        let a1 = m.gate_area();
        m.m = 4.0;
        assert!((m.gate_area() - 4.0 * a1).abs() < 1e-18);
    }
}
