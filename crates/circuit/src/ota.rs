//! Symmetrical OTA topology generator and open-loop test bench.
//!
//! This reproduces the benchmark circuit of the paper (§4, Figure 5): a
//! symmetrical (three-current-mirror) operational transconductance amplifier
//! in a generic 0.35 µm process. The designable parameters follow Table 1 of
//! the paper:
//!
//! | Parameter | Devices   | Range          |
//! |-----------|-----------|----------------|
//! | `w1`/`l1` | M5, M4    | 10–60 µm / 0.35–4 µm |
//! | `w2`/`l2` | M7, M9    | 10–60 µm / 0.35–4 µm |
//! | `w3`/`l3` | M10, M8   | 10–60 µm / 0.35–4 µm |
//! | `w4`/`l4` | M3, M6    | 10–60 µm / 0.35–4 µm |
//!
//! M1/M2 (the input differential pair) are fixed, as in the paper.

use crate::device::{AcSpec, Mosfet};
use crate::error::Result;
use crate::netlist::Circuit;
use crate::params::{DesignPoint, Parameter, ParameterSet};
use serde::{Deserialize, Serialize};

/// Micrometre helper.
const UM: f64 = 1e-6;

/// Sized dimensions of the symmetrical OTA (paper Table 1 parameters plus the
/// fixed input pair and bias current).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaParameters {
    /// Width of mirror output devices M4/M5 in metres.
    pub w1: f64,
    /// Length of mirror output devices M4/M5 in metres.
    pub l1: f64,
    /// Width of NMOS output-mirror devices M7/M9 in metres.
    pub w2: f64,
    /// Length of NMOS output-mirror devices M7/M9 in metres.
    pub l2: f64,
    /// Width of bias-mirror devices M8/M10 in metres.
    pub w3: f64,
    /// Length of bias-mirror devices M8/M10 in metres.
    pub l3: f64,
    /// Width of PMOS diode-load devices M3/M6 in metres.
    pub w4: f64,
    /// Length of PMOS diode-load devices M3/M6 in metres.
    pub l4: f64,
    /// Width of the fixed input pair M1/M2 in metres.
    pub input_w: f64,
    /// Length of the fixed input pair M1/M2 in metres.
    pub input_l: f64,
    /// Reference bias current in amps.
    pub ibias: f64,
}

impl OtaParameters {
    /// Nominal sizing roughly in the middle of the paper's design space.
    pub fn nominal() -> Self {
        OtaParameters {
            w1: 30.0 * UM,
            l1: 1.0 * UM,
            w2: 30.0 * UM,
            l2: 1.0 * UM,
            w3: 20.0 * UM,
            l3: 1.0 * UM,
            w4: 15.0 * UM,
            l4: 1.0 * UM,
            input_w: 20.0 * UM,
            input_l: 1.0 * UM,
            ibias: 20e-6,
        }
    }

    /// The paper's designable parameter space (Table 1): 8 parameters, widths
    /// 10–60 µm and lengths 0.35–4 µm.
    pub fn parameter_set() -> ParameterSet {
        let mut set = ParameterSet::new();
        for i in 1..=4 {
            set.push(Parameter::new(format!("w{i}"), 10.0 * UM, 60.0 * UM, "m"));
            set.push(Parameter::new(format!("l{i}"), 0.35 * UM, 4.0 * UM, "m"));
        }
        set
    }

    /// Builds sized parameters from a named design point (keys `w1..w4`, `l1..l4`).
    ///
    /// Missing keys keep their nominal values, so partial points (e.g. from a
    /// reduced optimisation) remain usable.
    pub fn from_design_point(point: &DesignPoint) -> Self {
        let mut p = OtaParameters::nominal();
        if let Some(v) = point.get("w1") {
            p.w1 = v;
        }
        if let Some(v) = point.get("l1") {
            p.l1 = v;
        }
        if let Some(v) = point.get("w2") {
            p.w2 = v;
        }
        if let Some(v) = point.get("l2") {
            p.l2 = v;
        }
        if let Some(v) = point.get("w3") {
            p.w3 = v;
        }
        if let Some(v) = point.get("l3") {
            p.l3 = v;
        }
        if let Some(v) = point.get("w4") {
            p.w4 = v;
        }
        if let Some(v) = point.get("l4") {
            p.l4 = v;
        }
        p
    }

    /// Converts the sized parameters into a named design point.
    pub fn to_design_point(&self) -> DesignPoint {
        DesignPoint::new()
            .with("w1", self.w1)
            .with("l1", self.l1)
            .with("w2", self.w2)
            .with("l2", self.l2)
            .with("w3", self.w3)
            .with("l3", self.l3)
            .with("w4", self.w4)
            .with("l4", self.l4)
    }

    /// Approximate current-mirror gain factor B (ratio of the output PMOS
    /// mirror to the diode load), a useful sanity metric: the OTA's
    /// transconductance is `B · gm1`.
    pub fn mirror_ratio(&self) -> f64 {
        (self.w1 / self.l1) / (self.w4 / self.l4)
    }
}

impl Default for OtaParameters {
    fn default() -> Self {
        OtaParameters::nominal()
    }
}

/// Supply / bias conditions for the OTA test benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaTestbenchConfig {
    /// Positive supply voltage in volts.
    pub vdd: f64,
    /// Input common-mode voltage in volts.
    pub vcm: f64,
    /// Load capacitance at the OTA output in farads.
    pub cload: f64,
    /// Servo-loop feedback resistance in ohms (very large; opens the loop at AC).
    pub servo_resistance: f64,
    /// Servo-loop decoupling capacitance in farads (very large; closes the loop at DC).
    pub servo_capacitance: f64,
}

impl OtaTestbenchConfig {
    /// Default 3.3 V supply conditions matching a 0.35 µm process.
    pub fn new() -> Self {
        OtaTestbenchConfig {
            vdd: 3.3,
            vcm: 1.5,
            cload: 5e-12,
            servo_resistance: 1e9,
            servo_capacitance: 10.0,
        }
    }
}

impl Default for OtaTestbenchConfig {
    fn default() -> Self {
        OtaTestbenchConfig::new()
    }
}

/// Names of the OTA terminal nodes inside a generated circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OtaNodes {
    /// Non-inverting input node name.
    pub inp: String,
    /// Inverting input node name.
    pub inn: String,
    /// Output node name.
    pub out: String,
    /// Positive supply node name.
    pub vdd: String,
}

/// Adds the ten-transistor symmetrical OTA to `circuit` with instance names
/// prefixed by `prefix` (e.g. `"x1."`), connecting to existing node names.
///
/// The topology is the classic three-current-mirror OTA:
///
/// * M1/M2 — NMOS input differential pair (fixed size),
/// * M3/M6 — PMOS diode loads (`w4`/`l4`),
/// * M4/M5 — PMOS mirror outputs (`w1`/`l1`),
/// * M7/M9 — NMOS output mirror (`w2`/`l2`),
/// * M8/M10 — NMOS bias mirror (`w3`/`l3`), M10 sourcing the tail current.
///
/// # Errors
///
/// Returns an error if any generated instance name collides with an existing
/// one or the model cards are missing (call
/// [`Circuit::add_default_models`](crate::Circuit::add_default_models) first).
pub fn add_symmetrical_ota(
    circuit: &mut Circuit,
    prefix: &str,
    params: &OtaParameters,
    inp: &str,
    inn: &str,
    out: &str,
    vdd: &str,
) -> Result<OtaNodes> {
    let p = params;
    let gnd = circuit.gnd();
    let vdd_n = circuit.node(vdd);
    let inp_n = circuit.node(inp);
    let inn_n = circuit.node(inn);
    let out_n = circuit.node(out);
    // Internal nodes are namespaced by the prefix so multiple OTA instances
    // can coexist in one flat circuit.
    let n1 = circuit.node(&format!("{prefix}n1"));
    let n2 = circuit.node(&format!("{prefix}n2"));
    let n3 = circuit.node(&format!("{prefix}n3"));
    let tail = circuit.node(&format!("{prefix}tail"));
    let nbias = circuit.node(&format!("{prefix}nbias"));

    // Input differential pair (fixed dimensions).
    circuit.add_mosfet(
        format!("{prefix}m1"),
        Mosfet::new(n1, inn_n, tail, gnd, "nmos", p.input_w, p.input_l),
    )?;
    circuit.add_mosfet(
        format!("{prefix}m2"),
        Mosfet::new(n2, inp_n, tail, gnd, "nmos", p.input_w, p.input_l),
    )?;
    // PMOS diode loads M3 (left) and M6 (right): w4/l4.
    circuit.add_mosfet(
        format!("{prefix}m3"),
        Mosfet::new(n1, n1, vdd_n, vdd_n, "pmos", p.w4, p.l4),
    )?;
    circuit.add_mosfet(
        format!("{prefix}m6"),
        Mosfet::new(n2, n2, vdd_n, vdd_n, "pmos", p.w4, p.l4),
    )?;
    // PMOS mirror outputs M4 (left, drives n3) and M5 (right, drives out): w1/l1.
    circuit.add_mosfet(
        format!("{prefix}m4"),
        Mosfet::new(n3, n1, vdd_n, vdd_n, "pmos", p.w1, p.l1),
    )?;
    circuit.add_mosfet(
        format!("{prefix}m5"),
        Mosfet::new(out_n, n2, vdd_n, vdd_n, "pmos", p.w1, p.l1),
    )?;
    // NMOS output mirror M7 (diode at n3) and M9 (output device): w2/l2.
    circuit.add_mosfet(
        format!("{prefix}m7"),
        Mosfet::new(n3, n3, gnd, gnd, "nmos", p.w2, p.l2),
    )?;
    circuit.add_mosfet(
        format!("{prefix}m9"),
        Mosfet::new(out_n, n3, gnd, gnd, "nmos", p.w2, p.l2),
    )?;
    // Bias mirror M8 (diode) and M10 (tail current source): w3/l3.
    circuit.add_mosfet(
        format!("{prefix}m8"),
        Mosfet::new(nbias, nbias, gnd, gnd, "nmos", p.w3, p.l3),
    )?;
    circuit.add_mosfet(
        format!("{prefix}m10"),
        Mosfet::new(tail, nbias, gnd, gnd, "nmos", p.w3, p.l3),
    )?;
    // Bias current reference into the diode-connected M8.
    circuit.add_isource(format!("{prefix}ibias"), vdd_n, nbias, p.ibias)?;

    Ok(OtaNodes {
        inp: inp.to_string(),
        inn: inn.to_string(),
        out: out.to_string(),
        vdd: vdd.to_string(),
    })
}

/// Builds the open-loop gain / phase-margin test bench of §4.2.
///
/// The inverting input is servo-biased from the output through a very large RC
/// so the DC operating point is well defined while the loop is effectively open
/// at all frequencies of interest; the non-inverting input carries the AC
/// stimulus. The output is loaded with `cload`.
///
/// Returns the circuit plus the names of the input source and output node used
/// by the measurement code in `ayb-sim`.
///
/// # Errors
///
/// Propagates any netlist construction error.
pub fn build_open_loop_testbench(
    params: &OtaParameters,
    config: &OtaTestbenchConfig,
) -> Result<Circuit> {
    let mut ckt = Circuit::new("ota_open_loop_tb");
    ckt.add_default_models();
    let gnd = ckt.gnd();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let out = ckt.node("out");

    ckt.add_vsource("vsupply", vdd, gnd, config.vdd)?;
    // Common-mode bias with unit AC stimulus on the non-inverting input.
    ckt.add_vsource_ac("vin", inp, gnd, config.vcm, AcSpec::unit())?;
    add_symmetrical_ota(&mut ckt, "xota.", params, "inp", "inn", "out", "vdd")?;
    // Servo loop: huge R from out to inn, huge C from inn to ground.
    ckt.add_resistor("rservo", out, inn, config.servo_resistance)?;
    ckt.add_capacitor("cservo", inn, gnd, config.servo_capacitance)?;
    // Load capacitance.
    ckt.add_capacitor("cload", out, gnd, config.cload)?;
    Ok(ckt)
}

/// Name of the OTA output node in the open-loop test bench.
pub const OPEN_LOOP_OUTPUT: &str = "out";
/// Name of the AC input source in the open-loop test bench.
pub const OPEN_LOOP_INPUT_SOURCE: &str = "vin";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_parameters_are_inside_the_paper_ranges() {
        let p = OtaParameters::nominal();
        let set = OtaParameters::parameter_set();
        let point = p.to_design_point();
        // normalize() errors if out of bounds.
        assert!(set.normalize(&point).is_ok());
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn design_point_roundtrip() {
        let p = OtaParameters::nominal();
        let point = p.to_design_point();
        let back = OtaParameters::from_design_point(&point);
        assert_eq!(back, p);
    }

    #[test]
    fn partial_design_point_keeps_nominal_values() {
        let point = DesignPoint::new().with("w1", 50e-6);
        let p = OtaParameters::from_design_point(&point);
        assert!((p.w1 - 50e-6).abs() < 1e-15);
        assert!((p.l1 - OtaParameters::nominal().l1).abs() < 1e-15);
    }

    #[test]
    fn ota_testbench_has_ten_transistors_and_validates() {
        let ckt = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
            .unwrap();
        assert_eq!(ckt.mosfet_count(), 10);
        assert!(ckt.validate().is_ok());
        let stats = ckt.stats();
        assert_eq!(stats.vsources, 2);
        assert_eq!(stats.isources, 1);
        assert_eq!(stats.capacitors, 2);
        assert_eq!(stats.resistors, 1);
        assert!(ckt.find_node(OPEN_LOOP_OUTPUT).is_some());
        assert!(ckt.instance(OPEN_LOOP_INPUT_SOURCE).is_some());
    }

    #[test]
    fn two_otas_can_share_one_circuit() {
        let mut ckt = Circuit::new("two_otas");
        ckt.add_default_models();
        let gnd = ckt.gnd();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("vsupply", vdd, gnd, 3.3).unwrap();
        let p = OtaParameters::nominal();
        add_symmetrical_ota(&mut ckt, "x1.", &p, "a", "b", "o1", "vdd").unwrap();
        add_symmetrical_ota(&mut ckt, "x2.", &p, "o1", "c", "o2", "vdd").unwrap();
        assert_eq!(ckt.mosfet_count(), 20);
        // Internal nodes do not collide thanks to the prefix.
        assert!(ckt.find_node("x1.n1").is_some());
        assert!(ckt.find_node("x2.n1").is_some());
    }

    #[test]
    fn mirror_ratio_reflects_w_over_l() {
        let mut p = OtaParameters::nominal();
        p.w1 = 40e-6;
        p.l1 = 1e-6;
        p.w4 = 10e-6;
        p.l4 = 1e-6;
        assert!((p.mirror_ratio() - 4.0).abs() < 1e-12);
    }
}
