//! Designable parameters and parameter spaces.
//!
//! The optimisation flow works on *normalised* parameter vectors in `[0, 1]`
//! (as the paper does for the GA string, Figure 6) and converts to physical
//! values only when a circuit is instantiated.

use crate::error::{CircuitError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scaling law used when mapping a normalised value in `[0, 1]` to the
/// physical range of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scaling {
    /// Linear interpolation between the bounds.
    Linear,
    /// Logarithmic interpolation between the bounds (both bounds must be positive).
    Logarithmic,
}

/// A single designable parameter with physical bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Parameter name (e.g. `"w1"`, `"l3"`, `"c2"`).
    pub name: String,
    /// Lower physical bound.
    pub lower: f64,
    /// Upper physical bound.
    pub upper: f64,
    /// Unit string for reports (e.g. `"m"`, `"F"`).
    pub unit: String,
    /// Normalisation scaling law.
    pub scaling: Scaling,
}

impl Parameter {
    /// Creates a linearly scaled parameter.
    ///
    /// # Panics
    ///
    /// Panics if `lower >= upper` or either bound is not finite.
    pub fn new(name: impl Into<String>, lower: f64, upper: f64, unit: impl Into<String>) -> Self {
        assert!(
            lower.is_finite() && upper.is_finite() && lower < upper,
            "parameter bounds must be finite with lower < upper"
        );
        Parameter {
            name: name.into(),
            lower,
            upper,
            unit: unit.into(),
            scaling: Scaling::Linear,
        }
    }

    /// Creates a logarithmically scaled parameter (both bounds must be positive).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive or `lower >= upper`.
    pub fn new_log(
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        unit: impl Into<String>,
    ) -> Self {
        assert!(
            lower > 0.0 && upper > lower,
            "logarithmic parameter bounds must be positive with lower < upper"
        );
        Parameter {
            name: name.into(),
            lower,
            upper,
            unit: unit.into(),
            scaling: Scaling::Logarithmic,
        }
    }

    /// Maps a normalised value in `[0, 1]` to the physical range.
    ///
    /// Values outside `[0, 1]` are clamped.
    pub fn denormalize(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self.scaling {
            Scaling::Linear => self.lower + x * (self.upper - self.lower),
            Scaling::Logarithmic => {
                let (ll, lu) = (self.lower.ln(), self.upper.ln());
                (ll + x * (lu - ll)).exp()
            }
        }
    }

    /// Maps a physical value to its normalised position in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterOutOfBounds`] if the value lies outside
    /// the physical bounds (beyond a small tolerance).
    pub fn normalize(&self, value: f64) -> Result<f64> {
        let tol = 1e-9 * (self.upper - self.lower).abs();
        if value < self.lower - tol || value > self.upper + tol {
            return Err(CircuitError::ParameterOutOfBounds {
                name: self.name.clone(),
                value,
                lower: self.lower,
                upper: self.upper,
            });
        }
        let x = match self.scaling {
            Scaling::Linear => (value - self.lower) / (self.upper - self.lower),
            Scaling::Logarithmic => {
                (value.max(self.lower).ln() - self.lower.ln()) / (self.upper.ln() - self.lower.ln())
            }
        };
        Ok(x.clamp(0.0, 1.0))
    }

    /// Midpoint of the physical range (in normalised coordinates 0.5).
    pub fn midpoint(&self) -> f64 {
        self.denormalize(0.5)
    }

    /// Width of the physical range.
    pub fn span(&self) -> f64 {
        self.upper - self.lower
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{:.4e}, {:.4e}] {}",
            self.name, self.lower, self.upper, self.unit
        )
    }
}

/// An ordered collection of designable parameters defining a parameter space.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParameterSet {
    parameters: Vec<Parameter>,
}

impl ParameterSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParameterSet {
            parameters: Vec::new(),
        }
    }

    /// Adds a parameter, returning `self` for chaining.
    pub fn with(mut self, parameter: Parameter) -> Self {
        self.parameters.push(parameter);
        self
    }

    /// Adds a parameter in place.
    pub fn push(&mut self, parameter: Parameter) {
        self.parameters.push(parameter);
    }

    /// Number of parameters (the dimensionality of the design space).
    pub fn len(&self) -> usize {
        self.parameters.len()
    }

    /// Returns `true` if the set holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.parameters.is_empty()
    }

    /// Iterates over the parameters in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Parameter> {
        self.parameters.iter()
    }

    /// Parameter by index.
    pub fn get(&self, index: usize) -> Option<&Parameter> {
        self.parameters.get(index)
    }

    /// Parameter by name.
    pub fn by_name(&self, name: &str) -> Option<&Parameter> {
        self.parameters.iter().find(|p| p.name == name)
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.parameters.iter().position(|p| p.name == name)
    }

    /// Converts a normalised vector into a named [`DesignPoint`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Validation`] if the vector length does not match
    /// the number of parameters.
    pub fn denormalize(&self, normalized: &[f64]) -> Result<DesignPoint> {
        if normalized.len() != self.parameters.len() {
            return Err(CircuitError::Validation(format!(
                "expected {} normalised values, got {}",
                self.parameters.len(),
                normalized.len()
            )));
        }
        let values = self
            .parameters
            .iter()
            .zip(normalized)
            .map(|(p, &x)| (p.name.clone(), p.denormalize(x)))
            .collect();
        Ok(DesignPoint { values })
    }

    /// Converts a named design point back to a normalised vector in parameter order.
    ///
    /// # Errors
    ///
    /// Returns an error if a parameter is missing from the point or out of bounds.
    pub fn normalize(&self, point: &DesignPoint) -> Result<Vec<f64>> {
        self.parameters
            .iter()
            .map(|p| {
                let value = point
                    .get(&p.name)
                    .ok_or_else(|| CircuitError::UnknownParameter(p.name.clone()))?;
                p.normalize(value)
            })
            .collect()
    }

    /// The centre of the design space in physical coordinates.
    pub fn midpoint(&self) -> DesignPoint {
        DesignPoint {
            values: self
                .parameters
                .iter()
                .map(|p| (p.name.clone(), p.midpoint()))
                .collect(),
        }
    }
}

impl FromIterator<Parameter> for ParameterSet {
    fn from_iter<T: IntoIterator<Item = Parameter>>(iter: T) -> Self {
        ParameterSet {
            parameters: iter.into_iter().collect(),
        }
    }
}

impl Extend<Parameter> for ParameterSet {
    fn extend<T: IntoIterator<Item = Parameter>>(&mut self, iter: T) {
        self.parameters.extend(iter);
    }
}

/// A concrete assignment of physical values to named parameters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    values: Vec<(String, f64)>,
}

impl DesignPoint {
    /// Creates an empty design point.
    pub fn new() -> Self {
        DesignPoint { values: Vec::new() }
    }

    /// Sets (or replaces) a named value, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Sets (or replaces) a named value.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        if let Some(entry) = self.values.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = value;
        } else {
            self.values.push((name, value));
        }
    }

    /// Value of a named parameter, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a named parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing; use [`DesignPoint::get`] for a
    /// fallible lookup.
    pub fn require(&self, name: &str) -> f64 {
        self.get(name)
            .unwrap_or_else(|| panic!("design point is missing parameter `{name}`"))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the point has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value:.4e}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_denormalize_maps_bounds_and_midpoint() {
        let p = Parameter::new("w1", 10e-6, 60e-6, "m");
        assert!((p.denormalize(0.0) - 10e-6).abs() < 1e-18);
        assert!((p.denormalize(1.0) - 60e-6).abs() < 1e-18);
        assert!((p.denormalize(0.5) - 35e-6).abs() < 1e-12);
        // Clamping.
        assert!((p.denormalize(2.0) - 60e-6).abs() < 1e-18);
        assert!((p.denormalize(-1.0) - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn normalize_is_inverse_of_denormalize() {
        let p = Parameter::new("l1", 0.35e-6, 4e-6, "m");
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            let v = p.denormalize(x);
            let back = p.normalize(v).unwrap();
            assert!((back - x).abs() < 1e-9, "x={x} back={back}");
        }
    }

    #[test]
    fn log_scaling_hits_geometric_midpoint() {
        let p = Parameter::new_log("c1", 1e-12, 100e-12, "F");
        let mid = p.denormalize(0.5);
        assert!((mid - 10e-12).abs() / 10e-12 < 1e-9);
    }

    #[test]
    fn out_of_bounds_normalization_errors() {
        let p = Parameter::new("w1", 10e-6, 60e-6, "m");
        assert!(p.normalize(5e-6).is_err());
        assert!(p.normalize(70e-6).is_err());
    }

    #[test]
    fn parameter_set_roundtrip() {
        let set: ParameterSet = vec![
            Parameter::new("w1", 10e-6, 60e-6, "m"),
            Parameter::new("l1", 0.35e-6, 4e-6, "m"),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        let point = set.denormalize(&[0.2, 0.8]).unwrap();
        let norm = set.normalize(&point).unwrap();
        assert!((norm[0] - 0.2).abs() < 1e-9);
        assert!((norm[1] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn parameter_set_rejects_wrong_length() {
        let set: ParameterSet = vec![Parameter::new("w1", 10e-6, 60e-6, "m")]
            .into_iter()
            .collect();
        assert!(set.denormalize(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn design_point_set_replaces_existing() {
        let mut point = DesignPoint::new().with("w1", 1.0);
        point.set("w1", 2.0);
        assert_eq!(point.get("w1"), Some(2.0));
        assert_eq!(point.len(), 1);
        assert!(point.get("zz").is_none());
    }

    #[test]
    fn lookup_by_name_and_index() {
        let set: ParameterSet = vec![
            Parameter::new("w1", 10e-6, 60e-6, "m"),
            Parameter::new("l1", 0.35e-6, 4e-6, "m"),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.index_of("l1"), Some(1));
        assert!(set.by_name("w1").is_some());
        assert!(set.by_name("zz").is_none());
        assert_eq!(set.midpoint().len(), 2);
    }
}
