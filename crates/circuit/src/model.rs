//! MOSFET model cards.
//!
//! A [`MosfetModelCard`] holds the Level-1 (square-law) parameters used by the
//! simulator in `ayb-sim`. Statistical variation in `ayb-process` works by
//! producing perturbed copies of these cards (global process spread) and by
//! setting per-instance mismatch offsets on [`Mosfet`](crate::device::Mosfet)
//! instances (local variation).

use serde::{Deserialize, Serialize};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosfetPolarity {
    /// Sign convention: +1 for NMOS, -1 for PMOS.
    ///
    /// The simulator evaluates PMOS devices with source/drain voltages negated
    /// so a single square-law expression covers both polarities.
    pub fn sign(self) -> f64 {
        match self {
            MosfetPolarity::Nmos => 1.0,
            MosfetPolarity::Pmos => -1.0,
        }
    }
}

impl std::fmt::Display for MosfetPolarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosfetPolarity::Nmos => write!(f, "nmos"),
            MosfetPolarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Level-1 (square-law) MOSFET model card.
///
/// All values are in SI units. The defaults in [`MosfetModelCard::nmos_035um`]
/// and [`MosfetModelCard::pmos_035um`] approximate a generic 0.35 µm CMOS
/// process (the paper uses the AMS C35B4 process); they are not foundry data
/// but produce gain / phase-margin magnitudes in the same range as the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosfetModelCard {
    /// Model name referenced by device instances.
    pub name: String,
    /// Channel polarity.
    pub polarity: MosfetPolarity,
    /// Zero-bias threshold voltage `VTO` in volts (positive for NMOS, negative for PMOS).
    pub vto: f64,
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation `LAMBDA` in 1/V, referenced to a 1 µm channel.
    ///
    /// The effective lambda used by the simulator scales as `lambda * 1e-6 / l`
    /// so that longer channels exhibit higher output resistance, matching the
    /// qualitative trend of real processes.
    pub lambda: f64,
    /// Body-effect coefficient `GAMMA` in V^0.5.
    pub gamma: f64,
    /// Surface potential `2·Φ_F` in volts.
    pub phi: f64,
    /// Gate-oxide capacitance per unit area `Cox` in F/m².
    pub cox: f64,
    /// Gate-drain overlap capacitance per metre of width in F/m.
    pub cgdo: f64,
    /// Gate-source overlap capacitance per metre of width in F/m.
    pub cgso: f64,
    /// Zero-bias drain/source junction capacitance per unit area in F/m².
    pub cj: f64,
    /// Lateral diffusion length in metres (used for junction area estimates).
    pub ld: f64,
}

impl MosfetModelCard {
    /// Generic 0.35 µm NMOS model card.
    pub fn nmos_035um() -> Self {
        MosfetModelCard {
            name: "nmos".to_string(),
            polarity: MosfetPolarity::Nmos,
            vto: 0.50,
            kp: 170e-6,
            lambda: 0.06,
            gamma: 0.58,
            phi: 0.84,
            cox: 4.54e-3,
            cgdo: 1.2e-10,
            cgso: 1.2e-10,
            cj: 9.4e-4,
            ld: 0.05e-6,
        }
    }

    /// Generic 0.35 µm PMOS model card.
    pub fn pmos_035um() -> Self {
        MosfetModelCard {
            name: "pmos".to_string(),
            polarity: MosfetPolarity::Pmos,
            vto: -0.65,
            kp: 58e-6,
            lambda: 0.08,
            gamma: 0.40,
            phi: 0.81,
            cox: 4.54e-3,
            cgdo: 0.9e-10,
            cgso: 0.9e-10,
            cj: 1.36e-3,
            ld: 0.05e-6,
        }
    }

    /// Returns a copy with threshold voltage shifted by `delta_vto` volts and
    /// transconductance scaled by `kp_mult`.
    ///
    /// This is the hook used by the process-variation engine to create global
    /// (die-to-die) corners and Monte Carlo samples.
    pub fn perturbed(&self, delta_vto: f64, kp_mult: f64) -> Self {
        let mut card = self.clone();
        // VTO shifts away from zero for "slow" corners regardless of polarity;
        // callers pass signed deltas that already account for polarity.
        card.vto += delta_vto;
        card.kp *= kp_mult;
        card
    }

    /// Magnitude of the threshold voltage in volts.
    pub fn vth_magnitude(&self) -> f64 {
        self.vto.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cards_have_expected_polarity_and_signs() {
        let n = MosfetModelCard::nmos_035um();
        let p = MosfetModelCard::pmos_035um();
        assert_eq!(n.polarity, MosfetPolarity::Nmos);
        assert_eq!(p.polarity, MosfetPolarity::Pmos);
        assert!(n.vto > 0.0);
        assert!(p.vto < 0.0);
        assert!(n.kp > p.kp, "electron mobility exceeds hole mobility");
        assert_eq!(n.polarity.sign(), 1.0);
        assert_eq!(p.polarity.sign(), -1.0);
    }

    #[test]
    fn perturbed_shifts_vto_and_scales_kp() {
        let n = MosfetModelCard::nmos_035um();
        let p = n.perturbed(0.02, 1.05);
        assert!((p.vto - (n.vto + 0.02)).abs() < 1e-12);
        assert!((p.kp - n.kp * 1.05).abs() < 1e-12);
        // Other fields untouched.
        assert_eq!(p.cox, n.cox);
        assert_eq!(p.name, n.name);
    }

    #[test]
    fn vth_magnitude_is_positive_for_both_polarities() {
        assert!(MosfetModelCard::nmos_035um().vth_magnitude() > 0.0);
        assert!(MosfetModelCard::pmos_035um().vth_magnitude() > 0.0);
    }

    #[test]
    fn model_cards_serialize_roundtrip() {
        let n = MosfetModelCard::nmos_035um();
        let json = serde_json::to_string(&n).expect("serialize");
        let back: MosfetModelCard = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, n);
    }
}
