//! Circuit nodes and the node table.
//!
//! Nodes are interned: the circuit stores each distinct node name once and
//! hands out copyable [`NodeId`] handles. The ground node (`"0"` or `"gnd"`)
//! always maps to [`NodeId::GROUND`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a circuit node.
///
/// `NodeId::GROUND` is the reference node; every other node receives a dense
/// index starting at 1, which the MNA assembler in `ayb-sim` maps directly to
/// matrix rows (`index - 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The global reference (ground) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Dense index of the node (ground is 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interning table mapping node names to [`NodeId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeTable {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
}

impl NodeTable {
    /// Creates a table containing only the ground node.
    pub fn new() -> Self {
        let mut table = NodeTable {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        table.names.push("0".to_string());
        table.by_name.insert("0".to_string(), NodeId::GROUND);
        table.by_name.insert("gnd".to_string(), NodeId::GROUND);
        table
    }

    /// Returns the id for `name`, interning it if necessary.
    ///
    /// The names `"0"`, `"gnd"` and `"vss!"` alias the ground node.
    pub fn intern(&mut self, name: &str) -> NodeId {
        let key = Self::canonical(name);
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = NodeId(self.names.len() as u32);
        self.names.push(key.clone());
        self.by_name.insert(key, id);
        id
    }

    /// Looks up an existing node by name without interning.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(&Self::canonical(name)).copied()
    }

    /// Name of a node id. Ground is reported as `"0"`.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of nodes including ground.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when only the ground node exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Number of non-ground nodes (the MNA unknown count before sources).
    pub fn unknown_count(&self) -> usize {
        self.names.len() - 1
    }

    /// Iterates over all node ids including ground.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    fn canonical(name: &str) -> String {
        let lower = name.trim().to_ascii_lowercase();
        if lower == "gnd" || lower == "vss!" || lower == "0" {
            "0".to_string()
        } else {
            lower
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases_map_to_node_zero() {
        let mut table = NodeTable::new();
        assert_eq!(table.intern("0"), NodeId::GROUND);
        assert_eq!(table.intern("gnd"), NodeId::GROUND);
        assert_eq!(table.intern("GND"), NodeId::GROUND);
        assert!(table.intern("gnd").is_ground());
    }

    #[test]
    fn interning_is_idempotent_and_case_insensitive() {
        let mut table = NodeTable::new();
        let a = table.intern("OUT");
        let b = table.intern("out");
        assert_eq!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.unknown_count(), 1);
        assert_eq!(table.name(a), "out");
    }

    #[test]
    fn distinct_names_get_distinct_dense_indices() {
        let mut table = NodeTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        let c = table.intern("c");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.index(), 3);
        assert_eq!(table.unknown_count(), 3);
    }

    #[test]
    fn get_does_not_intern() {
        let mut table = NodeTable::new();
        assert!(table.get("x").is_none());
        table.intern("x");
        assert!(table.get("X").is_some());
    }
}
