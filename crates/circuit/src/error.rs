//! Error types for circuit construction and netlist parsing.

use std::fmt;

/// Errors produced while building, validating or parsing a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An instance with the same name already exists in the circuit.
    DuplicateInstance(String),
    /// A referenced node name is empty or otherwise invalid.
    InvalidNode(String),
    /// A referenced MOSFET model card was not registered in the circuit.
    UnknownModel(String),
    /// A device value (resistance, capacitance, width, ...) is non-physical.
    InvalidValue {
        /// Instance the value belongs to.
        instance: String,
        /// Human readable description of the violated constraint.
        reason: String,
    },
    /// The circuit failed a structural validation check.
    Validation(String),
    /// A SPICE-like netlist line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the parse failure.
        reason: String,
    },
    /// A designable parameter was outside its declared bounds.
    ParameterOutOfBounds {
        /// Name of the parameter.
        name: String,
        /// Offending value.
        value: f64,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// A parameter name was not found in a [`ParameterSet`](crate::ParameterSet).
    UnknownParameter(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateInstance(name) => {
                write!(f, "duplicate instance name `{name}`")
            }
            CircuitError::InvalidNode(name) => write!(f, "invalid node name `{name}`"),
            CircuitError::UnknownModel(name) => write!(f, "unknown MOSFET model `{name}`"),
            CircuitError::InvalidValue { instance, reason } => {
                write!(f, "invalid value on instance `{instance}`: {reason}")
            }
            CircuitError::Validation(reason) => write!(f, "circuit validation failed: {reason}"),
            CircuitError::Parse { line, reason } => {
                write!(f, "netlist parse error at line {line}: {reason}")
            }
            CircuitError::ParameterOutOfBounds {
                name,
                value,
                lower,
                upper,
            } => write!(
                f,
                "parameter `{name}` value {value} outside bounds [{lower}, {upper}]"
            ),
            CircuitError::UnknownParameter(name) => write!(f, "unknown parameter `{name}`"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = CircuitError::DuplicateInstance("m1".into());
        assert!(err.to_string().contains("m1"));
        let err = CircuitError::ParameterOutOfBounds {
            name: "w1".into(),
            value: 99.0,
            lower: 1.0,
            upper: 10.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("w1") && msg.contains("99"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CircuitError>();
    }
}
