//! # ayb-jobs — a job server over the run store
//!
//! [`JobServer`] turns the persistent run store (`ayb_store`) into a work
//! queue: runs are *submitted* (written to the store with status
//! [`RunStatus::Queued`], by `ayb submit` or [`JobServer::submit`]) and a
//! pool of worker threads claims and executes them with
//! `ayb_core::FlowBuilder::resume`, checkpointing every optimiser generation.
//! The store stays the single source of truth — the server keeps no state
//! that is not reconstructible from disk, so any number of server processes
//! can share one store and a killed server loses nothing.
//!
//! The guarantees, in order of importance:
//!
//! * **exactly-once execution** — a worker only runs a job it has *claimed*
//!   (an atomic `claim.json` lock file, see [`ayb_store::RunHandle::try_claim`]);
//!   two workers, or two whole server processes, racing for the same run see
//!   exactly one winner, and the loser just moves on;
//! * **crash recovery** — at startup ([`JobServer::run`]) and periodically
//!   thereafter ([`JobServerConfig::recovery_interval`]) the server
//!   re-queues `Interrupted` runs and stale `Running` runs (their claim
//!   holder is dead, or they have no claim and have not been touched
//!   recently), so even work stranded by a peer that died *after* this
//!   server started is adopted; each resumes from its latest checkpoint and
//!   produces a result **bit-identical** to an uninterrupted run of the
//!   same seed;
//! * **graceful shutdown** — [`ShutdownHandle::shutdown`] stops every
//!   in-flight run at its next checkpoint boundary (via
//!   `FlowBuilder::halt_when` and the optimiser's `CheckpointSink` halt
//!   mechanism), leaving runs `Interrupted` and immediately resumable;
//! * **determinism under concurrency** — worker count and scheduling order
//!   never change any run's result: every run is seeded from its manifest
//!   and executed in isolation, so N runs through a multi-worker server
//!   digest identically to the same seeds run sequentially.
//!
//! Beyond whole runs (the control plane), workers also service the **shard
//! data plane**: sharded flows publish each optimiser population — and each
//! Pareto point of the Monte Carlo variation stage — as claimable, typed
//! shard tasks (see `ayb_store::shards`), and idle workers service them
//! *shard-first* — before taking new runs — so every in-flight run keeps
//! progressing even when all run-executing workers are occupied. A server
//! started with [`JobServerConfig::shards_only`] (`ayb serve --shards-only`)
//! is a pure shard worker: extra machines sharing the store run in this mode
//! to scale one flow's batch evaluation and variation analysis.
//!
//! A drain-mode server over an empty store starts, scans and returns
//! immediately — the smallest possible end-to-end example:
//!
//! ```
//! use ayb_jobs::{JobServer, JobServerConfig};
//! use ayb_store::Store;
//!
//! # fn main() -> Result<(), ayb_jobs::JobError> {
//! let root = std::env::temp_dir().join(format!("ayb-jobs-doc-{}", std::process::id()));
//! let server = JobServer::new(Store::open(&root)?, JobServerConfig::drain_with_workers(2));
//! let report = server.run()?; // nothing queued: drains instantly
//! assert!(report.completed.is_empty() && report.failed.is_empty());
//! # let _ = std::fs::remove_dir_all(root);
//! # Ok(())
//! # }
//! ```
//!
//! Submitting real work looks like this (not run here — it executes whole
//! flows):
//!
//! ```no_run
//! use ayb_core::FlowConfig;
//! use ayb_jobs::{JobServer, JobServerConfig};
//! use ayb_moo::OptimizerConfig;
//! use ayb_store::Store;
//!
//! # fn main() -> Result<(), ayb_jobs::JobError> {
//! let store = Store::open("./ayb-store")?;
//! let config = FlowConfig::reduced();
//! let server = JobServer::new(store, JobServerConfig::drain_with_workers(2));
//! for seed in [1, 2, 3] {
//!     let optimizer = OptimizerConfig::Wbga(config.ga).with_seed(seed);
//!     server.submit(seed, &optimizer, &config)?;
//! }
//! let report = server.run()?; // executes all three, then returns
//! println!("completed: {:?}", report.completed);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod sched;

pub use sched::{Priority, QueuePolicy, RunQueue, TenantPolicy, WrrQueue};

use ayb_core::{AybError, FlowBuilder, FlowConfig, FlowObserver, OtaSizingProblem};
use ayb_moo::{CheckpointError, OptimizerConfig, SizingProblem};
use ayb_net::{ClaimPulse, NetShardTask, TcpTransport};
use ayb_obs::{Event, Recorder, Severity};
use ayb_store::{
    Manifest, RunHandle, RunStatus, ShardOutcome, ShardWork, ShardWorkKind, Store, StoreError,
    VariationOutcome,
};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Errors produced by the job server (all wrap the store layer — flow errors
/// of individual runs are *reported*, not propagated, so one failing run
/// never takes the server down).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// A store operation failed.
    Store(StoreError),
    /// The configured coordinator URL ([`JobServerConfig::transport`]) is
    /// malformed. (An unreachable-but-well-formed coordinator is *not* an
    /// error: workers simply find no network shards until it comes up.)
    Transport(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Store(e) => write!(f, "job server store error: {e}"),
            JobError::Transport(e) => write!(f, "job server transport error: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Store(e) => Some(e),
            JobError::Transport(_) => None,
        }
    }
}

impl From<StoreError> for JobError {
    fn from(e: StoreError) -> Self {
        JobError::Store(e)
    }
}

/// Configuration of a [`JobServer`].
#[derive(Debug, Clone)]
pub struct JobServerConfig {
    /// Number of worker threads executing runs concurrently (min 1). Each
    /// run additionally parallelises its own batch evaluation with the
    /// `threads` recorded in its manifest.
    pub workers: usize,
    /// How often the server re-scans the store for newly submitted runs
    /// (worker completions wake it early).
    pub poll_interval: Duration,
    /// When `true`, [`JobServer::run`] returns once the queue is empty and
    /// every worker is idle (batch mode, used by `ayb serve --drain` and the
    /// tests). When `false` it serves until [`ShutdownHandle::shutdown`].
    pub drain: bool,
    /// Label recorded in claim files (`<owner>/worker-N`) for diagnostics.
    pub owner: String,
    /// How recently a claimless `Running` run's manifest must have been
    /// updated for recovery to leave it alone (it may be mid-creation).
    /// Claimed runs use the claim holder's liveness instead.
    pub reclaim_grace: Duration,
    /// How often a long-lived (non-drain) server repeats the recovery pass,
    /// so runs stranded *after* startup — a peer server shut down or died —
    /// are picked up without waiting for a restart.
    pub recovery_interval: Duration,
    /// When `true` (the default), idle workers service shard evaluation
    /// tasks of sharded flows — *shard-first*: the data plane is always
    /// drained before a worker takes new control-plane work, so a fleet
    /// whose workers all hold runs still makes evaluation progress.
    pub service_shards: bool,
    /// When `true`, the server never claims whole runs — it is a pure
    /// evaluation worker servicing shard tasks (`ayb serve --shards-only`).
    /// Extra machines sharing the store run in this mode to scale a sharded
    /// flow's batch evaluation without competing for run claims.
    pub shards_only: bool,
    /// Coordinator URL (`tcp://host:port`) of a network shard data plane
    /// (see the `ayb_net` crate). When set, workers also poll the
    /// coordinator for network shard tasks — *store-free*: each task carries
    /// its submitter's flow configuration, so a worker machine needs no
    /// filesystem shared with the submitter (`ayb serve --transport
    /// tcp://…`). `None` (the default) services the on-disk plane only.
    pub transport: Option<String>,
    /// How queued runs are ordered for dispatch: the historical global FIFO
    /// ([`QueuePolicy::Fifo`], the default), or weighted round-robin across
    /// tenants with priority lanes ([`QueuePolicy::WeightedTenant`], used by
    /// the `ayb-svc` service plane). Tenant and priority come from the
    /// optional `tenant`/`priority` keys of each run's manifest; runs
    /// without them dispatch as tenant `default` at normal priority.
    pub queue_policy: QueuePolicy,
}

impl Default for JobServerConfig {
    fn default() -> Self {
        JobServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(200),
            drain: false,
            owner: format!("ayb-serve-{}", std::process::id()),
            reclaim_grace: Duration::from_secs(30),
            recovery_interval: Duration::from_secs(30),
            service_shards: true,
            shards_only: false,
            transport: None,
            queue_policy: QueuePolicy::Fifo,
        }
    }
}

impl JobServerConfig {
    /// Batch-mode configuration: `workers` threads, exit when idle.
    pub fn drain_with_workers(workers: usize) -> Self {
        JobServerConfig {
            workers,
            drain: true,
            ..JobServerConfig::default()
        }
    }

    /// Pure evaluation-worker configuration: `workers` threads servicing
    /// shard tasks only, never claiming whole runs.
    pub fn shards_only_with_workers(workers: usize) -> Self {
        JobServerConfig {
            workers,
            shards_only: true,
            ..JobServerConfig::default()
        }
    }
}

/// Progress notifications emitted by the server (see
/// [`JobServer::set_event_hook`]).
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// Recovery re-queued an interrupted or stale-running run at startup.
    Requeued {
        /// The run.
        run_id: String,
        /// Status the run had before it was re-queued.
        from: RunStatus,
    },
    /// A queued run was picked up into the in-memory FIFO.
    Enqueued {
        /// The run.
        run_id: String,
    },
    /// A worker started (or resumed) executing a run.
    Started {
        /// The run.
        run_id: String,
        /// Index of the executing worker.
        worker: usize,
    },
    /// A per-generation checkpoint of an executing run was persisted.
    CheckpointWritten {
        /// The run.
        run_id: String,
        /// The checkpoint's generation index.
        generation: usize,
    },
    /// A run finished; its result and `Completed` status are on disk.
    Completed {
        /// The run.
        run_id: String,
        /// Index of the executing worker.
        worker: usize,
        /// The result's determinism digest.
        digest: u64,
    },
    /// A run halted gracefully at a checkpoint boundary (server shutdown);
    /// it is `Interrupted` on disk and will resume on the next start.
    Interrupted {
        /// The run.
        run_id: String,
        /// Index of the executing worker.
        worker: usize,
    },
    /// A worker skipped a run: another process claimed it first, or it
    /// already has a result.
    Skipped {
        /// The run.
        run_id: String,
        /// Index of the worker that skipped.
        worker: usize,
        /// Why the run was skipped.
        reason: String,
    },
    /// A run failed; its `Failed` status is on disk.
    Failed {
        /// The run.
        run_id: String,
        /// Index of the executing worker.
        worker: usize,
        /// The flow error.
        message: String,
    },
    /// A worker serviced one shard of a sharded flow (the data plane; see
    /// `ayb_store::shards`) — a population-evaluation shard or a variation
    /// (Monte Carlo) point, per `work`.
    ShardServiced {
        /// The run whose batch the shard belongs to.
        run_id: String,
        /// The epoch (one optimiser batch, or one variation stage).
        epoch: String,
        /// The shard's index within its epoch.
        shard: usize,
        /// The kind of work the shard carried.
        work: ShardWorkKind,
        /// Number of candidates evaluated (evaluation shards) or `1` (a
        /// variation shard is one Pareto point).
        candidates: usize,
        /// Index of the servicing worker.
        worker: usize,
    },
}

impl JobEvent {
    /// The run this event concerns.
    pub fn run_id(&self) -> &str {
        match self {
            JobEvent::Requeued { run_id, .. }
            | JobEvent::Enqueued { run_id }
            | JobEvent::Started { run_id, .. }
            | JobEvent::CheckpointWritten { run_id, .. }
            | JobEvent::Completed { run_id, .. }
            | JobEvent::Interrupted { run_id, .. }
            | JobEvent::Skipped { run_id, .. }
            | JobEvent::Failed { run_id, .. }
            | JobEvent::ShardServiced { run_id, .. } => run_id,
        }
    }
}

/// Maps a [`JobEvent`] onto a structured telemetry event (`job_*` kinds,
/// source `jobs`), carrying the run id and — for shard service — the shard
/// coordinates.
fn job_obs_event(event: &JobEvent) -> Event {
    let (severity, kind) = match event {
        JobEvent::Requeued { .. } => (Severity::Warn, "job_requeued"),
        JobEvent::Enqueued { .. } => (Severity::Info, "job_enqueued"),
        JobEvent::Started { .. } => (Severity::Info, "job_started"),
        JobEvent::CheckpointWritten { .. } => (Severity::Debug, "job_checkpoint"),
        JobEvent::Completed { .. } => (Severity::Info, "job_completed"),
        JobEvent::Interrupted { .. } => (Severity::Warn, "job_interrupted"),
        JobEvent::Skipped { .. } => (Severity::Info, "job_skipped"),
        JobEvent::Failed { .. } => (Severity::Error, "job_failed"),
        JobEvent::ShardServiced { .. } => (Severity::Info, "job_shard_serviced"),
    };
    let out = Event::new(severity, "jobs", kind).run(event.run_id());
    match event {
        JobEvent::Requeued { from, .. } => out.detail(format!("re-queued from {from:?}")),
        JobEvent::Started { worker, .. } => out.detail(format!("worker {worker}")),
        JobEvent::CheckpointWritten { generation, .. } => out.value(*generation as f64),
        JobEvent::Completed { worker, digest, .. } => {
            out.detail(format!("worker {worker}, digest {digest:016x}"))
        }
        JobEvent::Interrupted { worker, .. } => out.detail(format!("worker {worker}")),
        JobEvent::Skipped { worker, reason, .. } => {
            out.detail(format!("worker {worker}: {reason}"))
        }
        JobEvent::Failed {
            worker, message, ..
        } => out.detail(format!("worker {worker}: {message}")),
        JobEvent::ShardServiced {
            epoch,
            shard,
            work,
            candidates,
            worker,
            ..
        } => {
            let what = match work {
                ShardWorkKind::Eval => {
                    format!("serviced shard {shard} of {epoch} ({candidates} candidates)")
                }
                ShardWorkKind::Variation => {
                    format!("serviced variation point {shard} of {epoch}")
                }
            };
            out.epoch(epoch)
                .shard(*shard as u64)
                .value(*candidates as f64)
                .detail(format!("worker {worker} {what}"))
        }
        JobEvent::Enqueued { .. } => out,
    }
}

/// Summary of one [`JobServer::run`] invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Runs that completed (result + `Completed` status on disk).
    pub completed: Vec<String>,
    /// Runs halted gracefully by shutdown (resumable, `Interrupted`).
    pub interrupted: Vec<String>,
    /// Runs that failed.
    pub failed: Vec<String>,
    /// Runs skipped because another process claimed them first (or they
    /// were already completed).
    pub skipped: Vec<String>,
    /// Runs re-queued by startup recovery.
    pub requeued: Vec<String>,
    /// Number of shard evaluation tasks serviced (the data plane).
    pub shards_serviced: usize,
    /// Number of shard results discarded because this server's claim was
    /// stolen mid-service (the fence check refused the late write).
    pub shards_fenced: usize,
}

impl JobReport {
    /// Number of runs this server actually executed (to any terminal state).
    pub fn executed(&self) -> usize {
        self.completed.len() + self.interrupted.len() + self.failed.len()
    }
}

/// Requests a graceful stop of a running [`JobServer`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Stops the server: workers take no new runs, every in-flight run halts
    /// at its next checkpoint boundary (status `Interrupted`, claim
    /// released), and [`JobServer::run`] returns once all workers are done.
    pub fn shutdown(&self) {
        self.shared.halt_runs.store(true, Ordering::SeqCst);
        self.shared.signal_stop();
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.stop_workers.load(Ordering::SeqCst)
    }
}

type EventHook = Box<dyn Fn(&JobEvent) + Send + Sync>;

struct QueueState {
    /// Run ids waiting for a worker, ordered by the configured
    /// [`QueuePolicy`].
    queue: RunQueue,
    /// Every id this server has ever enqueued (so the poll scan never
    /// enqueues a run twice, including runs another process is executing).
    seen: HashSet<String>,
    /// Number of workers currently executing a run.
    busy: usize,
}

struct Shared {
    store: Store,
    queue: Mutex<QueueState>,
    wake: Condvar,
    /// Workers stop taking new runs (drain finished or shutdown requested).
    stop_workers: AtomicBool,
    /// In-flight flows halt at their next checkpoint (shutdown only).
    halt_runs: Arc<AtomicBool>,
    events: Mutex<Option<EventHook>>,
    /// Telemetry: every [`JobEvent`] lands here as a structured event (and
    /// a per-kind counter), and workers' flows record through it too.
    recorder: Recorder,
}

impl Shared {
    fn emit(&self, event: JobEvent) {
        self.recorder.emit(job_obs_event(&event));
        if let Some(hook) = &*self.events.lock().expect("event hook lock") {
            hook(&event);
        }
    }

    /// Raises `stop_workers` *while holding the queue mutex*, then notifies.
    /// Workers check the flag under the same mutex before waiting, so the
    /// store-then-notify can never slip into the gap between a worker's
    /// check and its `wait` — a plain atomic store there would be a classic
    /// lost wakeup, hanging `run()` forever.
    fn signal_stop(&self) {
        let _state = self.queue.lock().expect("queue lock");
        self.stop_workers.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }
}

/// Forwards per-run flow progress into [`JobEvent`]s.
struct RunEvents {
    shared: Arc<Shared>,
    run_id: String,
}

impl FlowObserver for RunEvents {
    fn on_checkpoint_written(&mut self, generation: usize, _path: &Path) {
        self.shared.emit(JobEvent::CheckpointWritten {
            run_id: self.run_id.clone(),
            generation,
        });
    }
}

/// What one worker execution of one run amounted to.
enum Outcome {
    Completed(u64),
    Interrupted,
    Skipped(String),
    Failed(String),
}

/// A FIFO queue + worker pool executing durable runs from a [`Store`].
///
/// See the crate docs for the execution and recovery guarantees. The server
/// is driven by [`JobServer::run`], which blocks until drained (batch mode)
/// or shut down via [`JobServer::shutdown_handle`].
pub struct JobServer {
    shared: Arc<Shared>,
    config: JobServerConfig,
}

impl JobServer {
    /// Creates a server over `store` (no threads start until
    /// [`JobServer::run`]).
    pub fn new(store: Store, config: JobServerConfig) -> Self {
        JobServer::new_with_recorder(store, config, Recorder::new())
    }

    /// [`JobServer::new`] recording into a caller-supplied [`Recorder`]
    /// instead of a fresh one — an embedding layer (the `ayb-svc` HTTP
    /// front-end) shares one metrics registry and event ring across its own
    /// plane and the job server's.
    pub fn new_with_recorder(store: Store, config: JobServerConfig, recorder: Recorder) -> Self {
        JobServer {
            shared: Arc::new(Shared {
                store,
                queue: Mutex::new(QueueState {
                    queue: RunQueue::from_policy(&config.queue_policy),
                    seen: HashSet::new(),
                    busy: 0,
                }),
                wake: Condvar::new(),
                stop_workers: AtomicBool::new(false),
                halt_runs: Arc::new(AtomicBool::new(false)),
                events: Mutex::new(None),
                recorder,
            }),
            config,
        }
    }

    /// The server's event recorder: every [`JobEvent`] is mirrored into it
    /// as a structured event, and each worker's flow records through it
    /// (durable runs still persist their own `events.jsonl`). Attach a sink
    /// (e.g. [`ayb_obs::StderrSink`]) to surface the stream.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// The store this server executes from.
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// Registers a callback receiving every [`JobEvent`] (replacing any
    /// previous hook). The hook is called from server and worker threads.
    pub fn set_event_hook(&self, hook: impl Fn(&JobEvent) + Send + Sync + 'static) {
        *self.shared.events.lock().expect("event hook lock") = Some(Box::new(hook));
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits a run: records it in the store with status
    /// [`RunStatus::Queued`] and returns its id. Any server process polling
    /// the same store (including this one, once running) will execute it.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Store`] when the run cannot be recorded.
    pub fn submit<C: Serialize>(
        &self,
        seed: u64,
        optimizer: &OptimizerConfig,
        flow: &C,
    ) -> Result<String, JobError> {
        let handle = self.shared.store.enqueue_run(seed, optimizer, flow)?;
        Ok(handle.id().to_string())
    }

    /// Withdraws a run from this server's dispatch queue so no worker will
    /// ever execute it, returning `true` when that is now guaranteed: the
    /// run was removed from the in-memory queue, or it had not been scanned
    /// in yet and is now permanently excluded. Returns `false` when a worker
    /// already dispatched it (it may be executing right now) — the caller
    /// decides what an in-flight cancellation means.
    ///
    /// The caller is responsible for the run's *durable* state (e.g. marking
    /// it [`RunStatus::Failed`] in the store); this method only controls
    /// this server's scheduling. Only call it for runs known to be queued:
    /// for an id this server never saw *and* never will (a completed
    /// stranger), the exclusion is recorded but meaningless.
    pub fn cancel_queued(&self, run_id: &str) -> bool {
        let mut state = self.shared.queue.lock().expect("queue lock");
        if state.queue.remove(run_id) {
            return true;
        }
        // Not in the queue: either never scanned in (insert returns true —
        // the `seen` entry blocks any future enqueue) or already dispatched
        // (insert returns false — too late to cancel the dispatch).
        state.seen.insert(run_id.to_string())
    }

    /// Runs the server: recovery pass, then worker pool + queue polling.
    ///
    /// Blocks until the queue is drained (with
    /// [`JobServerConfig::drain`]) or [`ShutdownHandle::shutdown`] is
    /// called, then joins all workers and returns what happened.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Store`] when the store itself becomes unusable
    /// (individual run failures are reported in the [`JobReport`] instead).
    pub fn run(&self) -> Result<JobReport, JobError> {
        let report = Mutex::new(JobReport::default());
        // A malformed coordinator URL fails fast, before any thread starts;
        // an unreachable coordinator does not (workers just poll into the
        // void until it comes up — that is the fleet's normal startup order).
        let net = match &self.config.transport {
            Some(url) => Some(TcpTransport::from_url(url).map_err(JobError::Transport)?),
            None => None,
        };
        if !self.config.shards_only {
            self.recover_and_requeue(&report)?;
        }

        let outcome = std::thread::scope(|scope| {
            for worker in 0..self.config.workers.max(1) {
                let shared = Arc::clone(&self.shared);
                let config = self.config.clone();
                let net = net.clone();
                let report = &report;
                scope.spawn(move || worker_loop(&shared, &config, worker, net.as_ref(), report));
            }
            let result = self.serve_loop(net.as_ref(), &report);
            // Drain finished or shutdown requested (or the store broke):
            // stop the workers either way, then let the scope join them.
            self.shared.signal_stop();
            result
        });
        outcome?;
        Ok(report.into_inner().expect("report lock"))
    }

    /// Runs a recovery pass and makes its re-queued runs eligible for this
    /// server's own queue again (they may have been `seen` in a previous
    /// life, e.g. skipped because a peer held their claim).
    fn recover_and_requeue(&self, report: &Mutex<JobReport>) -> Result<(), JobError> {
        let requeued = self.recover()?;
        if requeued.is_empty() {
            return Ok(());
        }
        {
            let mut state = self.shared.queue.lock().expect("queue lock");
            for id in &requeued {
                state.seen.remove(id);
            }
        }
        report
            .lock()
            .expect("report lock")
            .requeued
            .extend(requeued);
        Ok(())
    }

    /// The management loop: scan for queued runs, feed the workers, decide
    /// when a drain-mode server is done. Long-lived servers also repeat the
    /// recovery pass every [`JobServerConfig::recovery_interval`] so work
    /// stranded by a dead or shut-down peer is adopted without a restart.
    fn serve_loop(
        &self,
        net: Option<&TcpTransport>,
        report: &Mutex<JobReport>,
    ) -> Result<(), JobError> {
        // Terminal runs are remembered so each poll reads only live
        // manifests — a store full of old completed runs costs one scan,
        // not one scan per tick.
        let mut terminal = HashSet::new();
        let mut last_recovery = std::time::Instant::now();
        loop {
            if !self.config.drain
                && !self.config.shards_only
                && last_recovery.elapsed() >= self.config.recovery_interval
            {
                self.recover_and_requeue(report)?;
                last_recovery = std::time::Instant::now();
            }
            let mut no_new_work = true;
            let (queue_empty, busy) = if self.config.shards_only {
                let state = self.shared.queue.lock().expect("queue lock");
                (true, state.busy)
            } else {
                let scan = self.shared.store.poll_queued(&mut terminal)?;
                // Tenant/priority metadata lives in each run's manifest;
                // read it *outside* the queue lock (the first scan of a
                // loaded store may carry thousands of fresh runs, and
                // workers must not stall on that file I/O). The FIFO policy
                // is tenant-blind and skips the reads entirely.
                let needs_meta =
                    matches!(self.config.queue_policy, QueuePolicy::WeightedTenant { .. });
                let unseen: Vec<String> = {
                    let state = self.shared.queue.lock().expect("queue lock");
                    scan.into_iter()
                        .filter(|id| !state.seen.contains(id))
                        .collect()
                };
                let annotated: Vec<(String, String, Priority)> = unseen
                    .into_iter()
                    .map(|id| {
                        let (tenant, priority) = if needs_meta {
                            run_dispatch_meta(&self.shared.store, &id)
                        } else {
                            (String::new(), Priority::Normal)
                        };
                        (id, tenant, priority)
                    })
                    .collect();
                let mut fresh = Vec::new();
                let snapshot = {
                    let mut state = self.shared.queue.lock().expect("queue lock");
                    for (id, tenant, priority) in annotated {
                        if state.seen.insert(id.clone()) {
                            state.queue.push(id.clone(), &tenant, priority);
                            fresh.push(id);
                        }
                    }
                    let metrics = self.shared.recorder.metrics();
                    metrics.set_gauge("ayb_job_queue_depth", state.queue.len() as f64);
                    metrics.set_gauge("ayb_job_busy_workers", state.busy as f64);
                    (state.queue.is_empty(), state.busy)
                };
                no_new_work = fresh.is_empty();
                if !no_new_work {
                    self.shared.wake.notify_all();
                }
                for id in fresh {
                    self.shared.emit(JobEvent::Enqueued { run_id: id });
                }
                snapshot
            };
            if self.shared.stop_workers.load(Ordering::SeqCst) {
                return Ok(());
            }
            if self.config.drain && no_new_work && queue_empty && busy == 0 {
                // A shards-only (or shard-servicing) drain server is done
                // only when the data plane is drained too — the on-disk one
                // and, with a transport configured, the coordinator's (an
                // unreachable coordinator counts as drained: there is
                // nothing this server could service there anyway).
                let disk_drained =
                    !self.config.service_shards || self.shared.store.open_shard_tasks()?.is_empty();
                let net_drained = match net {
                    Some(net) => net
                        .coordinator_stats()
                        .map(|stats| stats.open_shards == 0)
                        .unwrap_or(true),
                    None => true,
                };
                if disk_drained && net_drained {
                    return Ok(());
                }
            }
            let state = self.shared.queue.lock().expect("queue lock");
            let _ = self
                .shared
                .wake
                .wait_timeout(state, self.config.poll_interval)
                .expect("queue lock");
        }
    }

    /// Startup recovery: release claims whose holder died, and re-queue
    /// every resumable run — `Interrupted` ones and `Running` ones whose
    /// executor is provably gone. Returns the re-queued ids.
    fn recover(&self) -> Result<Vec<String>, JobError> {
        let mut requeued = Vec::new();
        for id in self.shared.store.run_ids()? {
            let Ok(handle) = self.shared.store.run(&id) else {
                continue; // torn creation: directory without a manifest
            };
            let Ok(status) = handle.status() else {
                continue;
            };
            match status {
                RunStatus::Completed | RunStatus::Failed => continue,
                RunStatus::Queued => {
                    // A worker killed between claiming and starting leaves a
                    // stale claim on a still-queued run; break it (the break
                    // is compare-and-delete, so a claim legitimately
                    // re-taken in the window survives).
                    if let Ok(Some(stale)) = handle.stale_claim(self.config.reclaim_grace) {
                        let _ = handle.break_claim(&stale);
                    }
                }
                RunStatus::Running | RunStatus::Interrupted => {
                    if handle.has_result() {
                        continue; // completed but died before the status flip
                    }
                    match handle.claim() {
                        Ok(Some(_)) => {
                            // Claimed: recover any stalled holder — a dead
                            // pid, a lapsed foreign-host heartbeat, or an
                            // alive-but-hung process whose heartbeat went
                            // quiet. Stealing from a hung-but-alive holder is
                            // safe now that run claims carry fencing tokens:
                            // if the zombie wakes, its fenced-off writes are
                            // discarded, not merged. The break is
                            // compare-and-delete: a lost race means another
                            // recovery pass (or its worker) already owns this
                            // run.
                            let stale = match handle.stalled_claim(self.config.reclaim_grace) {
                                Ok(Some(stale)) => stale,
                                _ => continue,
                            };
                            if !handle.break_claim(&stale).unwrap_or(false) {
                                continue;
                            }
                        }
                        Ok(None) if status == RunStatus::Running => {
                            // No claim on a Running run: a dead executor —
                            // unless the manifest is fresh enough that its
                            // creator may still be inside the create→claim
                            // window.
                            if manifest_age_secs(&handle) < self.config.reclaim_grace.as_secs() {
                                continue;
                            }
                        }
                        Ok(None) => {}
                        Err(_) => continue,
                    }
                    if handle.set_status(RunStatus::Queued).is_ok() {
                        self.shared.emit(JobEvent::Requeued {
                            run_id: id.clone(),
                            from: status,
                        });
                        requeued.push(id);
                    }
                }
            }
        }
        Ok(requeued)
    }
}

/// The tenant and priority a queued run dispatches under, from the optional
/// `tenant`/`priority` extras of its manifest (written by the service plane
/// at submission). Runs without them — every directly `ayb submit`ted run —
/// dispatch as tenant `default` at normal priority; an unreadable manifest
/// does too, so a torn write degrades scheduling, never dispatch.
fn run_dispatch_meta(store: &Store, run_id: &str) -> (String, Priority) {
    let value = store
        .run(run_id)
        .ok()
        .and_then(|handle| handle.manifest_value().ok());
    let tenant = value
        .as_ref()
        .and_then(|v| v.get("tenant"))
        .and_then(|v| String::from_value(v).ok())
        .unwrap_or_else(|| "default".to_string());
    let priority = value
        .as_ref()
        .and_then(|v| v.get("priority"))
        .and_then(|v| String::from_value(v).ok())
        .and_then(|name| Priority::parse(&name).ok())
        .unwrap_or_default();
    (tenant, priority)
}

/// Seconds since the run's manifest was last updated (0 when unreadable, so
/// unreadable manifests are treated as fresh and left alone).
fn manifest_age_secs(handle: &RunHandle) -> u64 {
    let updated = handle
        .manifest_value()
        .ok()
        .and_then(|value| value.get("updated_unix").cloned())
        .and_then(|value| u64::from_value(&value).ok());
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    match updated {
        Some(updated) => now.saturating_sub(updated),
        None => 0,
    }
}

fn worker_loop(
    shared: &Arc<Shared>,
    config: &JobServerConfig,
    worker: usize,
    net: Option<&TcpTransport>,
    report: &Mutex<JobReport>,
) {
    loop {
        if shared.stop_workers.load(Ordering::SeqCst) {
            return;
        }
        // Shard-first priority: drain the data plane before taking new
        // control-plane work. Runs executing on other workers (here or in
        // other processes) block on their shards; servicing those first
        // keeps every in-flight run progressing even when all run-executing
        // workers are occupied.
        if config.service_shards && service_one_shard(shared, config, worker, report) {
            continue;
        }
        // The network data plane gets the same priority: a coordinator task
        // is some run's in-flight population or variation point.
        if let Some(net) = net {
            if config.service_shards && service_one_net_shard(shared, config, worker, net, report) {
                continue;
            }
        }
        let run_id = {
            let mut state = shared.queue.lock().expect("queue lock");
            if shared.stop_workers.load(Ordering::SeqCst) {
                return;
            }
            let id = if config.shards_only {
                None
            } else {
                state.queue.pop()
            };
            match id {
                Some(id) => {
                    state.busy += 1;
                    id
                }
                None => {
                    // Idle: sleep until new work is signalled — but only
                    // with a timeout, because shard tasks appear on disk
                    // without any in-process notification.
                    let _ = shared
                        .wake
                        .wait_timeout(state, config.poll_interval)
                        .expect("queue lock");
                    continue;
                }
            }
        };
        let outcome = execute_run(shared, config, worker, &run_id);
        {
            let mut state = shared.queue.lock().expect("queue lock");
            // Release the WRR running slot whatever the outcome — a skipped
            // or failed run must not pin its tenant's cap forever.
            state.queue.finished(&run_id);
            state.busy -= 1;
        }
        shared.wake.notify_all();
        let mut report = report.lock().expect("report lock");
        match outcome {
            Outcome::Completed(digest) => {
                report.completed.push(run_id.clone());
                shared.emit(JobEvent::Completed {
                    run_id,
                    worker,
                    digest,
                });
            }
            Outcome::Interrupted => {
                report.interrupted.push(run_id.clone());
                shared.emit(JobEvent::Interrupted { run_id, worker });
            }
            Outcome::Skipped(reason) => {
                report.skipped.push(run_id.clone());
                shared.emit(JobEvent::Skipped {
                    run_id,
                    worker,
                    reason,
                });
            }
            Outcome::Failed(message) => {
                report.failed.push(run_id.clone());
                shared.emit(JobEvent::Failed {
                    run_id,
                    worker,
                    message,
                });
            }
        }
    }
}

/// Claims and services at most one shard task — a population-evaluation
/// shard or a variation (Monte Carlo) point — returning whether one was
/// serviced.
///
/// The problem (and, for variation shards, the full flow configuration) is
/// reconstructed from the owning run's manifest — identical to what the
/// submitting flow built, so a shard produces the same output whichever
/// process services it: evaluation shards through
/// `SizingProblem::evaluate_batch`, variation shards through
/// `ayb_core::analyse_variation_point` with the per-point seed carried in
/// the task.
fn service_one_shard(
    shared: &Arc<Shared>,
    config: &JobServerConfig,
    worker: usize,
    report: &Mutex<JobReport>,
) -> bool {
    let Ok(tasks) = shared.store.open_shard_tasks() else {
        return false;
    };
    for mut task in tasks {
        match task.try_claim(&format!("{}/worker-{}", config.owner, worker)) {
            Ok(true) => {}
            _ => continue,
        }
        {
            let mut state = shared.queue.lock().expect("queue lock");
            state.busy += 1;
        }
        // Heartbeat the shard claim while evaluating, so an aggressive
        // recovery pass never mistakes a slow evaluation for a dead worker.
        let heartbeat = task.start_claim_heartbeat(Duration::from_secs(1));
        let serviced = (|| {
            let work = match task.load_work() {
                Ok(Some(work)) => work,
                // The epoch was closed (or the task file is unreadable):
                // nothing to do.
                _ => return false,
            };
            let Some((problem, flow)) = shard_flow_setup(&shared.store, task.run_id()) else {
                return false;
            };
            let (outcome, candidates, kind) = match work {
                ShardWork::Eval { parameters } => {
                    let results = problem.evaluate_batch(&parameters);
                    (
                        ShardOutcome::Eval { results },
                        parameters.len(),
                        ShardWorkKind::Eval,
                    )
                }
                ShardWork::Variation {
                    parameters,
                    mc_seed,
                } => {
                    let t0 = std::time::Instant::now();
                    let data =
                        ayb_core::analyse_variation_point(&problem, &parameters, &flow, mc_seed);
                    let outcome = ShardOutcome::Variation(VariationOutcome {
                        data: data.as_ref().map(serde::Serialize::to_value),
                        elapsed_seconds: t0.elapsed().as_secs_f64(),
                    });
                    (outcome, 1, ShardWorkKind::Variation)
                }
                ShardWork::VariationBatch { points } => {
                    let outcomes: Vec<VariationOutcome> = points
                        .iter()
                        .map(|point| {
                            let t0 = std::time::Instant::now();
                            let data = ayb_core::analyse_variation_point(
                                &problem,
                                &point.parameters,
                                &flow,
                                point.mc_seed,
                            );
                            VariationOutcome {
                                data: data.as_ref().map(serde::Serialize::to_value),
                                elapsed_seconds: t0.elapsed().as_secs_f64(),
                            }
                        })
                        .collect();
                    let count = outcomes.len();
                    (
                        ShardOutcome::VariationBatch { points: outcomes },
                        count,
                        ShardWorkKind::Variation,
                    )
                }
            };
            match task.submit_outcome(&outcome) {
                Ok(true) => {}
                Ok(false) => {
                    // Fenced off: a recovery pass stole this claim
                    // mid-service and the successor's (identical) result is
                    // the authoritative one; ours is discarded.
                    report.lock().expect("report lock").shards_fenced += 1;
                    return false;
                }
                // Epoch closed mid-service: the submitter assembled the
                // stage without this shard; drop the result.
                Err(_) => return false,
            }
            shared.emit(JobEvent::ShardServiced {
                run_id: task.run_id().to_string(),
                epoch: task.epoch().to_string(),
                shard: task.shard(),
                work: kind,
                candidates,
                worker,
            });
            true
        })();
        drop(heartbeat);
        if !serviced {
            task.release();
        }
        {
            let mut state = shared.queue.lock().expect("queue lock");
            state.busy -= 1;
        }
        shared.wake.notify_all();
        if serviced {
            report.lock().expect("report lock").shards_serviced += 1;
            return true;
        }
    }
    false
}

/// Claims and services at most one *network* shard task from the
/// coordinator, returning whether one was serviced.
///
/// Unlike the on-disk plane, the task is self-contained: it carries the
/// submitting run's flow configuration, so the problem is rebuilt from the
/// task itself and the worker never touches the submitter's store — this is
/// what lets a fleet run with no shared filesystem at all. Determinism is
/// unchanged: the same configuration rebuilds the same problem whichever
/// machine services the shard.
fn service_one_net_shard(
    shared: &Arc<Shared>,
    config: &JobServerConfig,
    worker: usize,
    net: &TcpTransport,
    report: &Mutex<JobReport>,
) -> bool {
    let owner = format!("{}/worker-{}", config.owner, worker);
    let task = match net.claim_next(&owner) {
        Ok(Some(task)) => task,
        // Nothing claimable, or the coordinator is unreachable — either way
        // there is no network work for this worker right now.
        _ => return false,
    };
    {
        let mut state = shared.queue.lock().expect("queue lock");
        state.busy += 1;
    }
    // Heartbeat the claim while evaluating, so the coordinator's recovery
    // never mistakes a slow evaluation for a hung worker.
    let pulse = ClaimPulse::start(net.clone(), &task, Duration::from_secs(1));
    let serviced = service_net_task(shared, net, &task, worker, report);
    drop(pulse);
    // An abandoned claim needs no release call: once its heartbeat stops,
    // the coordinator's recovery expires it and the shard is re-claimable.
    {
        let mut state = shared.queue.lock().expect("queue lock");
        state.busy -= 1;
    }
    shared.wake.notify_all();
    if serviced {
        report.lock().expect("report lock").shards_serviced += 1;
    }
    serviced
}

/// Evaluates one claimed [`NetShardTask`] and submits its outcome under the
/// task's fencing token.
fn service_net_task(
    shared: &Arc<Shared>,
    net: &TcpTransport,
    task: &NetShardTask,
    worker: usize,
    report: &Mutex<JobReport>,
) -> bool {
    // A task without a usable flow configuration cannot be serviced here;
    // leave it to expire so the submitter's local fallback picks it up.
    let flow: FlowConfig = match task.context.as_ref().map(Deserialize::from_value) {
        Some(Ok(flow)) => flow,
        _ => return false,
    };
    let problem = OtaSizingProblem::new(flow.testbench, flow.sweep.clone())
        .with_threads(flow.threads)
        .with_solver(flow.solver);
    let (outcome, candidates, kind) = match &task.work {
        ShardWork::Eval { parameters } => (
            ShardOutcome::Eval {
                results: problem.evaluate_batch(parameters),
            },
            parameters.len(),
            ShardWorkKind::Eval,
        ),
        ShardWork::Variation {
            parameters,
            mc_seed,
        } => {
            let t0 = std::time::Instant::now();
            let data = ayb_core::analyse_variation_point(&problem, parameters, &flow, *mc_seed);
            (
                ShardOutcome::Variation(VariationOutcome {
                    data: data.as_ref().map(serde::Serialize::to_value),
                    elapsed_seconds: t0.elapsed().as_secs_f64(),
                }),
                1,
                ShardWorkKind::Variation,
            )
        }
        ShardWork::VariationBatch { points } => {
            let outcomes: Vec<VariationOutcome> = points
                .iter()
                .map(|point| {
                    let t0 = std::time::Instant::now();
                    let data = ayb_core::analyse_variation_point(
                        &problem,
                        &point.parameters,
                        &flow,
                        point.mc_seed,
                    );
                    VariationOutcome {
                        data: data.as_ref().map(serde::Serialize::to_value),
                        elapsed_seconds: t0.elapsed().as_secs_f64(),
                    }
                })
                .collect();
            let count = outcomes.len();
            (
                ShardOutcome::VariationBatch { points: outcomes },
                count,
                ShardWorkKind::Variation,
            )
        }
    };
    match net.submit_task(task, &outcome) {
        Ok(true) => {}
        Ok(false) => {
            // Fenced off: the coordinator presumed this worker hung and
            // re-issued the claim; the successor's (identical) result is the
            // authoritative one and ours was discarded.
            report.lock().expect("report lock").shards_fenced += 1;
            return false;
        }
        // Coordinator unreachable, or the epoch is already closed.
        Err(_) => return false,
    }
    shared.emit(JobEvent::ShardServiced {
        run_id: task.run_id.clone(),
        epoch: task.epoch.clone(),
        shard: task.shard,
        work: kind,
        candidates,
        worker,
    });
    true
}

/// Rebuilds the sizing problem (and flow configuration) a run's sharded flow
/// works with, from its manifest.
fn shard_flow_setup(store: &Store, run_id: &str) -> Option<(OtaSizingProblem, FlowConfig)> {
    let manifest: Manifest<FlowConfig> = store.run(run_id).ok()?.manifest().ok()?;
    let problem = OtaSizingProblem::new(manifest.flow.testbench, manifest.flow.sweep.clone())
        .with_threads(manifest.flow.threads)
        .with_solver(manifest.flow.solver);
    Some((problem, manifest.flow))
}

/// Executes one run to a terminal state. The claim is taken (and released)
/// by the flow itself, so a run another process claimed first comes back as
/// [`Outcome::Skipped`] without this worker having touched any state.
fn execute_run(
    shared: &Arc<Shared>,
    config: &JobServerConfig,
    worker: usize,
    run_id: &str,
) -> Outcome {
    let handle = match shared.store.run(run_id) {
        Ok(handle) => handle,
        Err(error) => return Outcome::Failed(error.to_string()),
    };
    if handle.has_result() {
        return Outcome::Skipped("already completed".to_string());
    }
    shared.emit(JobEvent::Started {
        run_id: run_id.to_string(),
        worker,
    });
    let builder = match FlowBuilder::resume(&shared.store, run_id) {
        Ok(builder) => builder,
        Err(error) => return Outcome::Failed(error.to_string()),
    };
    let observer = RunEvents {
        shared: Arc::clone(shared),
        run_id: run_id.to_string(),
    };
    let outcome = builder
        .with_claim_owner(format!("{}/worker-{}", config.owner, worker))
        .halt_when(Arc::clone(&shared.halt_runs))
        .with_observer(observer)
        .with_recorder(shared.recorder.clone())
        .run();
    match outcome {
        Ok(result) => Outcome::Completed(result.determinism_digest()),
        Err(AybError::Checkpoint(CheckpointError::Halted { .. })) => Outcome::Interrupted,
        Err(AybError::Store(StoreError::RunClaimed { owner, .. })) => {
            Outcome::Skipped(format!("claimed by {owner}"))
        }
        Err(AybError::Store(StoreError::AlreadyCompleted(_))) => {
            Outcome::Skipped("already completed".to_string())
        }
        Err(error) => Outcome::Failed(error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = JobServerConfig::default();
        assert!(config.workers >= 1);
        assert!(!config.drain);
        assert!(config.owner.contains(&std::process::id().to_string()));
        assert!(config.service_shards);
        assert!(!config.shards_only);
        let drain = JobServerConfig::drain_with_workers(4);
        assert_eq!(drain.workers, 4);
        assert!(drain.drain);
        let shards = JobServerConfig::shards_only_with_workers(3);
        assert_eq!(shards.workers, 3);
        assert!(shards.shards_only && shards.service_shards && !shards.drain);
        assert!(config.transport.is_none());
    }

    #[test]
    fn report_counts_executed_runs() {
        let report = JobReport {
            completed: vec!["a".into(), "b".into()],
            interrupted: vec!["c".into()],
            failed: vec![],
            skipped: vec!["d".into()],
            requeued: vec!["c".into()],
            shards_serviced: 5,
            shards_fenced: 0,
        };
        assert_eq!(report.executed(), 3);
    }

    #[test]
    fn events_name_their_run() {
        let event = JobEvent::Completed {
            run_id: "run-0001".into(),
            worker: 0,
            digest: 7,
        };
        assert_eq!(event.run_id(), "run-0001");
        let event = JobEvent::Requeued {
            run_id: "run-0002".into(),
            from: RunStatus::Interrupted,
        };
        assert_eq!(event.run_id(), "run-0002");
    }

    #[test]
    fn shutdown_handle_flips_the_flags() {
        let store =
            Store::open(std::env::temp_dir().join(format!("ayb-jobs-unit-{}", std::process::id())))
                .unwrap();
        let server = JobServer::new(store, JobServerConfig::default());
        let handle = server.shutdown_handle();
        assert!(!handle.is_shutdown());
        handle.shutdown();
        assert!(handle.is_shutdown());
        assert!(server.shared.halt_runs.load(Ordering::SeqCst));
    }
}
