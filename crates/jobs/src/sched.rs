//! Tenant-aware run scheduling: priority lanes and weighted round-robin.
//!
//! The job server's historical dispatch order is a single global FIFO — fine
//! for one user draining a batch, hopeless for a shared service where one
//! tenant can flood the queue and starve everyone else. This module supplies
//! the replacement: a [`RunQueue`] that is either the plain FIFO
//! ([`QueuePolicy::Fifo`], the default — existing behaviour, bit for bit) or
//! a [`WrrQueue`] implementing **weighted round-robin across tenants with
//! priority lanes within each tenant**:
//!
//! * every tenant owns three lanes (`high` → `normal` → `low`); within a
//!   tenant, a higher lane always dispatches before a lower one, FIFO within
//!   a lane;
//! * across tenants, dispatch cycles tenant names in deterministic
//!   lexicographic order, each tenant spending one *credit* per dispatched
//!   run; credits refill to the tenant's weight once no tenant with queued
//!   work has any left, so a tenant with weight 3 gets three dispatches per
//!   cycle to a weight-1 tenant's one;
//! * the rotation is **work-conserving**: tenants with nothing queued (or at
//!   their running cap) are skipped, never block the cycle, and never bank
//!   unused credits beyond one refill;
//! * a per-tenant `max_running` cap (0 = unlimited) holds back dispatch —
//!   not admission — so a tenant's queued backlog waits while its slots are
//!   full and other tenants' work flows past it.
//!
//! The structure is purely in-memory and deterministic: dispatch order is a
//! function of the push/pop/finish call sequence alone, which is what lets
//! the fairness tests assert exact bounds (an adversarial tenant flooding
//! the queue delays an equal-weight tenant's k-th run by at most `2k` pops).
//! Starvation bound: with `T` active tenants and weights `w_i`, a tenant
//! with weight `w` waits at most `sum(w_i) - w` dispatches between two of
//! its own — never unboundedly, whatever the backlog skew.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Dispatch priority of a submitted run within its tenant. Priorities order
/// runs *within* one tenant only — they never let one tenant preempt
/// another's credits (that is what weights are for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Dispatched before everything else the tenant has queued.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Dispatched only when the tenant has nothing else queued.
    Low,
}

impl Priority {
    /// Lane index (0 = highest).
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Canonical lower-case name (`high`/`normal`/`low`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a priority name; unknown names are an error so a typo in a
    /// submission surfaces instead of silently landing in `normal`.
    pub fn parse(text: &str) -> Result<Priority, String> {
        match text {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (high|normal|low)")),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Scheduling parameters of one tenant under
/// [`QueuePolicy::WeightedTenant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Dispatches per round-robin cycle (min 1); a weight-3 tenant gets
    /// three runs dispatched for every one of a weight-1 tenant while both
    /// have work queued.
    pub weight: u32,
    /// Maximum runs of this tenant executing at once (0 = unlimited). A
    /// tenant at its cap is skipped by the rotation without spending
    /// credits; its backlog stays queued.
    pub max_running: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            max_running: 0,
        }
    }
}

/// How the job server orders queued runs for dispatch.
#[derive(Debug, Clone, Default)]
pub enum QueuePolicy {
    /// The historical single global FIFO (submission order, tenant-blind).
    #[default]
    Fifo,
    /// Weighted round-robin across tenants with priority lanes (see the
    /// module docs).
    WeightedTenant {
        /// Policy applied to tenants not listed in `tenants`.
        default: TenantPolicy,
        /// Per-tenant overrides, by tenant name.
        tenants: Vec<(String, TenantPolicy)>,
    },
}

/// One tenant's queue state inside a [`WrrQueue`].
#[derive(Debug, Default)]
struct TenantLanes {
    /// `lanes[0]` = high, `[1]` = normal, `[2]` = low; FIFO within a lane.
    lanes: [VecDeque<String>; 3],
    policy: TenantPolicy,
    /// Credits left in the current round-robin cycle.
    credit: u32,
    /// Runs of this tenant currently executing (via [`WrrQueue::pop`],
    /// decremented by [`WrrQueue::finished`]).
    running: usize,
}

impl TenantLanes {
    fn queued(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    fn pop_best(&mut self) -> Option<String> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    fn at_cap(&self) -> bool {
        self.policy.max_running > 0 && self.running >= self.policy.max_running
    }
}

/// Weighted round-robin queue across tenants (see the module docs).
#[derive(Debug, Default)]
pub struct WrrQueue {
    default_policy: TenantPolicy,
    overrides: HashMap<String, TenantPolicy>,
    /// `BTreeMap` so the rotation order is deterministic (lexicographic by
    /// tenant name), independent of insertion order.
    tenants: BTreeMap<String, TenantLanes>,
    /// Tenant last served; the next pop starts strictly after it.
    cursor: Option<String>,
    /// Dispatched-but-unfinished run → tenant, so `finished` can release
    /// the right tenant's running slot.
    running: HashMap<String, String>,
}

impl WrrQueue {
    /// An empty queue with the given default policy and per-tenant
    /// overrides.
    pub fn new(default: TenantPolicy, overrides: Vec<(String, TenantPolicy)>) -> WrrQueue {
        WrrQueue {
            default_policy: default,
            overrides: overrides.into_iter().collect(),
            ..WrrQueue::default()
        }
    }

    fn lanes_mut(&mut self, tenant: &str) -> &mut TenantLanes {
        if !self.tenants.contains_key(tenant) {
            let policy = self
                .overrides
                .get(tenant)
                .cloned()
                .unwrap_or_else(|| self.default_policy.clone());
            self.tenants.insert(
                tenant.to_string(),
                TenantLanes {
                    credit: policy.weight.max(1),
                    policy,
                    ..TenantLanes::default()
                },
            );
        }
        self.tenants.get_mut(tenant).expect("tenant just inserted")
    }

    /// Enqueues a run at the back of `tenant`'s `priority` lane.
    pub fn push(&mut self, run_id: String, tenant: &str, priority: Priority) {
        self.lanes_mut(tenant).lanes[priority.lane()].push_back(run_id);
    }

    /// Number of queued (undispatched) runs across all tenants.
    pub fn len(&self) -> usize {
        self.tenants.values().map(TenantLanes::queued).sum()
    }

    /// Whether no run is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes a queued run (any tenant, any lane), returning whether it was
    /// present. Dispatched runs are not affected.
    pub fn remove(&mut self, run_id: &str) -> bool {
        for lanes in self.tenants.values_mut() {
            for lane in &mut lanes.lanes {
                if let Some(at) = lane.iter().position(|id| id == run_id) {
                    lane.remove(at);
                    return true;
                }
            }
        }
        false
    }

    /// Dispatches the next run per the WRR rotation, or `None` when every
    /// queued tenant is at its running cap (or nothing is queued).
    pub fn pop(&mut self) -> Option<String> {
        // First pass spends existing credits; when they are exhausted the
        // cycle ends, every tenant refills, and the second pass dispatches.
        for _ in 0..2 {
            if let Some(id) = self.try_pop() {
                return Some(id);
            }
            let any_eligible = self
                .tenants
                .values()
                .any(|lanes| lanes.queued() > 0 && !lanes.at_cap());
            if !any_eligible {
                return None;
            }
            for lanes in self.tenants.values_mut() {
                lanes.credit = lanes.policy.weight.max(1);
            }
        }
        None
    }

    fn try_pop(&mut self) -> Option<String> {
        let keys: Vec<String> = self.tenants.keys().cloned().collect();
        if keys.is_empty() {
            return None;
        }
        let start = match &self.cursor {
            Some(cursor) => keys
                .iter()
                .position(|key| key.as_str() > cursor.as_str())
                .unwrap_or(0),
            None => 0,
        };
        for offset in 0..keys.len() {
            let key = &keys[(start + offset) % keys.len()];
            let lanes = self.tenants.get_mut(key).expect("tenant key exists");
            if lanes.credit == 0 || lanes.queued() == 0 || lanes.at_cap() {
                continue;
            }
            let id = lanes.pop_best().expect("non-empty tenant pops");
            lanes.credit -= 1;
            lanes.running += 1;
            self.running.insert(id.clone(), key.clone());
            self.cursor = Some(key.clone());
            return Some(id);
        }
        None
    }

    /// Releases the running slot of a dispatched run (call once per pop,
    /// whatever the execution outcome). Unknown ids are ignored.
    pub fn finished(&mut self, run_id: &str) {
        if let Some(tenant) = self.running.remove(run_id) {
            if let Some(lanes) = self.tenants.get_mut(&tenant) {
                lanes.running = lanes.running.saturating_sub(1);
            }
        }
    }

    /// Runs of `tenant` currently dispatched and unfinished.
    pub fn running_of(&self, tenant: &str) -> usize {
        self.tenants
            .get(tenant)
            .map(|lanes| lanes.running)
            .unwrap_or(0)
    }
}

/// The job server's in-memory dispatch queue: plain FIFO or tenant WRR,
/// selected by [`QueuePolicy`]. The FIFO arm ignores tenants and priorities
/// entirely, preserving the historical dispatch order bit for bit.
#[derive(Debug)]
pub enum RunQueue {
    /// Global submission-order FIFO.
    Fifo(VecDeque<String>),
    /// Weighted round-robin across tenants.
    Wrr(WrrQueue),
}

impl RunQueue {
    /// Builds the queue a policy calls for.
    pub fn from_policy(policy: &QueuePolicy) -> RunQueue {
        match policy {
            QueuePolicy::Fifo => RunQueue::Fifo(VecDeque::new()),
            QueuePolicy::WeightedTenant { default, tenants } => {
                RunQueue::Wrr(WrrQueue::new(default.clone(), tenants.clone()))
            }
        }
    }

    /// Enqueues a run (tenant/priority are ignored by the FIFO arm).
    pub fn push(&mut self, run_id: String, tenant: &str, priority: Priority) {
        match self {
            RunQueue::Fifo(queue) => queue.push_back(run_id),
            RunQueue::Wrr(queue) => queue.push(run_id, tenant, priority),
        }
    }

    /// Dispatches the next run, if any is eligible.
    pub fn pop(&mut self) -> Option<String> {
        match self {
            RunQueue::Fifo(queue) => queue.pop_front(),
            RunQueue::Wrr(queue) => queue.pop(),
        }
    }

    /// Removes a queued run, returning whether it was present.
    pub fn remove(&mut self, run_id: &str) -> bool {
        match self {
            RunQueue::Fifo(queue) => {
                if let Some(at) = queue.iter().position(|id| id == run_id) {
                    queue.remove(at);
                    true
                } else {
                    false
                }
            }
            RunQueue::Wrr(queue) => queue.remove(run_id),
        }
    }

    /// Marks a dispatched run finished (no-op for the FIFO arm).
    pub fn finished(&mut self, run_id: &str) {
        match self {
            RunQueue::Fifo(_) => {}
            RunQueue::Wrr(queue) => queue.finished(run_id),
        }
    }

    /// Number of queued (undispatched) runs.
    pub fn len(&self) -> usize {
        match self {
            RunQueue::Fifo(queue) => queue.len(),
            RunQueue::Wrr(queue) => queue.len(),
        }
    }

    /// Whether no run is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrr(pairs: &[(&str, u32, usize)]) -> WrrQueue {
        WrrQueue::new(
            TenantPolicy::default(),
            pairs
                .iter()
                .map(|(name, weight, cap)| {
                    (
                        name.to_string(),
                        TenantPolicy {
                            weight: *weight,
                            max_running: *cap,
                        },
                    )
                })
                .collect(),
        )
    }

    fn drain(queue: &mut WrrQueue) -> Vec<String> {
        let mut order = Vec::new();
        while let Some(id) = queue.pop() {
            queue.finished(&id); // immediate completion: caps never bind
            order.push(id);
        }
        order
    }

    #[test]
    fn priority_parses_and_prints() {
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.as_str()).unwrap(), p);
            assert_eq!(p.to_string(), p.as_str());
        }
        assert!(Priority::parse("urgent").is_err());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn equal_weights_alternate_strictly() {
        // The adversary floods 10 runs before the victim's 3 ever arrive;
        // equal weights still interleave 1:1, so the victim's k-th run
        // departs within 2k pops of the first dispatch — the WRR wait bound
        // the service's fairness rests on.
        let mut queue = wrr(&[]);
        for i in 0..10 {
            queue.push(format!("a{i}"), "adversary", Priority::Normal);
        }
        for i in 0..3 {
            queue.push(format!("v{i}"), "victim", Priority::Normal);
        }
        let order = drain(&mut queue);
        assert_eq!(order.len(), 13);
        for k in 0..3 {
            let at = order
                .iter()
                .position(|id| id == &format!("v{k}"))
                .expect("victim run dispatched");
            assert!(
                at <= 2 * (k + 1),
                "victim run {k} dispatched at position {at}, bound {}",
                2 * (k + 1)
            );
        }
    }

    #[test]
    fn weights_skew_the_rotation() {
        // Weight 3 vs 1: each full cycle dispatches three `heavy` runs and
        // one `light` run (tenants rotate in name order within a cycle).
        let mut queue = wrr(&[("heavy", 3, 0), ("light", 1, 0)]);
        for i in 0..9 {
            queue.push(format!("h{i}"), "heavy", Priority::Normal);
        }
        for i in 0..3 {
            queue.push(format!("l{i}"), "light", Priority::Normal);
        }
        let order = drain(&mut queue);
        let heavy_in_first_eight = order[..8].iter().filter(|id| id.starts_with('h')).count();
        assert_eq!(heavy_in_first_eight, 6, "order: {order:?}");
        // Light never starves: one dispatch per cycle of four.
        for k in 0..3 {
            let at = order.iter().position(|id| id == &format!("l{k}")).unwrap();
            assert!(at <= 4 * (k + 1), "light run {k} at {at}");
        }
    }

    #[test]
    fn priority_lanes_order_within_a_tenant() {
        let mut queue = wrr(&[]);
        queue.push("low".into(), "t", Priority::Low);
        queue.push("normal".into(), "t", Priority::Normal);
        queue.push("high".into(), "t", Priority::High);
        queue.push("normal2".into(), "t", Priority::Normal);
        assert_eq!(drain(&mut queue), vec!["high", "normal", "normal2", "low"]);
    }

    #[test]
    fn running_cap_holds_back_dispatch_without_blocking_others() {
        let mut queue = wrr(&[("capped", 1, 1)]);
        queue.push("c0".into(), "capped", Priority::Normal);
        queue.push("c1".into(), "capped", Priority::Normal);
        queue.push("o0".into(), "other", Priority::Normal);

        assert_eq!(queue.pop().as_deref(), Some("c0"));
        assert_eq!(queue.running_of("capped"), 1);
        // `capped` is at its cap: its backlog waits, `other` flows past.
        assert_eq!(queue.pop().as_deref(), Some("o0"));
        assert_eq!(queue.pop(), None, "only capped work left, cap binds");
        assert_eq!(queue.len(), 1);
        queue.finished("c0");
        assert_eq!(queue.pop().as_deref(), Some("c1"));
    }

    #[test]
    fn remove_frees_a_queued_run_only() {
        let mut queue = wrr(&[]);
        queue.push("q".into(), "t", Priority::Normal);
        let popped = {
            queue.push("r".into(), "t", Priority::Normal);
            queue.pop().unwrap()
        };
        assert_eq!(popped, "q");
        assert!(!queue.remove("q"), "dispatched runs are not removable");
        assert!(queue.remove("r"));
        assert!(!queue.remove("r"));
        assert!(queue.is_empty());
        // The dispatched run's slot is still accounted.
        assert_eq!(queue.running_of("t"), 1);
        queue.finished("q");
        assert_eq!(queue.running_of("t"), 0);
    }

    #[test]
    fn fifo_queue_preserves_submission_order() {
        let mut queue = RunQueue::from_policy(&QueuePolicy::Fifo);
        queue.push("a".into(), "z-tenant", Priority::Low);
        queue.push("b".into(), "a-tenant", Priority::High);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop().as_deref(), Some("a"));
        queue.finished("a"); // no-op
        assert!(queue.remove("b"));
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn unknown_tenants_use_the_default_policy() {
        let mut queue = WrrQueue::new(
            TenantPolicy {
                weight: 2,
                max_running: 1,
            },
            Vec::new(),
        );
        queue.push("x0".into(), "anybody", Priority::Normal);
        queue.push("x1".into(), "anybody", Priority::Normal);
        assert_eq!(queue.pop().as_deref(), Some("x0"));
        assert_eq!(queue.pop(), None, "default max_running=1 binds");
        queue.finished("x0");
        assert_eq!(queue.pop().as_deref(), Some("x1"));
    }

    #[test]
    fn finished_is_idempotent_and_ignores_unknown_ids() {
        let mut queue = wrr(&[]);
        queue.push("a".into(), "t", Priority::Normal);
        let id = queue.pop().unwrap();
        queue.finished(&id);
        queue.finished(&id);
        queue.finished("never-dispatched");
        assert_eq!(queue.running_of("t"), 0);
    }
}
