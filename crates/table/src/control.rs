//! `$table_model()` control strings.
//!
//! Verilog-A encodes the interpolation and extrapolation behaviour of each
//! table dimension in a compact control string such as `"3E"` (cubic spline,
//! error on extrapolation) or `"1L,1L"` (two dimensions, both linear with
//! linear extrapolation). The paper uses `"3E"` / `"3E,3E"` throughout: cubic
//! spline interpolation with **no** extrapolation so the model never guesses
//! beyond its sampled data (§3.5).

use crate::error::{Result, TableError};
use serde::{Deserialize, Serialize};

/// Interpolation degree of one table dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interpolation {
    /// Degree-1 (piecewise linear).
    Linear,
    /// Degree-2 (piecewise quadratic).
    Quadratic,
    /// Degree-3 (cubic spline) — the paper's choice.
    CubicSpline,
}

impl Interpolation {
    /// Numeric degree (1, 2 or 3).
    pub fn degree(self) -> u8 {
        match self {
            Interpolation::Linear => 1,
            Interpolation::Quadratic => 2,
            Interpolation::CubicSpline => 3,
        }
    }

    /// Minimum number of samples required along a dimension.
    pub fn min_points(self) -> usize {
        match self {
            Interpolation::Linear => 2,
            Interpolation::Quadratic => 3,
            Interpolation::CubicSpline => 3,
        }
    }
}

/// Extrapolation behaviour of one table dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extrapolation {
    /// `E` — out-of-range queries are an error (no extrapolation). Paper default.
    Error,
    /// `C` — clamp to the nearest table value (constant extrapolation).
    Clamp,
    /// `L` — extend the boundary segment linearly.
    Linear,
}

/// Per-dimension control: interpolation degree plus extrapolation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionControl {
    /// Interpolation method along this dimension.
    pub interpolation: Interpolation,
    /// Extrapolation behaviour along this dimension.
    pub extrapolation: Extrapolation,
}

impl DimensionControl {
    /// The paper's default: cubic spline, no extrapolation (`"3E"`).
    pub fn paper_default() -> Self {
        DimensionControl {
            interpolation: Interpolation::CubicSpline,
            extrapolation: Extrapolation::Error,
        }
    }
}

impl Default for DimensionControl {
    fn default() -> Self {
        DimensionControl::paper_default()
    }
}

/// Parsed control string: one [`DimensionControl`] per table dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlString {
    dimensions: Vec<DimensionControl>,
}

impl ControlString {
    /// Parses a control string such as `"3E"`, `"1L,2C"` or `"3E,3E"`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ControlString`] for empty strings, unknown degree
    /// digits or unknown extrapolation letters.
    pub fn parse(text: &str) -> Result<Self> {
        let mut dimensions = Vec::new();
        for part in text.split(',') {
            let token = part.trim();
            if token.is_empty() {
                return Err(TableError::ControlString(text.to_string()));
            }
            let mut chars = token.chars();
            let degree = chars.next().unwrap();
            let interpolation = match degree {
                '1' => Interpolation::Linear,
                '2' => Interpolation::Quadratic,
                '3' => Interpolation::CubicSpline,
                _ => return Err(TableError::ControlString(text.to_string())),
            };
            let extrapolation = match chars.next() {
                None | Some('E') | Some('e') => Extrapolation::Error,
                Some('C') | Some('c') => Extrapolation::Clamp,
                Some('L') | Some('l') => Extrapolation::Linear,
                Some(_) => return Err(TableError::ControlString(text.to_string())),
            };
            if chars.next().is_some() {
                return Err(TableError::ControlString(text.to_string()));
            }
            dimensions.push(DimensionControl {
                interpolation,
                extrapolation,
            });
        }
        if dimensions.is_empty() {
            return Err(TableError::ControlString(text.to_string()));
        }
        Ok(ControlString { dimensions })
    }

    /// Number of dimensions described by the control string.
    pub fn len(&self) -> usize {
        self.dimensions.len()
    }

    /// Returns `true` when the control string has no dimensions (never true
    /// for successfully parsed strings).
    pub fn is_empty(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Control of dimension `index`.
    pub fn dimension(&self, index: usize) -> Option<DimensionControl> {
        self.dimensions.get(index).copied()
    }

    /// Iterates over the per-dimension controls.
    pub fn iter(&self) -> impl Iterator<Item = &DimensionControl> {
        self.dimensions.iter()
    }
}

impl std::fmt::Display for ControlString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .dimensions
            .iter()
            .map(|d| {
                let e = match d.extrapolation {
                    Extrapolation::Error => "E",
                    Extrapolation::Clamp => "C",
                    Extrapolation::Linear => "L",
                };
                format!("{}{}", d.interpolation.degree(), e)
            })
            .collect();
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_control_strings() {
        let c = ControlString::parse("3E").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.dimension(0).unwrap(), DimensionControl::paper_default());

        let c = ControlString::parse("3E,3E").unwrap();
        assert_eq!(c.len(), 2);
        assert!(c
            .iter()
            .all(|d| d.interpolation == Interpolation::CubicSpline));
    }

    #[test]
    fn parses_mixed_degrees_and_extrapolation() {
        let c = ControlString::parse("1L,2C").unwrap();
        assert_eq!(c.dimension(0).unwrap().interpolation, Interpolation::Linear);
        assert_eq!(c.dimension(0).unwrap().extrapolation, Extrapolation::Linear);
        assert_eq!(
            c.dimension(1).unwrap().interpolation,
            Interpolation::Quadratic
        );
        assert_eq!(c.dimension(1).unwrap().extrapolation, Extrapolation::Clamp);
        // Degree alone defaults to no extrapolation.
        let c = ControlString::parse("2").unwrap();
        assert_eq!(c.dimension(0).unwrap().extrapolation, Extrapolation::Error);
    }

    #[test]
    fn rejects_invalid_strings() {
        assert!(ControlString::parse("").is_err());
        assert!(ControlString::parse("4E").is_err());
        assert!(ControlString::parse("3X").is_err());
        assert!(ControlString::parse("3EE").is_err());
        assert!(ControlString::parse("3E,,3E").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for text in ["3E", "1L,2C", "3C,3E"] {
            let c = ControlString::parse(text).unwrap();
            assert_eq!(c.to_string(), text);
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn interpolation_metadata() {
        assert_eq!(Interpolation::Linear.min_points(), 2);
        assert_eq!(Interpolation::CubicSpline.min_points(), 3);
        assert_eq!(Interpolation::Quadratic.degree(), 2);
    }
}
