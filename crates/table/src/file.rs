//! `.tbl` data-file format.
//!
//! The paper's flow stores the performance and variation models in plain text
//! data files that the Verilog-A `$table_model()` function reads
//! (`"gain_delta.tbl"`, `"lp1_data.tbl"`, ...). The format implemented here is
//! the same whitespace-separated layout: one sample per line, the final column
//! is the output, preceding columns are the inputs; `#` and `*` start comments.

use crate::error::{Result, TableError};
use serde::{Deserialize, Serialize};

/// In-memory representation of a `.tbl` data file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableFile {
    /// Number of input columns (1 or more).
    pub inputs: usize,
    /// Rows of `inputs + 1` values each.
    pub rows: Vec<Vec<f64>>,
}

impl TableFile {
    /// Creates a table file with the given number of input columns.
    pub fn new(inputs: usize) -> Self {
        TableFile {
            inputs,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if the row does not have `inputs + 1` entries.
    pub fn push_row(&mut self, row: Vec<f64>) -> Result<()> {
        if row.len() != self.inputs + 1 {
            return Err(TableError::Dimension(format!(
                "expected {} columns, got {}",
                self.inputs + 1,
                row.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extracts column `index` (0-based, spanning inputs then output).
    pub fn column(&self, index: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[index]).collect()
    }

    /// The output (last) column.
    pub fn output_column(&self) -> Vec<f64> {
        self.column(self.inputs)
    }

    /// Serialises to `.tbl` text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# ayb table file: {} input column(s), {} row(s)\n",
            self.inputs,
            self.rows.len()
        ));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.12e}")).collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        out
    }

    /// Parses `.tbl` text with `inputs` input columns.
    ///
    /// # Errors
    ///
    /// Returns a parse error naming the offending line for malformed numbers
    /// or wrong column counts.
    pub fn from_text(text: &str, inputs: usize) -> Result<Self> {
        let mut file = TableFile::new(inputs);
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('*') {
                continue;
            }
            let cells: std::result::Result<Vec<f64>, _> =
                line.split_whitespace().map(str::parse::<f64>).collect();
            let cells = cells.map_err(|e| TableError::Parse {
                line: idx + 1,
                reason: format!("invalid number: {e}"),
            })?;
            file.push_row(cells).map_err(|e| TableError::Parse {
                line: idx + 1,
                reason: e.to_string(),
            })?;
        }
        Ok(file)
    }

    /// Writes the table to a file on disk.
    ///
    /// # Errors
    ///
    /// Returns a parse error wrapping the underlying I/O failure.
    pub fn write_to(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_text()).map_err(|e| TableError::Parse {
            line: 0,
            reason: format!("failed to write {}: {e}", path.display()),
        })
    }

    /// Reads a table file from disk.
    ///
    /// # Errors
    ///
    /// Returns a parse error for I/O failures or malformed content.
    pub fn read_from(path: &std::path::Path, inputs: usize) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| TableError::Parse {
            line: 0,
            reason: format!("failed to read {}: {e}", path.display()),
        })?;
        TableFile::from_text(&text, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let mut f = TableFile::new(2);
        f.push_row(vec![50.0, 76.0, 0.51]).unwrap();
        f.push_row(vec![51.0, 74.0, 0.42]).unwrap();
        let text = f.to_text();
        let back = TableFile::from_text(&text, 2).unwrap();
        assert_eq!(back.len(), 2);
        assert!((back.rows[0][2] - 0.51).abs() < 1e-12);
        assert_eq!(back.output_column(), vec![0.51, 0.42]);
        assert_eq!(back.column(0), vec![50.0, 51.0]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n\n* another comment\n1.0 2.0\n3.0 4.0\n";
        let f = TableFile::from_text(text, 1).unwrap();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn wrong_column_count_is_reported_with_line_number() {
        let text = "1.0 2.0 3.0\n1.0 2.0\n";
        let err = TableFile::from_text(text, 2).unwrap_err();
        match err {
            TableError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn malformed_numbers_are_reported() {
        let text = "1.0 abc\n";
        assert!(matches!(
            TableFile::from_text(text, 1),
            Err(TableError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn push_row_validates_width() {
        let mut f = TableFile::new(1);
        assert!(f.push_row(vec![1.0]).is_err());
        assert!(f.push_row(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join("ayb_table_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gain_delta.tbl");
        let mut f = TableFile::new(1);
        f.push_row(vec![49.78, 0.52]).unwrap();
        f.push_row(vec![50.17, 0.51]).unwrap();
        f.write_to(&path).unwrap();
        let back = TableFile::read_from(&path, 1).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
