//! One-dimensional table models.

use crate::control::{DimensionControl, Extrapolation, Interpolation};
use crate::error::{Result, TableError};
use crate::interp;
use crate::spline::CubicSpline;
use serde::{Deserialize, Serialize};

/// A one-dimensional lookup table with configurable interpolation and
/// extrapolation, equivalent to a single-input Verilog-A `$table_model()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1d {
    x: Vec<f64>,
    y: Vec<f64>,
    control: DimensionControl,
    #[serde(skip)]
    spline: Option<CubicSpline>,
}

impl Table1d {
    /// Builds a table from `(x, y)` samples.
    ///
    /// The samples are sorted by `x`; duplicate abscissae are collapsed by
    /// keeping the mean of their ordinates (measurement data from Monte Carlo
    /// sweeps frequently contains repeated performance values).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer points remain than the interpolation method
    /// requires.
    pub fn new(x: &[f64], y: &[f64], control: DimensionControl) -> Result<Self> {
        if x.len() != y.len() {
            return Err(TableError::Dimension(format!(
                "x has {} samples but y has {}",
                x.len(),
                y.len()
            )));
        }
        let mut pairs: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // Collapse duplicates (within a tight relative tolerance).
        let mut xs: Vec<f64> = Vec::with_capacity(pairs.len());
        let mut ys: Vec<f64> = Vec::with_capacity(pairs.len());
        let mut counts: Vec<usize> = Vec::with_capacity(pairs.len());
        for (px, py) in pairs {
            if let Some(last) = xs.last() {
                let tol = 1e-12 * last.abs().max(1.0);
                if (px - last).abs() <= tol {
                    let idx = ys.len() - 1;
                    let n = counts[idx] as f64;
                    ys[idx] = (ys[idx] * n + py) / (n + 1.0);
                    counts[idx] += 1;
                    continue;
                }
            }
            xs.push(px);
            ys.push(py);
            counts.push(1);
        }
        if xs.len() < control.interpolation.min_points() {
            return Err(TableError::NotEnoughPoints {
                got: xs.len(),
                needed: control.interpolation.min_points(),
            });
        }
        let spline = if control.interpolation == Interpolation::CubicSpline {
            Some(CubicSpline::fit(&xs, &ys)?)
        } else {
            None
        };
        Ok(Table1d {
            x: xs,
            y: ys,
            control,
            spline,
        })
    }

    /// Builds a cubic-spline table with the paper's default `"3E"` control.
    pub fn cubic(x: &[f64], y: &[f64]) -> Result<Self> {
        Table1d::new(x, y, DimensionControl::paper_default())
    }

    /// Number of (distinct) samples in the table.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the table holds no samples (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Table domain `[x_min, x_max]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().unwrap())
    }

    /// Sampled abscissae.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Sampled ordinates.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// The control (interpolation + extrapolation) of this table.
    pub fn control(&self) -> DimensionControl {
        self.control
    }

    fn ensure_spline(&self) -> Result<CubicSpline> {
        match &self.spline {
            Some(s) => Ok(s.clone()),
            None => CubicSpline::fit(&self.x, &self.y),
        }
    }

    /// Looks the table up at `q`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::OutOfRange`] when `q` lies outside the table and
    /// the extrapolation policy is [`Extrapolation::Error`], and
    /// [`TableError::NonFiniteQuery`] for a NaN or infinite `q` — checked
    /// here so every interpolation mode (including the cubic-spline path,
    /// which evaluates a polynomial directly) rejects it, rather than
    /// returning silently-poisoned NaN values.
    pub fn lookup(&self, q: f64) -> Result<f64> {
        if !q.is_finite() {
            return Err(TableError::NonFiniteQuery);
        }
        let (lo, hi) = self.domain();
        let inside = (lo..=hi).contains(&q);
        let query = match self.control.extrapolation {
            Extrapolation::Error if !inside => {
                return Err(TableError::OutOfRange {
                    value: q,
                    lower: lo,
                    upper: hi,
                });
            }
            Extrapolation::Clamp => q.clamp(lo, hi),
            _ => q,
        };
        match self.control.interpolation {
            Interpolation::Linear => interp::linear(&self.x, &self.y, query),
            Interpolation::Quadratic => interp::quadratic(&self.x, &self.y, query),
            Interpolation::CubicSpline => {
                let spline = self.ensure_spline()?;
                Ok(spline.value(query))
            }
        }
    }

    /// Inverse lookup: finds `x` such that `lookup(x) ≈ target`.
    ///
    /// The table ordinates must be monotonic for the result to be unique; a
    /// bisection search over the table domain is used. This supports the
    /// paper's model-use step, where a *performance* value is used to recover
    /// the *designable parameters* that produce it.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::OutOfRange`] if `target` lies outside the range
    /// of tabulated ordinates.
    pub fn inverse_lookup(&self, target: f64) -> Result<f64> {
        let (lo, hi) = self.domain();
        let y_lo = self.lookup(lo)?;
        let y_hi = self.lookup(hi)?;
        let (min_y, max_y) = (y_lo.min(y_hi), y_lo.max(y_hi));
        if target < min_y - 1e-12 || target > max_y + 1e-12 {
            return Err(TableError::OutOfRange {
                value: target,
                lower: min_y,
                upper: max_y,
            });
        }
        let increasing = y_hi >= y_lo;
        let (mut a, mut b) = (lo, hi);
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            let val = self.lookup(mid)?;
            let below = if increasing {
                val < target
            } else {
                val > target
            };
            if below {
                a = mid;
            } else {
                b = mid;
            }
        }
        Ok(0.5 * (a + b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{DimensionControl, Extrapolation, Interpolation};

    #[test]
    fn non_finite_queries_are_rejected_in_every_interpolation_mode() {
        for interpolation in [
            Interpolation::Linear,
            Interpolation::Quadratic,
            Interpolation::CubicSpline,
        ] {
            let control = DimensionControl {
                interpolation,
                extrapolation: Extrapolation::Clamp,
            };
            let table = quadratic_table(control);
            for q in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(
                    table.lookup(q),
                    Err(TableError::NonFiniteQuery),
                    "{interpolation:?} must not return silent NaN for {q}"
                );
            }
        }
    }

    fn quadratic_table(control: DimensionControl) -> Table1d {
        let x: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        Table1d::new(&x, &y, control).unwrap()
    }

    #[test]
    fn cubic_lookup_reproduces_samples_and_interior() {
        let t = quadratic_table(DimensionControl::paper_default());
        assert!((t.lookup(4.0).unwrap() - 16.0).abs() < 1e-9);
        assert!((t.lookup(4.5).unwrap() - 20.25).abs() < 0.05);
        assert_eq!(t.len(), 11);
        assert!(!t.is_empty());
    }

    #[test]
    fn extrapolation_error_policy_rejects_out_of_range() {
        let t = quadratic_table(DimensionControl::paper_default());
        assert!(matches!(t.lookup(11.0), Err(TableError::OutOfRange { .. })));
        assert!(t.lookup(10.0).is_ok());
    }

    #[test]
    fn clamp_policy_returns_boundary_values() {
        let t = quadratic_table(DimensionControl {
            interpolation: Interpolation::Linear,
            extrapolation: Extrapolation::Clamp,
        });
        assert_eq!(t.lookup(20.0).unwrap(), 100.0);
        assert_eq!(t.lookup(-5.0).unwrap(), 0.0);
    }

    #[test]
    fn linear_extrapolation_extends_end_segment() {
        let t = quadratic_table(DimensionControl {
            interpolation: Interpolation::Linear,
            extrapolation: Extrapolation::Linear,
        });
        // Last segment slope is 100 - 81 = 19.
        assert!((t.lookup(11.0).unwrap() - 119.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_and_duplicate_inputs_are_normalised() {
        let x = [2.0, 0.0, 1.0, 1.0, 3.0];
        let y = [4.0, 0.0, 1.0, 3.0, 9.0];
        let t = Table1d::cubic(&x, &y).unwrap();
        assert_eq!(t.len(), 4);
        // Duplicate x=1.0 collapses to the mean of 1.0 and 3.0.
        assert!((t.lookup(1.0).unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(t.domain(), (0.0, 3.0));
    }

    #[test]
    fn inverse_lookup_recovers_abscissa() {
        let t = quadratic_table(DimensionControl::paper_default());
        let x = t.inverse_lookup(36.0).unwrap();
        assert!((x - 6.0).abs() < 1e-3, "x = {x}");
        assert!(t.inverse_lookup(150.0).is_err());
    }

    #[test]
    fn inverse_lookup_handles_decreasing_tables() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 100.0 - 5.0 * v).collect();
        let t = Table1d::cubic(&x, &y).unwrap();
        let q = t.inverse_lookup(72.5).unwrap();
        assert!((q - 5.5).abs() < 1e-3);
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert!(Table1d::cubic(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(Table1d::new(
            &[1.0],
            &[1.0],
            DimensionControl {
                interpolation: Interpolation::Linear,
                extrapolation: Extrapolation::Error
            }
        )
        .is_err());
    }

    #[test]
    fn serde_roundtrip_rebuilds_spline_lazily() {
        let t = quadratic_table(DimensionControl::paper_default());
        let json = serde_json::to_string(&t).unwrap();
        let back: Table1d = serde_json::from_str(&json).unwrap();
        assert!((back.lookup(4.5).unwrap() - t.lookup(4.5).unwrap()).abs() < 1e-12);
    }
}
