//! A Verilog-A style `$table_model()` equivalent.
//!
//! [`TableModel`] ties together the data file ([`TableFile`]), the control
//! string ([`ControlString`]) and the interpolators, exactly mirroring the
//! call sites in the paper's behavioural module:
//!
//! ```text
//! gain_delta = $table_model(gain, "gain_delta.tbl", "3E");
//! lp1        = $table_model(gain_prop, pm_prop, "lp1_data.tbl", "3E,3E");
//! ```

use crate::control::ControlString;
use crate::error::{Result, TableError};
use crate::file::TableFile;
use crate::table1d::Table1d;
use crate::table2d::Table2d;
use serde::{Deserialize, Serialize};

/// A one- or two-input lookup model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableModel {
    /// Single-input table.
    One(Table1d),
    /// Two-input (scattered) table.
    Two(Table2d),
}

impl TableModel {
    /// Builds a model from a data file and a control string, the same
    /// arguments `$table_model()` takes.
    ///
    /// # Errors
    ///
    /// Returns an error if the control-string dimensionality does not match
    /// the file's input-column count, or the data is insufficient.
    pub fn from_file(file: &TableFile, control: &ControlString) -> Result<Self> {
        if control.len() != file.inputs {
            return Err(TableError::Dimension(format!(
                "control string has {} dimension(s) but the data file has {} input column(s)",
                control.len(),
                file.inputs
            )));
        }
        match file.inputs {
            1 => {
                let x = file.column(0);
                let y = file.output_column();
                let table = Table1d::new(&x, &y, control.dimension(0).expect("dimension 0"))?;
                Ok(TableModel::One(table))
            }
            2 => {
                let x1 = file.column(0);
                let x2 = file.column(1);
                let y = file.output_column();
                Ok(TableModel::Two(Table2d::new(&x1, &x2, &y)?))
            }
            n => Err(TableError::Dimension(format!(
                "only 1- and 2-input tables are supported, got {n}"
            ))),
        }
    }

    /// Convenience constructor parsing the control string from text.
    ///
    /// # Errors
    ///
    /// Propagates control-string and data errors.
    pub fn from_file_with_control(file: &TableFile, control: &str) -> Result<Self> {
        TableModel::from_file(file, &ControlString::parse(control)?)
    }

    /// Number of inputs (1 or 2).
    pub fn inputs(&self) -> usize {
        match self {
            TableModel::One(_) => 1,
            TableModel::Two(_) => 2,
        }
    }

    /// Evaluates the model.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if the number of query values does not match
    /// [`TableModel::inputs`], or an out-of-range error according to the
    /// table's extrapolation policy.
    pub fn lookup(&self, query: &[f64]) -> Result<f64> {
        match (self, query) {
            (TableModel::One(t), [q]) => t.lookup(*q),
            (TableModel::Two(t), [q1, q2]) => t.lookup(*q1, *q2),
            _ => Err(TableError::Dimension(format!(
                "model takes {} input(s) but {} were supplied",
                self.inputs(),
                query.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_d_file() -> TableFile {
        let mut f = TableFile::new(1);
        for i in 0..10 {
            let x = 49.0 + i as f64 * 0.3;
            f.push_row(vec![x, 0.6 - i as f64 * 0.02]).unwrap();
        }
        f
    }

    fn two_d_file() -> TableFile {
        let mut f = TableFile::new(2);
        for i in 0..15 {
            let gain = 49.0 + i as f64 * 0.2;
            let pm = 77.0 - i as f64 * 0.3;
            f.push_row(vec![gain, pm, 10.0 + i as f64]).unwrap();
        }
        f
    }

    #[test]
    fn one_input_model_matches_paper_call_signature() {
        let model = TableModel::from_file_with_control(&one_d_file(), "3E").unwrap();
        assert_eq!(model.inputs(), 1);
        let v = model.lookup(&[50.0]).unwrap();
        assert!(v > 0.5 && v < 0.6, "v = {v}");
        // No extrapolation: queries beyond the data error out.
        assert!(model.lookup(&[60.0]).is_err());
    }

    #[test]
    fn two_input_model_handles_scattered_front() {
        let model = TableModel::from_file_with_control(&two_d_file(), "3E,3E").unwrap();
        assert_eq!(model.inputs(), 2);
        let v = model.lookup(&[50.0, 75.5]).unwrap();
        assert!(v > 10.0 && v < 25.0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let err = TableModel::from_file_with_control(&two_d_file(), "3E").unwrap_err();
        assert!(matches!(err, TableError::Dimension(_)));
        let model = TableModel::from_file_with_control(&one_d_file(), "3E").unwrap();
        assert!(model.lookup(&[1.0, 2.0]).is_err());
        let model2 = TableModel::from_file_with_control(&two_d_file(), "3E,3E").unwrap();
        assert!(model2.lookup(&[1.0]).is_err());
    }

    #[test]
    fn invalid_control_strings_are_rejected() {
        assert!(TableModel::from_file_with_control(&one_d_file(), "9E").is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let model = TableModel::from_file_with_control(&one_d_file(), "3E").unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: TableModel = serde_json::from_str(&json).unwrap();
        assert!((back.lookup(&[50.0]).unwrap() - model.lookup(&[50.0]).unwrap()).abs() < 1e-12);
    }
}
