//! Natural cubic spline interpolation.
//!
//! The paper's behavioural model uses cubic-spline `$table_model()` lookups
//! ("3E" control strings, §2.2/§3.5): each interval `[x_i, x_{i+1}]` carries a
//! third-degree polynomial
//!
//! ```text
//! S_i(x) = a_i (x − x_i)³ + b_i (x − x_i)² + c_i (x − x_i) + d_i      (paper eq. 3)
//! ```
//!
//! with coefficients chosen so the curve passes through every data point with
//! continuous first and second derivatives, and zero second derivative at the
//! end points (the "natural" boundary condition).

use crate::error::{Result, TableError};
use serde::{Deserialize, Serialize};

/// Coefficients of one cubic segment (paper eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Cubic coefficient `a_i`.
    pub a: f64,
    /// Quadratic coefficient `b_i`.
    pub b: f64,
    /// Linear coefficient `c_i`.
    pub c: f64,
    /// Constant coefficient `d_i` (the sample value at `x_i`).
    pub d: f64,
    /// Left knot `x_i`.
    pub x: f64,
}

impl Segment {
    /// Evaluates the segment polynomial at `x`.
    pub fn value(&self, x: f64) -> f64 {
        let dx = x - self.x;
        ((self.a * dx + self.b) * dx + self.c) * dx + self.d
    }

    /// Evaluates the segment derivative at `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        let dx = x - self.x;
        (3.0 * self.a * dx + 2.0 * self.b) * dx + self.c
    }
}

/// A natural cubic spline through a set of strictly increasing knots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubicSpline {
    knots: Vec<f64>,
    values: Vec<f64>,
    segments: Vec<Segment>,
}

impl CubicSpline {
    /// Fits a natural cubic spline to `(x, y)` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than three samples are given, the lengths
    /// differ, or `x` is not strictly increasing.
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self> {
        if x.len() != y.len() {
            return Err(TableError::Dimension(format!(
                "x has {} samples but y has {}",
                x.len(),
                y.len()
            )));
        }
        if x.len() < 3 {
            return Err(TableError::NotEnoughPoints {
                got: x.len(),
                needed: 3,
            });
        }
        for i in 1..x.len() {
            if x[i] <= x[i - 1] {
                return Err(TableError::NotMonotonic { index: i });
            }
        }
        let n = x.len();
        let h: Vec<f64> = (0..n - 1).map(|i| x[i + 1] - x[i]).collect();

        // Solve the tridiagonal system for the second derivatives m_i
        // (natural boundary: m_0 = m_{n-1} = 0) using the Thomas algorithm.
        let mut sub = vec![0.0; n];
        let mut diag = vec![1.0; n];
        let mut sup = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        for i in 1..n - 1 {
            sub[i] = h[i - 1];
            diag[i] = 2.0 * (h[i - 1] + h[i]);
            sup[i] = h[i];
            rhs[i] = 6.0 * ((y[i + 1] - y[i]) / h[i] - (y[i] - y[i - 1]) / h[i - 1]);
        }
        // Forward elimination.
        for i in 1..n {
            let w = sub[i] / diag[i - 1];
            diag[i] -= w * sup[i - 1];
            rhs[i] -= w * rhs[i - 1];
        }
        // Back substitution.
        let mut m = vec![0.0; n];
        m[n - 1] = rhs[n - 1] / diag[n - 1];
        for i in (0..n - 1).rev() {
            m[i] = (rhs[i] - sup[i] * m[i + 1]) / diag[i];
        }

        let segments = (0..n - 1)
            .map(|i| Segment {
                a: (m[i + 1] - m[i]) / (6.0 * h[i]),
                b: m[i] / 2.0,
                c: (y[i + 1] - y[i]) / h[i] - h[i] * (2.0 * m[i] + m[i + 1]) / 6.0,
                d: y[i],
                x: x[i],
            })
            .collect();
        Ok(CubicSpline {
            knots: x.to_vec(),
            values: y.to_vec(),
            segments,
        })
    }

    /// Domain of the spline `[x_first, x_last]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.knots[0], *self.knots.last().unwrap())
    }

    /// The fitted segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    fn segment_index(&self, x: f64) -> usize {
        match self
            .knots
            .binary_search_by(|k| k.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i.min(self.segments.len() - 1),
            Err(i) => i.saturating_sub(1).min(self.segments.len() - 1),
        }
    }

    /// Evaluates the spline at `x` (clamping to the end segments outside the domain).
    pub fn value(&self, x: f64) -> f64 {
        self.segments[self.segment_index(x)].value(x)
    }

    /// Evaluates the spline derivative at `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        self.segments[self.segment_index(x)].derivative(x)
    }

    /// Evaluates the spline only inside its domain.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::OutOfRange`] outside the knot span; this is the
    /// behaviour of the paper's "no extrapolation" control strings.
    pub fn value_strict(&self, x: f64) -> Result<f64> {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return Err(TableError::OutOfRange {
                value: x,
                lower: lo,
                upper: hi,
            });
        }
        Ok(self.value(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let x = [0.0, 1.0, 2.5, 4.0, 5.0];
        let y = [1.0, 2.0, 0.5, 3.0, 2.0];
        let s = CubicSpline::fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert!((s.value(*xi) - yi).abs() < 1e-12);
        }
        assert_eq!(s.segments().len(), 4);
    }

    #[test]
    fn reproduces_smooth_function_between_knots() {
        // sin(x) sampled coarsely: spline error should be well under 1e-2.
        let x: Vec<f64> = (0..=20).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let s = CubicSpline::fit(&x, &y).unwrap();
        for i in 0..200 {
            let q = 0.05 + i as f64 * 0.024;
            assert!((s.value(q) - q.sin()).abs() < 2e-3, "q = {q}");
        }
    }

    #[test]
    fn derivative_approximates_cosine() {
        let x: Vec<f64> = (0..=40).map(|i| i as f64 * 0.125).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let s = CubicSpline::fit(&x, &y).unwrap();
        for i in 1..39 {
            let q = i as f64 * 0.125 + 0.06;
            assert!((s.derivative(q) - q.cos()).abs() < 5e-3);
        }
    }

    #[test]
    fn continuity_of_value_and_first_derivative_at_knots() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 1.0, 0.0, -1.0, 0.0];
        let s = CubicSpline::fit(&x, &y).unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 1..4 {
            let left = s.segments()[i - 1];
            let right = s.segments()[i];
            let xk = x[i];
            assert!((left.value(xk) - right.value(xk)).abs() < 1e-10);
            assert!((left.derivative(xk) - right.derivative(xk)).abs() < 1e-10);
        }
    }

    #[test]
    fn strict_evaluation_rejects_out_of_range() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 4.0];
        let s = CubicSpline::fit(&x, &y).unwrap();
        assert!(s.value_strict(1.5).is_ok());
        assert!(matches!(
            s.value_strict(2.5),
            Err(TableError::OutOfRange { .. })
        ));
        assert!(s.value_strict(-0.1).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            CubicSpline::fit(&[0.0, 1.0], &[0.0, 1.0]),
            Err(TableError::NotEnoughPoints { .. })
        ));
        assert!(matches!(
            CubicSpline::fit(&[0.0, 1.0, 1.0], &[0.0, 1.0, 2.0]),
            Err(TableError::NotMonotonic { .. })
        ));
        assert!(matches!(
            CubicSpline::fit(&[0.0, 1.0, 2.0], &[0.0, 1.0]),
            Err(TableError::Dimension(_))
        ));
    }

    #[test]
    fn natural_boundary_has_zero_second_derivative_at_ends() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 2.0, 1.0, 3.0];
        let s = CubicSpline::fit(&x, &y).unwrap();
        // Second derivative of the first segment at x=0 is 2·b_0, which must be 0.
        assert!(s.segments()[0].b.abs() < 1e-12);
    }
}
