//! Piecewise linear and quadratic interpolation.
//!
//! Verilog-A's `$table_model()` supports three interpolation degrees (linear,
//! quadratic, cubic spline — paper §2.2). Cubic splines live in
//! [`crate::spline`]; this module provides the two lower-order methods so the
//! accuracy/complexity trade-off the paper mentions can be reproduced in the
//! ablation benchmarks.

use crate::error::{Result, TableError};

fn validate(x: &[f64], y: &[f64], needed: usize, q: f64) -> Result<()> {
    if !q.is_finite() {
        // A NaN query compares false against everything, so it would fall
        // through `interval_index`'s clamps into `binary_search` with an
        // arbitrary ordering and silently extrapolate garbage; infinite
        // queries produce NaN through `inf * 0` (flat end segments) or
        // `inf - inf` (the Lagrange stencil). Reject both.
        return Err(TableError::NonFiniteQuery);
    }
    if x.len() != y.len() {
        return Err(TableError::Dimension(format!(
            "x has {} samples but y has {}",
            x.len(),
            y.len()
        )));
    }
    if x.len() < needed {
        return Err(TableError::NotEnoughPoints {
            got: x.len(),
            needed,
        });
    }
    for i in 1..x.len() {
        if x[i] <= x[i - 1] {
            return Err(TableError::NotMonotonic { index: i });
        }
    }
    Ok(())
}

/// Index of the interval `[x_i, x_{i+1}]` containing `q` (clamped to valid intervals).
fn interval_index(x: &[f64], q: f64) -> usize {
    if q <= x[0] {
        return 0;
    }
    if q >= x[x.len() - 1] {
        return x.len() - 2;
    }
    match x.binary_search_by(|k| k.partial_cmp(&q).unwrap_or(std::cmp::Ordering::Less)) {
        Ok(i) => i.min(x.len() - 2),
        Err(i) => (i - 1).min(x.len() - 2),
    }
}

/// Piecewise-linear interpolation of `(x, y)` at `q`.
///
/// Outside the data range the end segments are extended (linear extrapolation).
///
/// # Errors
///
/// Returns an error if fewer than two points are supplied, `x` is not
/// strictly increasing, or `q` is not finite.
pub fn linear(x: &[f64], y: &[f64], q: f64) -> Result<f64> {
    validate(x, y, 2, q)?;
    let i = interval_index(x, q);
    let t = (q - x[i]) / (x[i + 1] - x[i]);
    Ok(y[i] + t * (y[i + 1] - y[i]))
}

/// Piecewise-quadratic interpolation of `(x, y)` at `q`.
///
/// Each query uses the Lagrange parabola through the three nearest samples.
///
/// # Errors
///
/// Returns an error if fewer than three points are supplied, `x` is not
/// strictly increasing, or `q` is not finite.
pub fn quadratic(x: &[f64], y: &[f64], q: f64) -> Result<f64> {
    validate(x, y, 3, q)?;
    let i = interval_index(x, q);
    // Choose a centred three-point stencil.
    let start = if i == 0 {
        0
    } else if i + 2 >= x.len() {
        x.len() - 3
    } else if (q - x[i]).abs() < (x[i + 1] - q).abs() {
        i - 1
    } else {
        i
    };
    let (x0, x1, x2) = (x[start], x[start + 1], x[start + 2]);
    let (y0, y1, y2) = (y[start], y[start + 1], y[start + 2]);
    let l0 = (q - x1) * (q - x2) / ((x0 - x1) * (x0 - x2));
    let l1 = (q - x0) * (q - x2) / ((x1 - x0) * (x1 - x2));
    let l2 = (q - x0) * (q - x1) / ((x2 - x0) * (x2 - x1));
    Ok(y0 * l0 + y1 * l1 + y2 * l2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_samples_and_midpoints() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 10.0, 20.0];
        assert_eq!(linear(&x, &y, 1.0).unwrap(), 10.0);
        assert_eq!(linear(&x, &y, 0.5).unwrap(), 5.0);
        assert_eq!(linear(&x, &y, 1.75).unwrap(), 17.5);
        // Linear extrapolation beyond the ends.
        assert_eq!(linear(&x, &y, 3.0).unwrap(), 30.0);
        assert_eq!(linear(&x, &y, -1.0).unwrap(), -10.0);
    }

    #[test]
    fn non_finite_queries_are_rejected_not_extrapolated() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 10.0, 20.0, 30.0];
        for q in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(linear(&x, &y, q), Err(TableError::NonFiniteQuery));
            assert_eq!(quadratic(&x, &y, q), Err(TableError::NonFiniteQuery));
        }
        // An infinite query on a *flat* end segment would otherwise produce
        // `inf * 0 = NaN` — silent garbage, the very class of bug the
        // rejection exists for.
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(
            linear(&x, &flat, f64::INFINITY),
            Err(TableError::NonFiniteQuery)
        );
    }

    #[test]
    fn quadratic_reproduces_parabola_exactly() {
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v * v - 3.0 * v + 1.0).collect();
        for q in [0.3, 1.7, 2.5, 4.9] {
            let expected = 2.0 * q * q - 3.0 * q + 1.0;
            assert!((quadratic(&x, &y, q).unwrap() - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn quadratic_is_more_accurate_than_linear_on_curved_data() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let q: f64 = 2.26;
        let exact = q.exp();
        let lin_err = (linear(&x, &y, q).unwrap() - exact).abs();
        let quad_err = (quadratic(&x, &y, q).unwrap() - exact).abs();
        assert!(quad_err < lin_err);
    }

    #[test]
    fn errors_for_bad_input() {
        assert!(linear(&[1.0], &[1.0], 0.5).is_err());
        assert!(quadratic(&[1.0, 2.0], &[1.0, 2.0], 1.5).is_err());
        assert!(linear(&[0.0, 0.0, 1.0], &[1.0, 2.0, 3.0], 0.5).is_err());
        assert!(linear(&[0.0, 1.0], &[1.0], 0.5).is_err());
    }
}
