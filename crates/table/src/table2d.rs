//! Two-dimensional scattered-data table models.
//!
//! The paper's behavioural module looks designable parameters up from *two*
//! performance inputs: `lp1 = $table_model(gain_prop, pm_prop, "lp1_data.tbl",
//! "3E,3E")`. The underlying data — the Pareto front — is *scattered* in the
//! (gain, phase-margin) plane rather than gridded, so this implementation uses
//! modified Shepard (inverse-distance-weighted) interpolation with per-axis
//! normalisation, which degrades gracefully for curve-like data sets.

use crate::error::{Result, TableError};
use serde::{Deserialize, Serialize};

/// A scattered-data two-input lookup table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2d {
    x1: Vec<f64>,
    x2: Vec<f64>,
    y: Vec<f64>,
    /// Inverse-distance power (2.0 is the classic Shepard weighting).
    power: f64,
    /// Number of nearest neighbours used per query.
    neighbours: usize,
    /// Allow queries outside the convex hull's bounding box.
    allow_extrapolation: bool,
}

impl Table2d {
    /// Builds a table from scattered `(x1, x2) → y` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if the slices have different lengths or fewer than
    /// three samples are provided.
    pub fn new(x1: &[f64], x2: &[f64], y: &[f64]) -> Result<Self> {
        if x1.len() != x2.len() || x1.len() != y.len() {
            return Err(TableError::Dimension(format!(
                "inconsistent column lengths: {} / {} / {}",
                x1.len(),
                x2.len(),
                y.len()
            )));
        }
        if x1.len() < 3 {
            return Err(TableError::NotEnoughPoints {
                got: x1.len(),
                needed: 3,
            });
        }
        Ok(Table2d {
            x1: x1.to_vec(),
            x2: x2.to_vec(),
            y: y.to_vec(),
            power: 2.0,
            neighbours: 8,
            allow_extrapolation: false,
        })
    }

    /// Sets the number of nearest neighbours blended per query (minimum 1).
    pub fn with_neighbours(mut self, neighbours: usize) -> Self {
        self.neighbours = neighbours.max(1);
        self
    }

    /// Enables bounding-box extrapolation (queries outside the data range are
    /// answered by the same weighted blend instead of an error).
    pub fn with_extrapolation(mut self, allow: bool) -> Self {
        self.allow_extrapolation = allow;
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Returns `true` if the table holds no samples (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Bounding box of the sampled inputs: `((x1_min, x1_max), (x2_min, x2_max))`.
    pub fn bounds(&self) -> ((f64, f64), (f64, f64)) {
        let min_max = |v: &[f64]| {
            (
                v.iter().cloned().fold(f64::INFINITY, f64::min),
                v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        (min_max(&self.x1), min_max(&self.x2))
    }

    /// Looks the table up at `(q1, q2)`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::OutOfRange`] when the query lies outside the
    /// bounding box of the samples and extrapolation is disabled, and
    /// [`TableError::NonFiniteQuery`] for NaN or infinite queries (which
    /// would otherwise slip through the range checks and poison the
    /// distance-weighted interpolation).
    pub fn lookup(&self, q1: f64, q2: f64) -> Result<f64> {
        if !q1.is_finite() || !q2.is_finite() {
            return Err(TableError::NonFiniteQuery);
        }
        let ((x1_lo, x1_hi), (x2_lo, x2_hi)) = self.bounds();
        if !self.allow_extrapolation {
            let tol1 = 1e-9 * (x1_hi - x1_lo).abs().max(1.0);
            let tol2 = 1e-9 * (x2_hi - x2_lo).abs().max(1.0);
            if q1 < x1_lo - tol1 || q1 > x1_hi + tol1 {
                return Err(TableError::OutOfRange {
                    value: q1,
                    lower: x1_lo,
                    upper: x1_hi,
                });
            }
            if q2 < x2_lo - tol2 || q2 > x2_hi + tol2 {
                return Err(TableError::OutOfRange {
                    value: q2,
                    lower: x2_lo,
                    upper: x2_hi,
                });
            }
        }
        // Normalise each axis to [0, 1] so gain (dB) and phase margin
        // (degrees) contribute comparably to the distance metric.
        let s1 = (x1_hi - x1_lo).max(1e-30);
        let s2 = (x2_hi - x2_lo).max(1e-30);
        let mut distances: Vec<(f64, f64)> = self
            .x1
            .iter()
            .zip(self.x2.iter())
            .zip(self.y.iter())
            .map(|((&a, &b), &value)| {
                let d1 = (q1 - a) / s1;
                let d2 = (q2 - b) / s2;
                ((d1 * d1 + d2 * d2).sqrt(), value)
            })
            .collect();
        distances.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Exact (or numerically exact) hit.
        if distances[0].0 < 1e-12 {
            return Ok(distances[0].1);
        }
        let k = self.neighbours.min(distances.len());
        let mut weight_sum = 0.0;
        let mut value_sum = 0.0;
        for &(d, v) in distances.iter().take(k) {
            let w = 1.0 / d.powf(self.power);
            weight_sum += w;
            value_sum += w * v;
        }
        Ok(value_sum / weight_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_queries_are_rejected() {
        let table = plane_table();
        assert_eq!(table.lookup(f64::NAN, 1.0), Err(TableError::NonFiniteQuery));
        assert_eq!(
            table.lookup(1.0, f64::INFINITY),
            Err(TableError::NonFiniteQuery)
        );
    }

    fn plane_table() -> Table2d {
        // y = 2·x1 + 3·x2 sampled on a 6×6 grid.
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let a = i as f64;
                let b = j as f64;
                x1.push(a);
                x2.push(b);
                y.push(2.0 * a + 3.0 * b);
            }
        }
        Table2d::new(&x1, &x2, &y).unwrap()
    }

    #[test]
    fn exact_sample_points_are_returned_exactly() {
        let t = plane_table();
        assert_eq!(t.lookup(2.0, 3.0).unwrap(), 13.0);
        assert_eq!(t.lookup(0.0, 0.0).unwrap(), 0.0);
        assert_eq!(t.len(), 36);
    }

    #[test]
    fn interior_queries_are_close_to_the_underlying_plane() {
        let t = plane_table().with_neighbours(6);
        let got = t.lookup(2.5, 2.5).unwrap();
        let expected = 2.0 * 2.5 + 3.0 * 2.5;
        assert!(
            (got - expected).abs() < 0.8,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn out_of_range_is_rejected_without_extrapolation() {
        let t = plane_table();
        assert!(matches!(
            t.lookup(7.0, 1.0),
            Err(TableError::OutOfRange { .. })
        ));
        assert!(matches!(
            t.lookup(1.0, -1.0),
            Err(TableError::OutOfRange { .. })
        ));
        let t = plane_table().with_extrapolation(true);
        assert!(t.lookup(7.0, 1.0).is_ok());
    }

    #[test]
    fn curve_like_data_interpolates_along_the_curve() {
        // Points along a Pareto-like curve: x2 = 100 - x1², y = parameter = x1.
        let x1: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 0.1).collect();
        let x2: Vec<f64> = x1.iter().map(|v| 100.0 - v * v).collect();
        let y: Vec<f64> = x1.clone();
        let t = Table2d::new(&x1, &x2, &y).unwrap().with_neighbours(4);
        // Query a point on the curve between samples.
        let q1 = 2.05;
        let q2 = 100.0 - q1 * q1;
        let got = t.lookup(q1, q2).unwrap();
        assert!((got - q1).abs() < 0.05, "got {got}");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(Table2d::new(&[1.0, 2.0], &[1.0, 2.0], &[1.0]).is_err());
        assert!(Table2d::new(&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn bounds_report_data_extent() {
        let t = plane_table();
        let ((a, b), (c, d)) = t.bounds();
        assert_eq!((a, b), (0.0, 5.0));
        assert_eq!((c, d), (0.0, 5.0));
        assert!(!t.is_empty());
    }
}
