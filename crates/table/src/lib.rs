//! # ayb-table — spline interpolation and Verilog-A style table models
//!
//! This crate reproduces the table-model machinery the paper builds its
//! behavioural models on (§2.2, §3.5):
//!
//! * [`CubicSpline`] — natural cubic splines (paper eq. 3),
//! * [`interp`] — the lower-order (linear / quadratic) alternatives,
//! * [`Table1d`] / [`Table2d`] — one- and two-input lookup tables with
//!   configurable interpolation and extrapolation,
//! * [`ControlString`] — `$table_model()` control strings such as `"3E"`,
//! * [`TableFile`] — the plain-text `.tbl` data-file format,
//! * [`TableModel`] — the `$table_model()` equivalent tying all of it together.
//!
//! # Examples
//!
//! Building the paper's `gain_delta` lookup:
//!
//! ```
//! use ayb_table::{TableFile, TableModel};
//!
//! # fn main() -> Result<(), ayb_table::TableError> {
//! let mut file = TableFile::new(1);
//! // (gain [dB], delta gain [%]) pairs, like Table 2 of the paper.
//! file.push_row(vec![49.78, 0.52])?;
//! file.push_row(vec![49.98, 0.51])?;
//! file.push_row(vec![50.35, 0.50])?;
//! file.push_row(vec![51.06, 0.44])?;
//! file.push_row(vec![51.62, 0.42])?;
//!
//! let gain_delta = TableModel::from_file_with_control(&file, "3E")?;
//! let delta_at_50db = gain_delta.lookup(&[50.0])?;
//! assert!(delta_at_50db > 0.4 && delta_at_50db < 0.6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod error;
pub mod file;
pub mod interp;
pub mod spline;
pub mod table1d;
pub mod table2d;
pub mod tablemodel;

pub use control::{ControlString, DimensionControl, Extrapolation, Interpolation};
pub use error::{Result, TableError};
pub use file::TableFile;
pub use spline::{CubicSpline, Segment};
pub use table1d::Table1d;
pub use table2d::Table2d;
pub use tablemodel::TableModel;
