//! Error types for table models.

use std::fmt;

/// Errors produced while building or evaluating table models.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// Fewer data points than the interpolation order requires.
    NotEnoughPoints {
        /// Points supplied.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// The abscissa values are not strictly increasing.
    NotMonotonic {
        /// Index at which monotonicity is violated.
        index: usize,
    },
    /// A query point lies outside the table and extrapolation is disabled.
    OutOfRange {
        /// Query value.
        value: f64,
        /// Table lower bound.
        lower: f64,
        /// Table upper bound.
        upper: f64,
    },
    /// An interpolation query value was NaN or infinite.
    NonFiniteQuery,
    /// A `$table_model` control string could not be parsed.
    ControlString(String),
    /// A `.tbl` data file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Mismatched column counts or dimensions.
    Dimension(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::NotEnoughPoints { got, needed } => {
                write!(f, "need at least {needed} data points, got {got}")
            }
            TableError::NotMonotonic { index } => {
                write!(
                    f,
                    "abscissa values must be strictly increasing (violation at index {index})"
                )
            }
            TableError::OutOfRange {
                value,
                lower,
                upper,
            } => write!(
                f,
                "query {value} outside table range [{lower}, {upper}] and extrapolation is disabled"
            ),
            TableError::NonFiniteQuery => {
                write!(f, "interpolation query is not finite (NaN or infinity)")
            }
            TableError::ControlString(s) => write!(f, "invalid control string `{s}`"),
            TableError::Parse { line, reason } => {
                write!(f, "table file parse error at line {line}: {reason}")
            }
            TableError::Dimension(reason) => write!(f, "dimension mismatch: {reason}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Convenience result alias for table operations.
pub type Result<T> = std::result::Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_values() {
        let err = TableError::OutOfRange {
            value: 5.0,
            lower: 0.0,
            upper: 1.0,
        };
        assert!(err.to_string().contains('5'));
        let err = TableError::NotEnoughPoints { got: 1, needed: 4 };
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TableError>();
    }
}
