//! One benchmark group per table / figure of the paper's evaluation section,
//! measuring the cost of regenerating that artefact (at a scaled-down
//! workload; the report binaries in `src/bin/` produce the artefacts
//! themselves).

use ayb_behavioral::{CombinedOtaModel, OtaBehavior, OtaSpec, ParetoPointData};
use ayb_circuit::ota::{OtaParameters, OtaTestbenchConfig};
use ayb_circuit::DesignPoint;
use ayb_core::ota_problem::{evaluate_ota, OtaSizingProblem};
use ayb_core::{flow, FlowConfig};
use ayb_moo::{pareto_front, Evaluation, Sense, Wbga};
use ayb_sim::FrequencySweep;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn tiny_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.ga.population_size = 8;
    config.ga.generations = 4;
    config.monte_carlo.samples = 4;
    config.max_pareto_points = 4;
    config.sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);
    config
}

/// A synthetic but realistic combined model (avoids running the flow in
/// benches that only exercise the model-use path).
fn synthetic_model() -> CombinedOtaModel {
    let points: Vec<ParetoPointData> = (0..40)
        .map(|i| ParetoPointData {
            gain_db: 48.0 + i as f64 * 0.1,
            phase_margin_deg: 78.0 - i as f64 * 0.12,
            gain_delta_percent: 0.6 - i as f64 * 0.003,
            pm_delta_percent: 1.4 + i as f64 * 0.008,
            unity_gain_hz: 8e6 + i as f64 * 1e5,
            parameters: DesignPoint::new()
                .with("w1", 20e-6 + i as f64 * 0.8e-6)
                .with("l1", 1.2e-6 - i as f64 * 0.01e-6)
                .with("w2", 25e-6)
                .with("l2", 1.0e-6)
                .with("w3", 20e-6)
                .with("l3", 1.0e-6)
                .with("w4", 14e-6)
                .with("l4", 1.0e-6),
        })
        .collect();
    CombinedOtaModel::from_pareto_data(points, 3.0).expect("synthetic model builds")
}

/// Figure 7: WBGA exploration plus Pareto extraction (scaled-down budget).
fn bench_fig7(c: &mut Criterion) {
    let config = tiny_config();
    let problem = OtaSizingProblem::new(OtaTestbenchConfig::new(), config.sweep.clone());
    c.bench_function("fig7/wbga_exploration_32_simulations", |b| {
        b.iter(|| Wbga::new(config.ga).run(black_box(&problem)))
    });

    // Pareto extraction alone over a large synthetic archive (the paper
    // filters 10 000 points down to 1022).
    let mut seed = 1u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as f64) / (1u64 << 31) as f64
    };
    let archive: Vec<Evaluation> = (0..10_000)
        .map(|_| {
            let g = 45.0 + 10.0 * next();
            let pm = 60.0 + 25.0 * next();
            Evaluation::new(vec![0.0], vec![g, pm])
        })
        .collect();
    let senses = [Sense::Maximize, Sense::Maximize];
    c.bench_function("fig7/pareto_extraction_10000_points", |b| {
        b.iter(|| pareto_front(black_box(&archive), &senses))
    });
}

/// Table 2: Monte Carlo variation analysis of a single Pareto point.
fn bench_table2(c: &mut Criterion) {
    let config = tiny_config();
    let problem = OtaSizingProblem::new(OtaTestbenchConfig::new(), config.sweep.clone());
    let point = Evaluation::new(vec![0.5; 8], vec![0.0, 0.0]);
    c.bench_function("table2/mc_variation_one_point_4_samples", |b| {
        b.iter(|| flow::analyse_pareto_point(black_box(&problem), black_box(&point), &config))
    });
}

/// Table 3: retargeting lookups on the combined model.
fn bench_table3(c: &mut Criterion) {
    let model = synthetic_model();
    let spec = OtaSpec::new(50.0, 74.0);
    c.bench_function("table3/model_retarget_and_parameter_lookup", |b| {
        b.iter(|| model.design_for_spec(black_box(&spec)).expect("achievable"))
    });
}

/// Table 4: one transistor-level verification simulation.
fn bench_table4(c: &mut Criterion) {
    let config = tiny_config();
    let params = OtaParameters::nominal();
    c.bench_function("table4/transistor_verification_simulation", |b| {
        b.iter(|| {
            evaluate_ota(black_box(&params), &config.testbench, &config.sweep).expect("simulates")
        })
    });
}

/// Figure 8: behavioural-model frequency response reconstruction.
fn bench_fig8(c: &mut Criterion) {
    let behavior = OtaBehavior::new(50.3, 75.3, 9.5e6);
    let freqs = FrequencySweep::logarithmic(10.0, 1e9, 10).frequencies();
    c.bench_function("fig8/behavioural_frequency_response", |b| {
        b.iter(|| behavior.frequency_response(black_box(&freqs)))
    });
}

/// Figures 9–11: behavioural filter evaluation (the §5 inner loop).
fn bench_fig10_11(c: &mut Criterion) {
    use ayb_behavioral::filter::{filter_sweep, simulate_macromodel_filter, size_capacitors_for};
    let behavior = OtaBehavior::new(50.3, 75.3, 9.5e6);
    let macro_spec = behavior.to_macro_spec(5e-12);
    let caps = size_capacitors_for(1.6e6, std::f64::consts::FRAC_1_SQRT_2, macro_spec.gm);
    c.bench_function("fig11/behavioural_filter_evaluation", |b| {
        b.iter(|| {
            simulate_macromodel_filter(black_box(&caps), &macro_spec, &filter_sweep())
                .expect("filter simulates")
        })
    });
}

/// Table 5: the whole flow at a very small scale (cost scales linearly with
/// the evaluation budget, so the full-scale time can be extrapolated).
fn bench_table5(c: &mut Criterion) {
    let config = tiny_config();
    c.bench_function("table5/full_flow_tiny_scale", |b| {
        b.iter(|| flow::generate_model(black_box(&config)).expect("flow completes"))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig7, bench_table2, bench_table3, bench_table4, bench_fig8, bench_fig10_11, bench_table5
}
criterion_main!(benches);
