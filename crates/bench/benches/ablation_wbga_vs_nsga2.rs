//! Ablation of the optimiser choice: the paper's weight-based GA versus the
//! NSGA-II baseline (and uniform random search) at the same evaluation
//! budget. Every algorithm runs through the same `ayb_moo::Optimizer` trait
//! object — the exact code path the model-generation flow uses — so the
//! comparison measures the algorithms, not divergent plumbing. Criterion
//! measures runtime; the front-quality comparison (hypervolume, front size)
//! is printed to stderr.

use ayb_moo::{hypervolume_2d, FnProblem, GaConfig, ObjectiveSpec, Optimizer, OptimizerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A cheap analytic stand-in for the OTA trade-off: maximise both objectives,
/// concave front, two nuisance dimensions.
fn surrogate_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync> {
    FnProblem::new(
        4,
        vec![
            ObjectiveSpec::maximize("gain_like"),
            ObjectiveSpec::maximize("pm_like"),
        ],
        |x: &[f64]| {
            let spread = 1.0 - 0.3 * ((x[2] - 0.5).abs() + (x[3] - 0.5).abs());
            let gain = 49.0 + 3.0 * x[0] * spread;
            let pm = 72.0 + 6.0 * (1.0 - x[0] * x[0]).sqrt() * spread - 2.0 * x[1];
            Some(vec![gain, pm])
        },
    )
}

fn ga_config() -> GaConfig {
    GaConfig {
        population_size: 40,
        generations: 25,
        ..GaConfig::small_test()
    }
}

/// Every optimiser variant at the same evaluation budget.
fn contenders() -> Vec<OptimizerConfig> {
    let cfg = ga_config();
    vec![
        OptimizerConfig::Wbga(cfg),
        OptimizerConfig::Nsga2(cfg),
        OptimizerConfig::RandomSearch {
            budget: cfg.evaluation_budget(),
            seed: cfg.seed,
        },
    ]
}

fn report_front_quality() {
    let problem = surrogate_problem();
    let reference = [48.0, 65.0];
    for config in contenders() {
        let result = config.build().run(&problem);
        let front = result.pareto_front();
        let hv = hypervolume_2d(&front, reference, &result.senses);
        eprintln!(
            "[ablation_wbga_vs_nsga2] {:<13}: front {:>3} points, hypervolume {hv:.2}, {} evaluations",
            config.name(),
            front.len(),
            result.evaluations
        );
    }
}

fn bench_optimizers(c: &mut Criterion) {
    report_front_quality();
    let problem = surrogate_problem();
    let mut group = c.benchmark_group("optimizer_1000_evaluations");
    for config in contenders() {
        let optimizer: Box<dyn Optimizer> = config.build();
        group.bench_function(config.name(), |b| {
            b.iter(|| optimizer.run(black_box(&problem)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_optimizers
}
criterion_main!(benches);
