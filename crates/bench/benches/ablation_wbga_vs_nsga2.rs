//! Ablation of the optimiser choice: the paper's weight-based GA versus the
//! NSGA-II baseline at the same evaluation budget. Criterion measures runtime;
//! the front-quality comparison (hypervolume, front size) is printed to stderr.

use ayb_moo::{hypervolume_2d, FnProblem, GaConfig, Nsga2, ObjectiveSpec, Wbga};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A cheap analytic stand-in for the OTA trade-off: maximise both objectives,
/// concave front, two nuisance dimensions.
fn surrogate_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
    FnProblem::new(
        4,
        vec![
            ObjectiveSpec::maximize("gain_like"),
            ObjectiveSpec::maximize("pm_like"),
        ],
        |x: &[f64]| {
            let spread = 1.0 - 0.3 * ((x[2] - 0.5).abs() + (x[3] - 0.5).abs());
            let gain = 49.0 + 3.0 * x[0] * spread;
            let pm = 72.0 + 6.0 * (1.0 - x[0] * x[0]).sqrt() * spread - 2.0 * x[1];
            Some(vec![gain, pm])
        },
    )
}

fn ga_config() -> GaConfig {
    GaConfig {
        population_size: 40,
        generations: 25,
        ..GaConfig::small_test()
    }
}

fn report_front_quality() {
    let problem = surrogate_problem();
    let cfg = ga_config();
    let wbga = Wbga::new(cfg).run(&problem);
    let nsga2 = Nsga2::new(cfg).run(&problem);
    let reference = [48.0, 65.0];
    let hv_wbga = hypervolume_2d(&wbga.pareto_front(), reference, &wbga.senses);
    let hv_nsga2 = hypervolume_2d(&nsga2.pareto_front(), reference, &nsga2.senses);
    eprintln!(
        "[ablation_wbga_vs_nsga2] WBGA : front {} points, hypervolume {hv_wbga:.2}",
        wbga.pareto_front().len()
    );
    eprintln!(
        "[ablation_wbga_vs_nsga2] NSGA2: front {} points, hypervolume {hv_nsga2:.2}",
        nsga2.pareto_front().len()
    );
}

fn bench_optimizers(c: &mut Criterion) {
    report_front_quality();
    let problem = surrogate_problem();
    let cfg = ga_config();
    let mut group = c.benchmark_group("optimizer_1000_evaluations");
    group.bench_function("wbga", |b| {
        b.iter(|| Wbga::new(cfg).run(black_box(&problem)))
    });
    group.bench_function("nsga2", |b| {
        b.iter(|| Nsga2::new(cfg).run(black_box(&problem)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_optimizers
}
criterion_main!(benches);
