//! Benchmarks of the simulation kernel that every experiment in the paper
//! rests on: MOSFET evaluation, DC operating point and AC sweep of the
//! ten-transistor OTA test bench.

use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_circuit::{Mosfet, MosfetModelCard, NodeId};
use ayb_sim::{ac_analysis, dc_operating_point, mosfet, DcOptions, FrequencySweep};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_mosfet_eval(c: &mut Criterion) {
    let card = MosfetModelCard::nmos_035um();
    let device = Mosfet::new(
        NodeId::GROUND,
        NodeId::GROUND,
        NodeId::GROUND,
        NodeId::GROUND,
        "nmos",
        20e-6,
        1e-6,
    );
    c.bench_function("sim_kernel/mosfet_evaluate", |b| {
        b.iter(|| mosfet::evaluate(black_box(&card), black_box(&device), 1.3, 1.0, 0.0, 0.0))
    });
}

fn bench_dc_operating_point(c: &mut Criterion) {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    c.bench_function("sim_kernel/ota_dc_operating_point", |b| {
        b.iter(|| dc_operating_point(black_box(&tb), &DcOptions::new()).expect("converges"))
    });
}

fn bench_ac_sweep(c: &mut Criterion) {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("converges");
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 8);
    c.bench_function("sim_kernel/ota_ac_sweep_65_points", |b| {
        b.iter(|| ac_analysis(black_box(&tb), black_box(&op), &sweep).expect("ac runs"))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mosfet_eval, bench_dc_operating_point, bench_ac_sweep
}
criterion_main!(benches);
