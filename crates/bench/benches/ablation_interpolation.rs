//! Ablation of the table-model interpolation order (paper §2.2): cubic spline
//! (the paper's choice, "3E") versus quadratic and linear interpolation.
//! Criterion measures lookup cost; the accuracy comparison is printed once to
//! stderr so it lands in the bench log.

use ayb_table::{DimensionControl, Extrapolation, Interpolation, Table1d};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Pareto-front-like data: gain variation versus gain, smooth but curved.
fn sample_data() -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..24).map(|i| 49.0 + i as f64 * 0.125).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|g| 0.55 - 0.04 * (g - 49.0) + 0.01 * ((g - 49.0) * 1.3).sin())
        .collect();
    (x, y)
}

fn table_with(interpolation: Interpolation) -> Table1d {
    let (x, y) = sample_data();
    Table1d::new(
        &x,
        &y,
        DimensionControl {
            interpolation,
            extrapolation: Extrapolation::Clamp,
        },
    )
    .expect("table builds")
}

fn report_accuracy() {
    // Hold out every other point and measure reconstruction error.
    let (x, y) = sample_data();
    let train_x: Vec<f64> = x.iter().copied().step_by(2).collect();
    let train_y: Vec<f64> = y.iter().copied().step_by(2).collect();
    for (name, interpolation) in [
        ("linear", Interpolation::Linear),
        ("quadratic", Interpolation::Quadratic),
        ("cubic_spline", Interpolation::CubicSpline),
    ] {
        let table = Table1d::new(
            &train_x,
            &train_y,
            DimensionControl {
                interpolation,
                extrapolation: Extrapolation::Clamp,
            },
        )
        .expect("table builds");
        let mut max_err = 0.0f64;
        for (xi, yi) in x.iter().zip(y.iter()).skip(1).step_by(2) {
            max_err = max_err.max((table.lookup(*xi).unwrap() - yi).abs());
        }
        eprintln!("[ablation_interpolation] {name:<13} held-out max error = {max_err:.3e}");
    }
}

fn bench_lookup(c: &mut Criterion) {
    report_accuracy();
    let queries: Vec<f64> = (0..100).map(|i| 49.05 + i as f64 * 0.028).collect();
    let mut group = c.benchmark_group("table_lookup_100_queries");
    for (name, interpolation) in [
        ("linear", Interpolation::Linear),
        ("quadratic", Interpolation::Quadratic),
        ("cubic_spline", Interpolation::CubicSpline),
    ] {
        let table = table_with(interpolation);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &q in &queries {
                    acc += table.lookup(black_box(q)).unwrap();
                }
                acc
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lookup
}
criterion_main!(benches);
