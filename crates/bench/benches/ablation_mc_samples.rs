//! Ablation of the Monte Carlo sample count used per Pareto point (the paper
//! uses 200): cost scales linearly while the variation estimate converges as
//! 1/√N. Criterion measures the cost; the convergence of the ΔGain estimate is
//! printed to stderr.

use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_core::measure_testbench;
use ayb_process::{montecarlo, MonteCarloConfig, ProcessVariation, Summary};
use ayb_sim::FrequencySweep;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn report_convergence() {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let variation = ProcessVariation::generic_035um();
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);
    for samples in [8usize, 16, 32, 64] {
        let run = montecarlo::run_parallel(
            &tb,
            &variation,
            &MonteCarloConfig::new(samples, 42),
            4,
            |sample| measure_testbench(sample, &sweep).map(|p| p.gain_db),
        );
        if let Some(stats) = Summary::of(&run.values) {
            eprintln!(
                "[ablation_mc_samples] N = {samples:>3}: dGain(3-sigma) = {:.3}% (sigma {:.4} dB)",
                stats.variation_percent(3.0),
                stats.std_dev
            );
        }
    }
}

fn bench_mc_sample_counts(c: &mut Criterion) {
    report_convergence();
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let variation = ProcessVariation::generic_035um();
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);

    let mut group = c.benchmark_group("mc_variation_per_pareto_point");
    for samples in [4usize, 8, 16] {
        group.bench_function(format!("{samples}_samples"), |b| {
            b.iter(|| {
                montecarlo::run(
                    black_box(&tb),
                    &variation,
                    &MonteCarloConfig::new(samples, 7),
                    |sample| measure_testbench(sample, &sweep).map(|p| p.gain_db),
                )
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mc_sample_counts
}
criterion_main!(benches);
