//! Batch-evaluation scheduler benchmark: work-stealing versus a simulated
//! fixed-chunk split under skewed per-candidate cost.
//!
//! `evaluate_batch_parallel` hands candidates out through an atomic-index
//! work queue, so a handful of expensive evaluations (slow-to-converge bias
//! points) no longer serialise behind one unlucky chunk. The benchmark pits
//! the real scheduler against a faithful reimplementation of the old
//! fixed-chunk split on a batch whose last quarter is ~50x more expensive —
//! the pattern GA populations show near parameter-space corners.
//!
//! On a single-core machine all three variants necessarily time alike; the
//! gap (work stealing ≈ total/threads versus fixed chunks ≈ the expensive
//! tail serialised on one thread) only shows with ≥2 hardware threads.

use ayb_moo::{evaluate_batch_parallel, Evaluation, FnProblem, ObjectiveSpec, SizingProblem};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const THREADS: usize = 4;
const BATCH: usize = 64;

/// Cost skew: cheap candidates spin briefly, the expensive tail spins ~50x
/// longer. Deterministic, allocation-free work.
fn skewed_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync> {
    FnProblem::new(
        1,
        vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
        |x: &[f64]| {
            let spins = if x[0] >= 0.75 { 250_000 } else { 5_000 };
            let mut acc = 1.0 + x[0];
            for _ in 0..spins {
                acc = (acc * 1.000_000_3).min(1e9);
            }
            Some(vec![x[0], acc % 10.0])
        },
    )
}

fn batch() -> Vec<Vec<f64>> {
    // The expensive candidates cluster at the end of the batch — the worst
    // case for a contiguous fixed-chunk split.
    (0..BATCH).map(|i| vec![i as f64 / BATCH as f64]).collect()
}

/// The pre-work-stealing scheduler: contiguous fixed chunks, one per thread.
fn evaluate_fixed_chunks<P: SizingProblem + ?Sized>(
    problem: &P,
    batch: &[Vec<f64>],
    threads: usize,
) -> Vec<Option<Evaluation>> {
    let chunk = batch.len().div_ceil(threads).max(1);
    let mut slots: Vec<Option<Evaluation>> = Vec::with_capacity(batch.len());
    slots.resize_with(batch.len(), || None);
    std::thread::scope(|scope| {
        for (batch_chunk, slot_chunk) in batch.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (parameters, slot) in batch_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = problem
                        .evaluate(parameters)
                        .map(|objectives| Evaluation::new(parameters.clone(), objectives));
                }
            });
        }
    });
    slots
}

fn bench_schedulers(c: &mut Criterion) {
    let problem = skewed_problem();
    let candidates = batch();

    // Both schedulers must agree exactly — scheduling must never change
    // results, only wall-clock time.
    assert_eq!(
        evaluate_batch_parallel(&problem, &candidates, THREADS),
        evaluate_fixed_chunks(&problem, &candidates, THREADS),
    );

    c.bench_function("batch_scheduler/work_stealing_4t", |b| {
        b.iter(|| {
            black_box(evaluate_batch_parallel(
                &problem,
                black_box(&candidates),
                THREADS,
            ))
        })
    });
    c.bench_function("batch_scheduler/fixed_chunks_4t", |b| {
        b.iter(|| {
            black_box(evaluate_fixed_chunks(
                &problem,
                black_box(&candidates),
                THREADS,
            ))
        })
    });
    c.bench_function("batch_scheduler/sequential", |b| {
        b.iter(|| black_box(evaluate_batch_parallel(&problem, black_box(&candidates), 1)))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_schedulers
}
criterion_main!(benches);
