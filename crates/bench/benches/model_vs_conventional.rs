//! The headline comparison of the paper: answering yield / sizing questions
//! through the behavioural model versus the conventional transistor-in-the-
//! loop Monte Carlo approach.

use ayb_behavioral::filter::{filter_sweep, simulate_macromodel_filter, size_capacitors_for};
use ayb_behavioral::{CombinedOtaModel, FilterSpec, OtaBehavior, OtaSpec, ParetoPointData};
use ayb_circuit::ota::OtaParameters;
use ayb_core::{conventional, filter_design, FlowConfig};
use ayb_sim::FrequencySweep;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn synthetic_model() -> CombinedOtaModel {
    let points: Vec<ParetoPointData> = (0..30)
        .map(|i| ParetoPointData {
            gain_db: 47.0 + i as f64 * 0.2,
            phase_margin_deg: 80.0 - i as f64 * 0.3,
            gain_delta_percent: 0.5,
            pm_delta_percent: 1.5,
            unity_gain_hz: 9e6,
            parameters: OtaParameters::nominal().to_design_point(),
        })
        .collect();
    CombinedOtaModel::from_pareto_data(points, 3.0).expect("model builds")
}

fn bench_ota_yield_query(c: &mut Criterion) {
    let mut config = FlowConfig::reduced();
    config.sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);
    let model = synthetic_model();
    let spec = OtaSpec::new(50.0, 70.0);
    let nominal = OtaParameters::nominal();

    let mut group = c.benchmark_group("ota_yield_query");
    group.bench_function("model_based_lookup", |b| {
        b.iter(|| conventional::model_based_ota_yield(black_box(&model), black_box(&spec)))
    });
    group.bench_function("conventional_transistor_mc_16_samples", |b| {
        b.iter(|| {
            conventional::conventional_ota_yield(black_box(&nominal), &spec, &config, 16, 3)
                .expect("yield runs")
        })
    });
    group.finish();
}

fn bench_filter_candidate_evaluation(c: &mut Criterion) {
    let mut config = FlowConfig::reduced();
    config.sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);
    let behavior = OtaBehavior::new(50.3, 75.0, 9.5e6);
    let macro_spec = behavior.to_macro_spec(config.testbench.cload);
    let caps = size_capacitors_for(1.6e6, std::f64::consts::FRAC_1_SQRT_2, macro_spec.gm);
    let ota_params = OtaParameters::nominal();
    let spec = FilterSpec::anti_aliasing_1mhz();

    let mut group = c.benchmark_group("filter_candidate_evaluation");
    group.bench_function("behavioural_macromodel_filter", |b| {
        b.iter(|| {
            simulate_macromodel_filter(black_box(&caps), &macro_spec, &filter_sweep())
                .expect("behavioural filter simulates")
        })
    });
    group.bench_function("transistor_level_filter_40_mosfets", |b| {
        b.iter(|| {
            filter_design::simulate_transistor_filter(
                black_box(&caps),
                &ota_params,
                &spec,
                &config,
                &filter_sweep(),
            )
            .expect("transistor filter simulates")
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ota_yield_query, bench_filter_candidate_evaluation
}
criterion_main!(benches);
