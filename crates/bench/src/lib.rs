//! Shared plumbing for the report binaries and benchmarks that regenerate the
//! paper's tables and figures.
//!
//! Every binary accepts an optional scale argument:
//!
//! * `--reduced` — seconds; small GA population and Monte Carlo (default),
//! * `--demo` — a couple of minutes; enough samples to show the paper's trends,
//! * `--full` — the paper-scale workload (100×100 WBGA, 200-sample MC per
//!   Pareto point); expect hours, exactly as the original flow did.

#![warn(missing_docs)]

use ayb_core::FlowConfig;

/// Workload scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale workload for smoke runs and CI.
    Reduced,
    /// Minutes-scale workload showing the paper's trends.
    Demo,
    /// The full paper-scale workload.
    Full,
}

impl Scale {
    /// Parses the scale from the process arguments (defaults to `Reduced`).
    pub fn from_args() -> Scale {
        for arg in std::env::args() {
            match arg.as_str() {
                "--full" => return Scale::Full,
                "--demo" => return Scale::Demo,
                "--reduced" => return Scale::Reduced,
                _ => {}
            }
        }
        Scale::Reduced
    }

    /// Flow configuration corresponding to this scale.
    pub fn flow_config(self) -> FlowConfig {
        match self {
            Scale::Reduced => {
                let mut config = FlowConfig::reduced();
                config.ga.population_size = 20;
                config.ga.generations = 12;
                config.monte_carlo.samples = 20;
                config.max_pareto_points = 15;
                config
            }
            Scale::Demo => FlowConfig::demo_scale(),
            Scale::Full => FlowConfig::paper_scale(),
        }
    }

    /// Monte Carlo sample count used for final verification runs (the paper
    /// uses 500).
    pub fn verification_samples(self) -> usize {
        match self {
            Scale::Reduced => 24,
            Scale::Demo => 100,
            Scale::Full => 500,
        }
    }

    /// Human-readable banner for report output.
    pub fn banner(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced scale (use --demo or --full for larger runs)",
            Scale::Demo => "demo scale (use --full for the paper-scale workload)",
            Scale::Full => "full paper scale",
        }
    }
}

/// Runs the model-generation flow at the selected scale, printing progress.
pub fn run_flow(scale: Scale) -> ayb_core::FlowResult {
    run_flow_with(
        scale,
        ayb_moo::OptimizerConfig::Wbga(scale.flow_config().ga),
    )
}

/// Runs the flow at the selected scale with an explicit optimiser choice,
/// reporting stage progress on stderr.
pub fn run_flow_with(scale: Scale, optimizer: ayb_moo::OptimizerConfig) -> ayb_core::FlowResult {
    let config = scale.flow_config();
    eprintln!(
        "[ayb-bench] running model-generation flow at {} ({}: {} evaluations, {} MC samples/point)",
        scale.banner(),
        optimizer.name(),
        optimizer.evaluation_budget(),
        config.monte_carlo.samples
    );
    ayb_core::FlowBuilder::new(config)
        .with_optimizer(optimizer)
        .with_observer(ayb_core::StderrObserver)
        .run()
        .expect("model-generation flow failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_map_to_increasing_budgets() {
        let reduced = Scale::Reduced.flow_config();
        let demo = Scale::Demo.flow_config();
        let full = Scale::Full.flow_config();
        assert!(reduced.ga.evaluation_budget() < demo.ga.evaluation_budget());
        assert!(demo.ga.evaluation_budget() < full.ga.evaluation_budget());
        assert_eq!(full.ga.evaluation_budget(), 10_000);
        assert!(Scale::Full.verification_samples() == 500);
        assert!(!Scale::Demo.banner().is_empty());
    }

    #[test]
    fn default_scale_is_reduced() {
        // The test binary's arguments contain no scale flag.
        assert_eq!(Scale::from_args(), Scale::Reduced);
    }
}
