//! Shared plumbing for the report binaries and benchmarks that regenerate the
//! paper's tables and figures.
//!
//! Every binary accepts an optional scale argument:
//!
//! * `--reduced` — seconds; small GA population and Monte Carlo (default),
//! * `--demo` — a couple of minutes; enough samples to show the paper's trends,
//! * `--full` — the paper-scale workload (100×100 WBGA, 200-sample MC per
//!   Pareto point); expect hours, exactly as the original flow did.

#![warn(missing_docs)]

use ayb_core::FlowConfig;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Workload scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale workload for smoke runs and CI.
    Reduced,
    /// Minutes-scale workload showing the paper's trends.
    Demo,
    /// The full paper-scale workload.
    Full,
}

impl Scale {
    /// Parses the scale from the process arguments (defaults to `Reduced`).
    pub fn from_args() -> Scale {
        for arg in std::env::args() {
            match arg.as_str() {
                "--full" => return Scale::Full,
                "--demo" => return Scale::Demo,
                "--reduced" => return Scale::Reduced,
                _ => {}
            }
        }
        Scale::Reduced
    }

    /// Flow configuration corresponding to this scale.
    pub fn flow_config(self) -> FlowConfig {
        match self {
            Scale::Reduced => {
                let mut config = FlowConfig::reduced();
                config.ga.population_size = 20;
                config.ga.generations = 12;
                config.monte_carlo.samples = 20;
                config.max_pareto_points = 15;
                config
            }
            Scale::Demo => FlowConfig::demo_scale(),
            Scale::Full => FlowConfig::paper_scale(),
        }
    }

    /// Monte Carlo sample count used for final verification runs (the paper
    /// uses 500).
    pub fn verification_samples(self) -> usize {
        match self {
            Scale::Reduced => 24,
            Scale::Demo => 100,
            Scale::Full => 500,
        }
    }

    /// Human-readable banner for report output.
    pub fn banner(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced scale (use --demo or --full for larger runs)",
            Scale::Demo => "demo scale (use --full for the paper-scale workload)",
            Scale::Full => "full paper scale",
        }
    }
}

/// Runs the model-generation flow at the selected scale, printing progress.
pub fn run_flow(scale: Scale) -> ayb_core::FlowResult {
    run_flow_with(
        scale,
        ayb_moo::OptimizerConfig::Wbga(scale.flow_config().ga),
    )
}

/// Runs the flow at the selected scale with an explicit optimiser choice,
/// reporting stage progress on stderr.
pub fn run_flow_with(scale: Scale, optimizer: ayb_moo::OptimizerConfig) -> ayb_core::FlowResult {
    let config = scale.flow_config();
    eprintln!(
        "[ayb-bench] running model-generation flow at {} ({}: {} evaluations, {} MC samples/point)",
        scale.banner(),
        optimizer.name(),
        optimizer.evaluation_budget(),
        config.monte_carlo.samples
    );
    ayb_core::FlowBuilder::new(config)
        .with_optimizer(optimizer)
        .with_observer(ayb_core::StderrObserver)
        .run()
        .expect("model-generation flow failed")
}

/// Report format version of `BENCH_*.json`; bump when the shape changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One timed kernel of a `bench` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Stable kernel name; the unit `--check` compares across reports.
    pub name: String,
    /// Outer (timed) iterations.
    pub iters: u64,
    /// Mean seconds per iteration.
    pub mean_seconds: f64,
    /// Best (minimum) seconds per iteration — what `--check` compares,
    /// being the least noise-sensitive statistic.
    pub min_seconds: f64,
}

/// A complete `bench` report — the unit committed as `BENCH_<date>.json`.
///
/// `Deserialize` is implemented by hand so baselines written before
/// `generated_unix` existed still load (the stamp defaults to `0`, which
/// sorts every legacy baseline before any stamped one).
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Report format version.
    pub schema_version: u64,
    /// `quick` or `full`.
    pub mode: String,
    /// When the report was generated, seconds since the Unix epoch
    /// (`0` on baselines predating the field).
    pub generated_unix: u64,
    /// Every timed kernel, in execution order.
    pub kernels: Vec<KernelReport>,
}

impl Deserialize for BenchReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let generated_unix = match value.get("generated_unix") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        Ok(BenchReport {
            schema_version: Deserialize::from_value(serde::__field(value, "schema_version")?)?,
            mode: Deserialize::from_value(serde::__field(value, "mode")?)?,
            generated_unix,
            kernels: Deserialize::from_value(serde::__field(value, "kernels")?)?,
        })
    }
}

/// Picks the newest baseline among `(path, report)` candidates.
///
/// Newest means the greatest `generated_unix` *inside* the report — a
/// baseline's own stamp, not its filename, decides. Filenames only break
/// ties (lexicographically greatest wins), which keeps a directory of
/// legacy baselines — all stamped `0` — resolving exactly as the historical
/// `ls BENCH_*.json | sort | tail -1` did.
pub fn newest_baseline(candidates: &[(String, BenchReport)]) -> Option<&(String, BenchReport)> {
    candidates.iter().max_by(|a, b| {
        a.1.generated_unix
            .cmp(&b.1.generated_unix)
            .then_with(|| a.0.cmp(&b.0))
    })
}

/// Loads every `BENCH_*.json` in `dir` and returns the newest one (per
/// [`newest_baseline`]), or `None` when the directory has no baselines.
///
/// # Errors
///
/// Returns a message when the directory cannot be listed or any candidate
/// baseline fails to parse — a corrupt committed baseline should fail the
/// check loudly, not silently shrink the candidate set.
pub fn load_newest_baseline(dir: &Path) -> Result<Option<(String, BenchReport)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot list {dir:?}: {e}"))?;
    let mut candidates = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {dir:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {name}: {e}"))?;
        let report: BenchReport =
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {name}: {e}"))?;
        candidates.push((name, report));
    }
    Ok(newest_baseline(&candidates).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_map_to_increasing_budgets() {
        let reduced = Scale::Reduced.flow_config();
        let demo = Scale::Demo.flow_config();
        let full = Scale::Full.flow_config();
        assert!(reduced.ga.evaluation_budget() < demo.ga.evaluation_budget());
        assert!(demo.ga.evaluation_budget() < full.ga.evaluation_budget());
        assert_eq!(full.ga.evaluation_budget(), 10_000);
        assert!(Scale::Full.verification_samples() == 500);
        assert!(!Scale::Demo.banner().is_empty());
    }

    #[test]
    fn default_scale_is_reduced() {
        // The test binary's arguments contain no scale flag.
        assert_eq!(Scale::from_args(), Scale::Reduced);
    }

    fn report(stamp: u64) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            mode: "quick".to_string(),
            generated_unix: stamp,
            kernels: Vec::new(),
        }
    }

    #[test]
    fn newest_baseline_selects_by_report_stamp_not_filename() {
        // A baseline named "earlier" but stamped later must win: the
        // report's own timestamp is authoritative, the filename is not.
        let candidates = vec![
            ("BENCH_2026-09-30.json".to_string(), report(100)),
            ("BENCH_2026-01-01.json".to_string(), report(500)),
            ("BENCH_2026-05-05.json".to_string(), report(300)),
        ];
        let (name, chosen) = newest_baseline(&candidates).unwrap();
        assert_eq!(name, "BENCH_2026-01-01.json");
        assert_eq!(chosen.generated_unix, 500);
    }

    #[test]
    fn newest_baseline_ties_break_by_filename_like_the_legacy_sort() {
        // Legacy baselines all deserialize with stamp 0; among them the
        // lexicographically greatest filename wins, exactly as the old
        // `ls BENCH_*.json | sort | tail -1` selection did.
        let candidates = vec![
            ("BENCH_2026-08-08.json".to_string(), report(0)),
            ("BENCH_2026-08-08b.json".to_string(), report(0)),
            ("BENCH_2026-07-01.json".to_string(), report(0)),
        ];
        let (name, _) = newest_baseline(&candidates).unwrap();
        assert_eq!(name, "BENCH_2026-08-08b.json");
        assert!(newest_baseline(&[]).is_none());
    }

    #[test]
    fn legacy_reports_without_a_stamp_still_deserialize() {
        let legacy = "{\"schema_version\": 1, \"mode\": \"quick\", \"kernels\": \
                      [{\"name\": \"k\", \"iters\": 3, \"mean_seconds\": 0.5, \
                        \"min_seconds\": 0.4}]}";
        let parsed: BenchReport = serde_json::from_str(legacy).expect("legacy parses");
        assert_eq!(parsed.generated_unix, 0);
        assert_eq!(parsed.kernels.len(), 1);
        assert_eq!(parsed.kernels[0].name, "k");

        // And the current shape round-trips with its stamp intact.
        let stamped = report(1_765_000_000);
        let text = serde_json::to_string(&stamped).unwrap();
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.generated_unix, 1_765_000_000);
    }
}
