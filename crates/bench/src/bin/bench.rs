//! `bench` — the repo's committed performance trajectory.
//!
//! Times the kernels everything else is built on (MOSFET evaluation, the
//! MNA/LU solve, DC/AC analysis of the OTA test bench, batch evaluation,
//! one shard round-trip through each data plane) plus the full reduced
//! flow, and writes a schema-versioned JSON report:
//!
//! ```text
//! bench [--quick] [--out FILE] [--check BASELINE | --check-latest DIR]
//!       [--tolerance FRACTION]
//! ```
//!
//! * `--quick` — CI mode: fewer outer iterations per kernel. The *work per
//!   iteration* is identical in both modes, so quick runs compare cleanly
//!   against a quick baseline.
//! * `--out FILE` — write the JSON report to `FILE` (default: stdout only).
//! * `--check BASELINE` — compare against a committed `BENCH_*.json` and
//!   exit nonzero when any kernel's best iteration regressed by more than
//!   the tolerance (default 0.30, i.e. 30%). Kernels present on only one
//!   side are reported but never fail the check, so kernels can be added
//!   without re-baselining in the same commit.
//! * `--check-latest DIR` — like `--check`, but selects the newest
//!   `BENCH_*.json` in `DIR` by each report's own `generated_unix` stamp
//!   (filename order only breaks ties), so a misnamed baseline can never
//!   shadow a newer one.
//!
//! The committed baselines (`BENCH_<date>.json` at the repo root) are the
//! performance trajectory: each entry is one machine's quick-mode run, and
//! CI's `bench-smoke` leg gates pull requests against the newest one.

use ayb_bench::{load_newest_baseline, BenchReport, KernelReport, BENCH_SCHEMA_VERSION};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_circuit::{Mosfet, MosfetModelCard, NodeId};
use ayb_core::{FlowBuilder, FlowConfig, OtaSizingProblem};
use ayb_moo::{CachedProblem, ShardTransport, SizingProblem};
use ayb_net::{Coordinator, CoordinatorConfig, TcpTransport};
use ayb_sim::linalg::{backend_of, solve_in_place, CsrMatrix, DenseMatrix, PatternBuilder};
use ayb_sim::{
    ac_analysis, ac_analysis_with, dc_operating_point, mosfet, DcOptions, FrequencySweep,
    MnaLayout, SolverKind,
};
use ayb_store::{
    ShardDataPlane, ShardOutcome, ShardWork, ShardWorkKind, VariationOutcome, VariationPointWork,
};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime};

/// Default regression tolerance for `--check`: a kernel may be up to 30%
/// slower than the baseline before the check fails (CI machines are noisy;
/// the committed trajectory is for catching step changes, not 5% drift).
const DEFAULT_TOLERANCE: f64 = 0.30;

/// Times `work` for `iters` iterations (after `warmup` untimed ones),
/// recording each iteration separately so the report can carry both the
/// mean and the noise-resistant minimum.
fn time_kernel(name: &str, iters: u64, warmup: u64, mut work: impl FnMut()) -> KernelReport {
    for _ in 0..warmup {
        work();
    }
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let started = Instant::now();
        work();
        let elapsed = started.elapsed().as_secs_f64();
        total += elapsed;
        best = best.min(elapsed);
    }
    let report = KernelReport {
        name: name.to_string(),
        iters,
        mean_seconds: total / iters as f64,
        min_seconds: best,
    };
    eprintln!(
        "[bench] {:<28} {:>6} iters, mean {:>12.6}s, min {:>12.6}s",
        report.name, report.iters, report.mean_seconds, report.min_seconds
    );
    report
}

/// Deterministic pseudo-random genes in (0, 1) for the batch kernels — a
/// fixed LCG, so every bench run times the identical workload.
fn gene_batch(count: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map the top bits into (0, 1), away from the exact bounds.
        0.05 + 0.9 * ((state >> 11) as f64 / (1u64 << 53) as f64)
    };
    (0..count)
        .map(|_| (0..dims).map(|_| next()).collect())
        .collect()
}

fn bench_mna_lu_solve(iters: u64) -> KernelReport {
    // A dense diagonally-dominant 64×64 system — the same shape and solve
    // path (partial-pivot LU) the MNA stamps feed on every Newton step.
    const N: usize = 64;
    time_kernel("mna_lu_solve_64", iters, 2, || {
        let mut a = DenseMatrix::<f64>::zeros(N, N);
        let mut b = vec![0.0f64; N];
        for (i, rhs) in b.iter_mut().enumerate() {
            for j in 0..N {
                let coupling = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                a.add(i, j, coupling);
            }
            a.add(i, i, N as f64);
            *rhs = 1.0 + i as f64;
        }
        solve_in_place(black_box(&mut a), black_box(&mut b)).expect("system is well-conditioned");
        black_box(&b);
    })
}

fn bench_sparse_lu_solve(iters: u64) -> KernelReport {
    // The same solve through the sparse backend, on an MNA-like banded
    // 64×64 pattern (bandwidth 4). The symbolic phase — pattern build and
    // `prepare` — happens once, outside the timed loop, exactly as it does
    // once per `MnaLayout` in the kernel; each iteration is a numeric fill
    // plus a factor-and-solve.
    const N: usize = 64;
    const BAND: usize = 4;
    let mut builder = PatternBuilder::new(N);
    for i in 0..N {
        for j in i.saturating_sub(BAND)..(i + BAND + 1).min(N) {
            builder.entry(i, j);
        }
    }
    let pattern = builder.build();
    let mut backend = backend_of::<f64>(SolverKind::Sparse);
    backend.prepare(&pattern);
    let mut matrix = CsrMatrix::<f64>::new(pattern);
    time_kernel("sparse_lu_solve_64", iters, 2, || {
        matrix.clear();
        let mut b = vec![0.0f64; N];
        for (i, rhs) in b.iter_mut().enumerate() {
            for j in i.saturating_sub(BAND)..(i + BAND + 1).min(N) {
                let coupling = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                matrix.add(i, j, coupling);
            }
            matrix.add(i, i, N as f64);
            *rhs = 1.0 + i as f64;
        }
        backend
            .solve(black_box(&matrix), black_box(&mut b))
            .expect("system is well-conditioned");
        black_box(&b);
    })
}

fn bench_mosfet_evaluate(iters: u64) -> KernelReport {
    let card = MosfetModelCard::nmos_035um();
    let device = Mosfet::new(
        NodeId::GROUND,
        NodeId::GROUND,
        NodeId::GROUND,
        NodeId::GROUND,
        "nmos",
        20e-6,
        1e-6,
    );
    // 1000 evaluations per timed iteration: single evaluations are tens of
    // nanoseconds, below timer resolution.
    time_kernel("mosfet_evaluate_1k", iters, 2, || {
        for i in 0..1000 {
            let vgs = 0.6 + (i % 16) as f64 * 0.05;
            black_box(mosfet::evaluate(
                black_box(&card),
                black_box(&device),
                vgs,
                1.0,
                0.0,
                0.0,
            ));
        }
    })
}

fn bench_dc_operating_point(iters: u64) -> KernelReport {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    time_kernel("ota_dc_operating_point", iters, 2, || {
        black_box(dc_operating_point(black_box(&tb), &DcOptions::new()).expect("converges"));
    })
}

fn bench_ac_sweep(iters: u64) -> KernelReport {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("converges");
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 8);
    time_kernel("ota_ac_sweep_65", iters, 2, || {
        black_box(ac_analysis(black_box(&tb), black_box(&op), &sweep).expect("ac runs"));
    })
}

/// The AC sweep with factor-reuse made explicit: the `MnaLayout` is built
/// once and shared with the DC solve, and the sweep runs on the sparse
/// backend — the `--solver sparse` configuration of the same 65-point
/// workload as `ota_ac_sweep_65`.
fn bench_ac_sweep_sparse(iters: u64) -> KernelReport {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let layout = MnaLayout::new(&tb);
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("converges");
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 8);
    time_kernel("ota_ac_sweep_65_sparse", iters, 2, || {
        black_box(
            ac_analysis_with(
                black_box(&tb),
                &layout,
                black_box(&op),
                &sweep,
                SolverKind::Sparse,
            )
            .expect("ac runs"),
        );
    })
}

fn bench_batch_evaluate(iters: u64) -> KernelReport {
    let problem = OtaSizingProblem::new(
        OtaTestbenchConfig::new(),
        FrequencySweep::logarithmic(10.0, 1e9, 8),
    )
    .with_threads(2);
    let batch = gene_batch(16, problem.parameter_count());
    time_kernel("batch_evaluate_16", iters, 1, || {
        black_box(problem.evaluate_batch(black_box(&batch)));
    })
}

/// A revisit-heavy synthetic batch: 16 distinct candidates, each appearing
/// 8 times (128 evaluations, 16 unique) — the shape a converging optimiser
/// produces once elites recur generation after generation.
fn revisit_batch(problem: &OtaSizingProblem) -> Vec<Vec<f64>> {
    let unique = gene_batch(16, problem.parameter_count());
    (0..8).flat_map(|_| unique.iter().cloned()).collect()
}

/// The revisit-heavy batch solved straight: all 128 evaluations pay a full
/// circuit solve. The uncached half of the eval-cache trajectory pair.
fn bench_batch_evaluate_revisit(iters: u64) -> KernelReport {
    let problem = OtaSizingProblem::new(
        OtaTestbenchConfig::new(),
        FrequencySweep::logarithmic(10.0, 1e9, 8),
    )
    .with_threads(2);
    let batch = revisit_batch(&problem);
    time_kernel("batch_evaluate_16x8_uncached", iters, 1, || {
        black_box(problem.evaluate_batch(black_box(&batch)));
    })
}

/// The same 128-evaluation batch through the in-process evaluation cache
/// (`FlowConfig::eval_cache` machinery): 16 solves, 112 served as hits. A
/// fresh cache per iteration keeps every iteration's work identical. The
/// committed trajectory expects this kernel at least ~2× faster than
/// `batch_evaluate_16x8_uncached` — the revisit speedup the cache exists
/// for, with the determinism digest unchanged (hits are exact-bits only).
fn bench_batch_evaluate_revisit_cached(iters: u64) -> KernelReport {
    let problem = OtaSizingProblem::new(
        OtaTestbenchConfig::new(),
        FrequencySweep::logarithmic(10.0, 1e9, 8),
    )
    .with_threads(2);
    let batch = revisit_batch(&problem);
    time_kernel("batch_evaluate_16x8_cached", iters, 1, || {
        let cached = CachedProblem::new(&problem, 1e-9);
        black_box(cached.evaluate_batch(black_box(&batch)));
    })
}

/// One complete shard conversation — open epoch, publish, claim, submit,
/// fetch, close — through the store's on-disk plane.
fn bench_shard_roundtrip_disk(iters: u64) -> KernelReport {
    let dir = std::env::temp_dir().join(format!("ayb-bench-shards-{}", std::process::id()));
    let plane = ShardDataPlane::open(&dir, Duration::from_secs(60));
    let work = ShardWork::Eval {
        parameters: gene_batch(4, 8),
    };
    let outcome = ShardOutcome::Eval {
        results: vec![None, None, None, None],
    };
    let report = time_kernel("shard_roundtrip_disk", iters, 2, || {
        let epoch = plane
            .open_typed_epoch(ShardWorkKind::Eval)
            .expect("epoch opens");
        plane.publish_work(&epoch, 0, &work).expect("publishes");
        assert!(plane.try_claim(&epoch, 0).expect("claim attempt"));
        plane.submit_outcome(&epoch, 0, &outcome).expect("submits");
        assert!(plane.fetch_outcome(&epoch, 0).expect("fetches").is_some());
        plane.close_epoch(&epoch).expect("closes");
    });
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The shard conversation for a *batched* variation task: one epoch slot
/// carrying 8 Monte Carlo points (with their per-point seeds) out and 8
/// outcomes back — what `variation_batch 8` pays per task instead of 8
/// separate round-trips.
fn bench_variation_batch_roundtrip_disk(iters: u64) -> KernelReport {
    let dir = std::env::temp_dir().join(format!("ayb-bench-varbatch-{}", std::process::id()));
    let plane = ShardDataPlane::open(&dir, Duration::from_secs(60));
    let work = ShardWork::VariationBatch {
        points: gene_batch(8, 8)
            .into_iter()
            .enumerate()
            .map(|(i, parameters)| VariationPointWork {
                parameters,
                mc_seed: 0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1),
            })
            .collect(),
    };
    let outcome = ShardOutcome::VariationBatch {
        points: (0..8)
            .map(|_| VariationOutcome {
                data: None,
                elapsed_seconds: 0.0,
            })
            .collect(),
    };
    let report = time_kernel("variation_batch_roundtrip_disk", iters, 2, || {
        let epoch = plane
            .open_typed_epoch(ShardWorkKind::Variation)
            .expect("epoch opens");
        plane.publish_work(&epoch, 0, &work).expect("publishes");
        assert!(plane.try_claim(&epoch, 0).expect("claim attempt"));
        plane.submit_outcome(&epoch, 0, &outcome).expect("submits");
        assert!(plane.fetch_outcome(&epoch, 0).expect("fetches").is_some());
        plane.close_epoch(&epoch).expect("closes");
    });
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The same conversation through a live TCP coordinator (loopback), fencing
/// token and all — what a `--transport` flow pays per shard.
fn bench_shard_roundtrip_tcp(iters: u64) -> KernelReport {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
        .expect("coordinator binds on loopback");
    let transport = TcpTransport::from_url(&coordinator.url()).expect("loopback url parses");
    let work = ShardWork::Eval {
        parameters: gene_batch(4, 8),
    };
    let outcome = ShardOutcome::Eval {
        results: vec![None, None, None, None],
    };
    time_kernel("shard_roundtrip_tcp", iters, 2, || {
        let epoch = transport
            .open_typed_epoch(ShardWorkKind::Eval, 1)
            .expect("epoch opens");
        transport.publish_work(&epoch, 0, &work).expect("publishes");
        let token = transport
            .try_claim_token(&epoch, 0, "bench")
            .expect("claim attempt")
            .expect("claim granted");
        assert!(transport
            .submit_with_token(&epoch, 0, token, &outcome)
            .expect("submits"));
        assert!(transport
            .fetch_outcome(&epoch, 0)
            .expect("fetches")
            .is_some());
        transport.close_epoch(&epoch).expect("closes");
    })
}

/// The end-to-end flow at `FlowConfig::reduced()` scale: optimisation,
/// Monte Carlo variation analysis and model build, all in-process.
fn bench_full_flow_reduced(iters: u64) -> KernelReport {
    time_kernel("full_flow_reduced", iters, 0, || {
        let result = FlowBuilder::new(FlowConfig::reduced())
            .run()
            .expect("reduced flow completes");
        black_box(result.determinism_digest());
    })
}

fn run_all(quick: bool) -> BenchReport {
    // Quick mode trims outer iterations only — per-iteration work is
    // identical, keeping quick runs comparable to the quick baseline.
    let (micro, macro_, flow) = if quick { (5, 3, 1) } else { (20, 10, 3) };
    let generated_unix = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        mode: if quick { "quick" } else { "full" }.to_string(),
        generated_unix,
        kernels: vec![
            bench_mna_lu_solve(micro),
            bench_sparse_lu_solve(micro),
            bench_mosfet_evaluate(micro),
            bench_dc_operating_point(micro),
            bench_ac_sweep(micro),
            bench_ac_sweep_sparse(micro),
            bench_batch_evaluate(macro_),
            bench_batch_evaluate_revisit(macro_),
            bench_batch_evaluate_revisit_cached(macro_),
            bench_shard_roundtrip_disk(macro_),
            bench_variation_batch_roundtrip_disk(macro_),
            bench_shard_roundtrip_tcp(macro_),
            bench_full_flow_reduced(flow),
        ],
    }
}

/// Compares `current` against `baseline`, printing one verdict line per
/// kernel. Returns the names of kernels whose best iteration regressed
/// beyond `tolerance`.
fn check_against(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    if baseline.schema_version != current.schema_version {
        eprintln!(
            "[bench] note: baseline schema v{} vs current v{}; comparing by kernel name",
            baseline.schema_version, current.schema_version
        );
    }
    if baseline.mode != current.mode {
        eprintln!(
            "[bench] warning: comparing a {} run against a {} baseline",
            current.mode, baseline.mode
        );
    }
    let mut regressions = Vec::new();
    for kernel in &current.kernels {
        let Some(base) = baseline.kernels.iter().find(|b| b.name == kernel.name) else {
            println!("{:<28} NEW (no baseline entry)", kernel.name);
            continue;
        };
        if base.min_seconds <= 0.0 {
            println!("{:<28} SKIP (degenerate baseline)", kernel.name);
            continue;
        }
        let ratio = kernel.min_seconds / base.min_seconds;
        let verdict = if ratio > 1.0 + tolerance {
            regressions.push(kernel.name.clone());
            "REGRESSED"
        } else if ratio < 1.0 - tolerance {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<28} {:>9}  {:>10.6}s vs {:>10.6}s  ({:+.1}%)",
            kernel.name,
            verdict,
            kernel.min_seconds,
            base.min_seconds,
            (ratio - 1.0) * 100.0
        );
    }
    for base in &baseline.kernels {
        if !current.kernels.iter().any(|k| k.name == base.name) {
            println!("{:<28} GONE (baseline-only entry)", base.name);
        }
    }
    regressions
}

/// How `--check` finds its baseline: an explicit file, or the newest
/// stamped `BENCH_*.json` in a directory.
enum CheckSource {
    File(String),
    Latest(String),
}

fn parse_args() -> Result<(bool, Option<String>, Option<CheckSource>, f64), String> {
    let mut quick = false;
    let mut out = None;
    let mut check = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(iter.next().ok_or("--out expects a file path")?),
            "--check" => {
                check = Some(CheckSource::File(
                    iter.next().ok_or("--check expects a baseline path")?,
                ))
            }
            "--check-latest" => {
                check = Some(CheckSource::Latest(
                    iter.next().ok_or("--check-latest expects a directory")?,
                ))
            }
            "--tolerance" => {
                let text = iter.next().ok_or("--tolerance expects a fraction")?;
                tolerance = text
                    .parse()
                    .map_err(|_| format!("--tolerance expects a number, got `{text}`"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((quick, out, check, tolerance))
}

fn main() -> ExitCode {
    let (quick, out, check, tolerance) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: bench [--quick] [--out FILE] [--check BASELINE | --check-latest DIR] \
                 [--tolerance FRACTION]"
            );
            return ExitCode::from(2);
        }
    };
    let report = run_all(quick);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match &out {
        Some(path) => {
            if let Err(error) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: cannot write {path}: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!("[bench] report written to {path}");
        }
        None => println!("{json}"),
    }
    if let Some(source) = check {
        let baseline: BenchReport = match source {
            CheckSource::File(path) => {
                match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
                {
                    Ok(baseline) => baseline,
                    Err(error) => {
                        eprintln!("error: cannot load baseline {path}: {error}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            CheckSource::Latest(dir) => match load_newest_baseline(std::path::Path::new(&dir)) {
                Ok(Some((name, baseline))) => {
                    eprintln!(
                        "[bench] newest baseline: {name} (generated_unix {})",
                        baseline.generated_unix
                    );
                    baseline
                }
                Ok(None) => {
                    eprintln!("error: no BENCH_*.json baselines in {dir}");
                    return ExitCode::FAILURE;
                }
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let regressions = check_against(&report, &baseline, tolerance);
        if !regressions.is_empty() {
            eprintln!(
                "error: {} kernel(s) regressed beyond {:.0}%: {}",
                regressions.len(),
                tolerance * 100.0,
                regressions.join(", ")
            );
            return ExitCode::FAILURE;
        }
        println!("bench check passed (tolerance {:.0}%)", tolerance * 100.0);
    }
    ExitCode::SUCCESS
}
