//! Regenerates **Figures 9/10**: the 2nd-order gm-C low-pass filter netlist
//! and the anti-aliasing specification template it is designed against.

use ayb_behavioral::FilterSpec;
use ayb_circuit::filter::{build_filter_with_macromodels, FilterParameters, OtaMacroSpec};
use ayb_circuit::spice::to_spice;

fn main() {
    let spec = FilterSpec::anti_aliasing_1mhz();
    println!("Figure 10: anti-aliasing filter specification template");
    println!(
        "  passband: gain >= {:.1} dB (relative to DC) up to {:.2} MHz",
        spec.passband_min_gain_db,
        spec.passband_edge_hz / 1e6
    );
    println!(
        "  stopband: gain <= {:.1} dB beyond {:.2} MHz",
        spec.stopband_max_gain_db,
        spec.stopband_edge_hz / 1e6
    );
    println!("  peaking : <= {:.1} dB", spec.max_peaking_db);
    println!();
    println!("Figure 9: 2nd-order gm-C biquad built from four behavioural OTAs");
    let ota = OtaMacroSpec::from_gain_and_bandwidth(50.0, 10e6, 5e-12);
    let filter =
        build_filter_with_macromodels(&FilterParameters::nominal(), &ota).expect("filter builds");
    println!("{}", to_spice(&filter));
}
