//! Regenerates **Table 1**: the designable parameter ranges of the
//! symmetrical OTA (widths 10–60 µm, lengths 0.35–4 µm, normalised weights).

fn main() {
    println!("{}", ayb_core::report::render_table1());
}
