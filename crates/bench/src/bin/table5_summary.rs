//! Regenerates **Table 5**: the model-development parameter summary —
//! generations, evaluation samples, Pareto points and CPU time.

use ayb_bench::{run_flow, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = scale.flow_config();
    let result = run_flow(scale);
    let summary = result.summary(&config);
    println!("{}", ayb_core::report::render_table5(&summary));
    println!(
        "Stage timings: optimisation {:.2}s, Monte Carlo {:.2}s, model build {:.3}s",
        result.timings.optimization.as_secs_f64(),
        result.timings.monte_carlo.as_secs_f64(),
        result.timings.model_build.as_secs_f64()
    );
    println!(
        "(The paper reports 4 hours on a 1.2 GHz UltraSPARC 3 for the full 10,000-sample run,\n vs 7 hours for the conventional approach of ref. [5]; relative cost is what matters.)"
    );
}
