//! Regenerates **Table 2**: performance and variation values of the
//! Pareto-optimal designs (gain, ΔGain %, phase margin, ΔPM %).

use ayb_bench::{run_flow, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = run_flow(scale);
    println!("{}", ayb_core::report::render_table2(&result.pareto_data));
    // The paper's qualitative observation: variation changes monotonically
    // along the front (higher-gain designs trade phase margin and shift
    // their sensitivity). Report the correlation for the reproduction.
    let n = result.pareto_data.len() as f64;
    if n >= 3.0 {
        let mean_gain: f64 = result.pareto_data.iter().map(|p| p.gain_db).sum::<f64>() / n;
        let mean_delta: f64 = result
            .pareto_data
            .iter()
            .map(|p| p.gain_delta_percent)
            .sum::<f64>()
            / n;
        let cov: f64 = result
            .pareto_data
            .iter()
            .map(|p| (p.gain_db - mean_gain) * (p.gain_delta_percent - mean_delta))
            .sum::<f64>()
            / n;
        println!("covariance(gain, dGain%) = {cov:.4} (paper Table 2 trends negative)");
    }
}
