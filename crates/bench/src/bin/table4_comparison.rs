//! Regenerates **Table 4**: comparison between the behavioural (Verilog-A
//! equivalent) model prediction and a transistor-level simulation of the
//! design parameters the model interpolated (≈1 % error in the paper).

use ayb_behavioral::OtaSpec;
use ayb_bench::{run_flow, Scale};
use ayb_core::verify_accuracy;

fn main() {
    let scale = Scale::from_args();
    let config = scale.flow_config();
    let result = run_flow(scale);
    let model = &result.model;

    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec = if (gain_lo..gain_hi).contains(&50.0) {
        OtaSpec::paper_table3()
    } else {
        let gain = gain_lo + 0.3 * (gain_hi - gain_lo);
        OtaSpec::new(gain, model.pm_at_gain(gain).expect("pm lookup") - 3.0)
    };

    let design = match model.design_for_spec(&spec) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[table4] specification not achievable: {e}");
            return;
        }
    };
    match verify_accuracy(&design, &config) {
        Some((report, transistor)) => {
            println!("{}", ayb_core::report::render_table4(&report));
            println!(
                "Transistor-level unity-gain frequency: {:.2} MHz (model predicted {:.2} MHz)",
                transistor.unity_gain_hz / 1e6,
                design.predicted_unity_gain_hz / 1e6
            );
        }
        None => eprintln!("[table4] transistor-level simulation failed for the selected design"),
    }
}
