//! Regenerates **Figure 7**: the gain / phase-margin scatter of every GA
//! individual together with the extracted Pareto front.
//!
//! Output is CSV on stdout (`gain_db,phase_margin_deg,on_pareto_front`);
//! summary statistics go to stderr.

use ayb_bench::{run_flow, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = run_flow(scale);
    eprintln!(
        "[fig7] {} individuals evaluated, {} Pareto-optimal ({} analysed with Monte Carlo)",
        result.archive.len(),
        result.pareto.len(),
        result.pareto_data.len()
    );
    if let (Some(first), Some(last)) = (result.pareto.first(), result.pareto.last()) {
        eprintln!(
            "[fig7] front spans gain {:.2}..{:.2} dB, phase margin {:.2}..{:.2} deg",
            first.objectives[0], last.objectives[0], last.objectives[1], first.objectives[1]
        );
    }
    print!(
        "{}",
        ayb_core::report::render_fig7_data(&result.archive, &result.pareto)
    );
}
