//! Regenerates **Figure 8**: open-loop gain versus frequency for the
//! behavioural model and the transistor-level OTA at the same design point.
//! Output is CSV (`frequency_hz, transistor_db, behavioural_db`).

use ayb_behavioral::{OtaBehavior, OtaSpec};
use ayb_bench::{run_flow, Scale};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OPEN_LOOP_OUTPUT};
use ayb_sim::{ac_analysis, dc_operating_point, DcOptions, FrequencySweep};

fn main() {
    let scale = Scale::from_args();
    let config = scale.flow_config();
    let result = run_flow(scale);
    let model = &result.model;

    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = if (gain_lo..gain_hi).contains(&50.0) {
        50.0
    } else {
        gain_lo + 0.3 * (gain_hi - gain_lo)
    };
    let pm = model.pm_at_gain(spec_gain).expect("pm lookup");
    let design = model
        .design_for_spec(&OtaSpec::new(spec_gain, pm - 3.0))
        .expect("design achievable");

    // Transistor-level response of the interpolated design parameters.
    let params = OtaParameters::from_design_point(&design.parameters);
    let tb = build_open_loop_testbench(&params, &config.testbench).expect("test bench builds");
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("dc converges");
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 10);
    let ac = ac_analysis(&tb, &op, &sweep).expect("ac runs");
    let transistor = ac
        .response_by_name(&tb, OPEN_LOOP_OUTPUT)
        .expect("output node");

    // Behavioural (two-pole) model reconstructed from the model's prediction.
    let behavior = OtaBehavior::new(
        design.retarget.new_gain_db,
        design.nominal_pm_deg,
        design.predicted_unity_gain_hz,
    );
    let behavioural = behavior.frequency_response(ac.frequencies());

    let transistor_db: Vec<f64> = transistor.iter().map(|z| z.abs_db()).collect();
    let behavioural_db: Vec<f64> = behavioural.iter().map(|z| z.abs_db()).collect();
    eprintln!(
        "[fig8] low-frequency gains: transistor {:.2} dB vs behavioural {:.2} dB",
        transistor_db[0], behavioural_db[0]
    );
    print!(
        "{}",
        ayb_core::report::render_response_csv(
            "Figure 8: open-loop gain comparison (transistor vs behavioural model)",
            ac.frequencies(),
            &[
                ("transistor_db", transistor_db),
                ("behavioural_db", behavioural_db)
            ],
        )
    );
}
