//! Regenerates the paper's headline efficiency claim: the cost of answering
//! "does this design meet the spec over process variation, and what sizing do
//! I need?" with the behavioural model versus the conventional
//! transistor-in-the-loop Monte Carlo approach.
//!
//! Two comparisons are reported:
//!
//! 1. **OTA yield query** — one behavioural-model lookup vs a transistor-level
//!    Monte Carlo run (the inner loop of a conventional yield-driven sizing flow).
//! 2. **Filter evaluation** — one behavioural (macromodel) filter AC analysis
//!    vs one transistor-level (40-device) filter AC analysis, i.e. the
//!    per-candidate cost inside the §5 filter optimisation.

use ayb_behavioral::OtaSpec;
use ayb_bench::{run_flow, Scale};
use ayb_circuit::filter::FilterParameters;
use ayb_circuit::ota::OtaParameters;
use ayb_core::conventional;

fn main() {
    let scale = Scale::from_args();
    let config = scale.flow_config();
    let result = run_flow(scale);
    let model = &result.model;

    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = gain_lo + 0.3 * (gain_hi - gain_lo);
    let spec = OtaSpec::new(
        spec_gain,
        (model.pm_at_gain(spec_gain).expect("pm lookup") - 5.0).max(20.0),
    );
    let design = model.design_for_spec(&spec).expect("design achievable");
    let nominal = OtaParameters::from_design_point(&design.parameters);

    println!("Speed / efficiency comparison ({})", scale.banner());
    println!();

    // 1. OTA yield query.
    let mc_samples = scale.verification_samples();
    match conventional::compare_approaches(model, &nominal, &spec, &config, mc_samples, 7) {
        Some(cmp) => {
            println!(
                "OTA yield query (spec: gain > {:.2} dB, PM > {:.2} deg)",
                spec.min_gain_db, spec.min_phase_margin_deg
            );
            println!(
                "  conventional (transistor MC, {} samples): {:>10.3} s  -> yield {:.1}%",
                mc_samples,
                cmp.conventional.as_secs_f64(),
                cmp.conventional_yield * 100.0
            );
            println!(
                "  model-based (table lookups)             : {:>10.6} s  -> predicted yield {:.1}%",
                cmp.model_based.as_secs_f64(),
                cmp.model_yield * 100.0
            );
            println!("  speed-up: {:.0}x", cmp.speedup());
        }
        None => println!("OTA yield query: conventional path failed to simulate"),
    }
    println!();

    // 2. Per-candidate filter evaluation cost. If the interpolated sizing does
    //    not converge at transistor level (possible at very small model scales),
    //    fall back to the nominal OTA sizing so the cost comparison still runs.
    let caps = FilterParameters::nominal();
    let cost = conventional::filter_evaluation_cost(
        &caps,
        &nominal,
        design.retarget.new_gain_db,
        design.nominal_pm_deg,
        design.predicted_unity_gain_hz,
        &config,
    )
    .or_else(|| {
        conventional::filter_evaluation_cost(
            &caps,
            &OtaParameters::nominal(),
            50.0,
            75.0,
            10e6,
            &config,
        )
    });
    match cost {
        Some((behavioural, transistor)) => {
            println!("Per-candidate filter evaluation (one AC characterisation)");
            println!(
                "  behavioural (4 OTA macromodels) : {:>10.6} s",
                behavioural.as_secs_f64()
            );
            println!(
                "  transistor level (40 MOSFETs)   : {:>10.6} s",
                transistor.as_secs_f64()
            );
            println!(
                "  speed-up: {:.1}x per evaluation ({} evaluations in the paper's filter optimisation)",
                transistor.as_secs_f64() / behavioural.as_secs_f64().max(1e-9),
                1200
            );
        }
        None => println!("Filter evaluation comparison failed to simulate"),
    }
    println!();
    println!(
        "Paper reference point: 4 hours for the proposed flow vs 7 hours for the conventional\nHOLMES-style approach on the same OTA (Table 5 discussion)."
    );
}
