//! Regenerates **Table 3**: the interpolation / retargeting example — a
//! required specification is raised by the interpolated variation so that the
//! worst-case performance still meets it (50 dB → 50.26 dB in the paper).

use ayb_behavioral::OtaSpec;
use ayb_bench::{run_flow, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = run_flow(scale);
    let model = &result.model;

    // Use the paper's specification when it lies inside the modelled range,
    // otherwise anchor an equivalent specification inside the range so the
    // reduced-scale model still demonstrates the mechanism.
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec = if (gain_lo..gain_hi).contains(&50.0) {
        OtaSpec::paper_table3()
    } else {
        let gain = gain_lo + 0.3 * (gain_hi - gain_lo);
        let pm = model.pm_at_gain(gain).expect("pm lookup") - 2.0;
        OtaSpec::new(gain, pm)
    };
    eprintln!(
        "[table3] specification: gain > {:.2} dB, phase margin > {:.2} deg (model range {:.2}..{:.2} dB)",
        spec.min_gain_db, spec.min_phase_margin_deg, gain_lo, gain_hi
    );
    let retarget = model.retarget(&spec).expect("retargeting succeeds");
    println!("{}", ayb_core::report::render_table3(&retarget));

    match model.design_for_spec(&spec) {
        Ok(design) => {
            println!("Interpolated design parameters:");
            for (name, value) in design.parameters.iter() {
                println!("  {name} = {:.3} um", value * 1e6);
            }
            println!(
                "Predicted worst-case performance: gain {:.2} dB, PM {:.2} deg (both above spec -> 100% predicted yield)",
                retarget.required_gain_db, design.worst_case_pm_deg
            );
        }
        Err(e) => println!("(specification not achievable by this model: {e})"),
    }
}
