//! Regenerates **Figure 11**: the frequency response of the completed filter
//! design (behavioural and transistor-level), plus the Monte Carlo yield
//! verification of §5. Output is CSV.

use ayb_behavioral::{FilterSpec, OtaSpec};
use ayb_bench::{run_flow, Scale};
use ayb_circuit::ota::OtaParameters;
use ayb_core::{design_filter, filter_design};
use ayb_moo::GaConfig;

fn main() {
    let scale = Scale::from_args();
    let config = scale.flow_config();
    let result = run_flow(scale);
    let model = &result.model;

    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = if (gain_lo..gain_hi).contains(&50.0) {
        50.0
    } else {
        gain_lo + 0.3 * (gain_hi - gain_lo)
    };
    let ota_spec = OtaSpec::new(
        spec_gain,
        (model.pm_at_gain(spec_gain).expect("pm lookup") - 10.0).max(30.0),
    );
    let filter_spec = FilterSpec::anti_aliasing_1mhz();

    let ga = match scale {
        Scale::Full => GaConfig::paper_filter(),
        Scale::Demo => GaConfig {
            population_size: 24,
            generations: 20,
            ..GaConfig::paper_filter()
        },
        Scale::Reduced => GaConfig {
            population_size: 14,
            generations: 10,
            ..GaConfig::paper_filter()
        },
    };
    let design = design_filter(model, &ota_spec, &filter_spec, ga, config.testbench.cload)
        .expect("filter design succeeds");
    eprintln!(
        "[fig11] capacitors: C1 {:.2} pF, C2 {:.2} pF, C3 {:.2} pF; behavioural spec margin {:.2} dB",
        design.capacitors.c1 * 1e12,
        design.capacitors.c2 * 1e12,
        design.capacitors.c3 * 1e12,
        design.margin_db
    );

    // Transistor-level response of the same sizing.
    let ota_params = OtaParameters::from_design_point(&design.ota_design.parameters);
    let transistor = filter_design::simulate_transistor_filter(
        &design.capacitors,
        &ota_params,
        &filter_spec,
        &config,
        &ayb_behavioral::filter::filter_sweep(),
    );

    let behavioural_db = design.response.gain_db();
    match transistor {
        Some((t_response, report)) => {
            eprintln!(
                "[fig11] transistor-level: passband worst {:.2} dB, stopband worst {:.2} dB, spec met = {}",
                report.passband_worst_db,
                report.stopband_worst_db,
                report.all_met()
            );
            let t_db = t_response.gain_db();
            print!(
                "{}",
                ayb_core::report::render_response_csv(
                    "Figure 11: filter response (behavioural vs transistor level)",
                    &design.response.frequencies,
                    &[("behavioural_db", behavioural_db), ("transistor_db", t_db)],
                )
            );
        }
        None => {
            eprintln!("[fig11] transistor-level filter failed to simulate; emitting behavioural response only");
            print!(
                "{}",
                ayb_core::report::render_response_csv(
                    "Figure 11: filter response (behavioural)",
                    &design.response.frequencies,
                    &[("behavioural_db", behavioural_db)],
                )
            );
        }
    }

    // Final Monte Carlo yield verification (500 samples at full scale).
    let samples = scale.verification_samples();
    if let Some(yield_report) =
        filter_design::verify_filter_yield(&design, &filter_spec, &config, samples, 2008)
    {
        eprintln!(
            "[fig11] Monte Carlo yield: {:.1}% over {} samples ({} failed simulations)",
            yield_report.yield_percent(),
            yield_report.samples,
            yield_report.failed_samples
        );
    }
}
