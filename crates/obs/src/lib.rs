//! The unified telemetry plane: structured run events, fleet metrics, and
//! timeline reconstruction.
//!
//! Before this crate, the forensics for a slow or hung fleet were scattered
//! fragments: `FlowTimings` in `result.json`, `JobEvent` callbacks that died
//! with the process, transport counters readable only in-process. `ayb-obs`
//! gives every plane one vocabulary:
//!
//! * **[`Event`]** — a structured record (monotonic + wall timestamps,
//!   severity, source plane, kind, and the run/epoch/shard/fence coordinates
//!   that locate it in the fleet) emitted through a cheap cloneable
//!   [`Recorder`] handle. The recorder keeps a bounded in-memory ring and
//!   forwards every event to pluggable [`EventSink`]s — notably
//!   [`JsonlSink`], which appends each event as one JSON line so durable
//!   runs accumulate a `runs/<id>/events.jsonl` forensic log that multiple
//!   processes can append to safely (`O_APPEND`, one `write` per line).
//! * **[`Metrics`]** — a registry of counters, gauges and fixed-bucket
//!   histograms with a text exposition format, served live over the wire by
//!   the coordinator's `Metrics` request.
//! * **[`trace`]** — pure functions that rebuild a per-stage / per-shard
//!   timeline (claim → fence → steal chains included) from a parsed event
//!   log; the `ayb trace` CLI command is a thin renderer over them.
//!
//! Telemetry is strictly digest-neutral: nothing in this crate feeds
//! `determinism_digest`, wall-clock never enters checkpointed state, and
//! enabling or disabling every sink changes no run output — property-tested
//! in the workspace root.

#![deny(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Histogram, Metrics, LATENCY_BUCKETS_SECONDS};

use std::collections::VecDeque;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::Value;

/// Event severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume diagnostics (per-request, per-point).
    Debug,
    /// Normal lifecycle milestones (stages, claims, completions).
    Info,
    /// Something degraded but the run continues (fenced write, fallback).
    Warn,
    /// A run or request failed.
    Error,
}

impl Severity {
    /// The lowercase wire/name form (`"debug"`, `"info"`, `"warn"`,
    /// `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the lowercase name form; `None` for anything else.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl serde::Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for Severity {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Str(s) => Severity::parse(s)
                .ok_or_else(|| serde::Error::msg(format!("unknown severity `{s}`"))),
            other => Err(serde::Error::msg(format!(
                "severity must be a string, got {}",
                other.type_name()
            ))),
        }
    }
}

/// Well-known event kinds, shared by emitters and the trace reconstruction
/// so the vocabulary stays in one place.
pub mod kind {
    /// A flow attempt began (`optimize()` entry). Marks a session boundary
    /// in `events.jsonl`: everything after the *last* `flow_start` belongs
    /// to the attempt that produced the final result.
    pub const FLOW_START: &str = "flow_start";
    /// A flow stage started (`detail` names the stage).
    pub const STAGE_START: &str = "stage_start";
    /// A flow stage completed; `value` is the elapsed seconds.
    pub const STAGE_COMPLETE: &str = "stage_complete";
    /// An optimizer checkpoint was written; `value` is the generation.
    pub const CHECKPOINT: &str = "checkpoint_written";
    /// A Monte Carlo variation point finished; `shard` is the point index.
    pub const VARIATION_POINT: &str = "variation_point";
    /// The run completed and its result was persisted.
    pub const RUN_COMPLETED: &str = "run_completed";
    /// The run was deliberately interrupted at a checkpoint boundary.
    pub const RUN_INTERRUPTED: &str = "run_interrupted";
    /// The run failed; `detail` carries the error.
    pub const RUN_FAILED: &str = "run_failed";
    /// A shard claim was granted; `fence` is the minted token.
    pub const SHARD_CLAIM: &str = "shard_claim";
    /// A shard outcome was accepted; `fence` is the submitting token.
    pub const SHARD_SUBMIT: &str = "shard_submit";
    /// A shard outcome was rejected because its fencing token was stale.
    pub const SHARD_FENCED: &str = "shard_fenced";
    /// A hung or dead claim was expired so the shard can be re-claimed.
    pub const SHARD_RECOVER: &str = "shard_recover";
    /// The submitter gave up on a shard's transport and serviced it
    /// locally.
    pub const SHARD_DEGRADED: &str = "shard_degraded";
    /// One transport request completed; `value` is the latency in seconds.
    pub const SHARD_REQUEST: &str = "shard_request";
    /// A shard epoch was opened; `value` is the shard count.
    pub const EPOCH_OPEN: &str = "epoch_open";
    /// A shard epoch was closed.
    pub const EPOCH_CLOSE: &str = "epoch_close";
    /// A job-server lifecycle event (`job_enqueued`, `job_started`, …);
    /// see `ayb_jobs` for the mapping from `JobEvent`.
    pub const JOB_PREFIX: &str = "job_";
    /// The service plane accepted a submission; `run` is the created run,
    /// `detail` names the tenant.
    pub const SVC_SUBMIT: &str = "svc_submit";
    /// A submission was answered from the content-addressed dedup index;
    /// `run` is the canonical run it was folded into.
    pub const SVC_DEDUP_HIT: &str = "svc_dedup_hit";
    /// A submission was answered from the persistent result cache (the run
    /// had already completed, possibly in a previous server life); `run` is
    /// the completed run whose result was served.
    pub const SVC_CACHE_HIT: &str = "svc_cache_hit";
    /// A submission was rejected by a per-tenant quota; `detail` names the
    /// tenant and the exhausted limit.
    pub const SVC_QUOTA_REJECTED: &str = "svc_quota_rejected";
    /// A queued run was cancelled through the service plane.
    pub const SVC_CANCELLED: &str = "svc_cancelled";
    /// A malformed or oversized HTTP request was refused (`detail` carries
    /// the parser's reason) — the connection was answered or closed cleanly.
    pub const SVC_BAD_REQUEST: &str = "svc_bad_request";
}

/// One structured telemetry record.
///
/// `mono_us` orders events emitted by one process (it is microseconds since
/// a process-global origin, so it is monotonic per `pid` even across flow
/// attempts); `wall_unix` is display-only. The optional `run_id` / `epoch` /
/// `shard` / `fence` fields locate the event in the fleet, `value` carries a
/// numeric payload (seconds, generation, …) and `detail` a human-readable
/// one.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the emitting process's telemetry origin.
    pub mono_us: u64,
    /// Wall-clock seconds since the Unix epoch (display only).
    pub wall_unix: u64,
    /// The emitting process id, so per-writer ordering survives
    /// interleaved appends from several processes.
    pub pid: u32,
    /// How urgent the event is.
    pub severity: Severity,
    /// The emitting plane: `flow`, `shards`, `net`, `coordinator`, `jobs`,
    /// `cli`.
    pub source: String,
    /// The event vocabulary entry — see [`kind`].
    pub kind: String,
    /// The durable run this event belongs to, when known.
    pub run_id: Option<String>,
    /// The shard epoch (`ep-*` / `var-*`) this event belongs to.
    pub epoch: Option<String>,
    /// The shard index (or variation point index) this event belongs to.
    pub shard: Option<u64>,
    /// The fencing token involved, for claim/submit/fenced events.
    pub fence: Option<u64>,
    /// A numeric payload: seconds for latencies, a generation for
    /// checkpoints, a count for epoch opens.
    pub value: Option<f64>,
    /// A human-readable payload.
    pub detail: String,
}

fn mono_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds since the process-global telemetry origin. Monotonic within
/// a process; the first call fixes the origin.
pub fn mono_us_now() -> u64 {
    mono_origin().elapsed().as_micros() as u64
}

fn wall_unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Event {
    /// Creates an event stamped with the current monotonic + wall clocks
    /// and this process's pid.
    pub fn new(severity: Severity, source: &str, kind: &str) -> Self {
        Event {
            mono_us: mono_us_now(),
            wall_unix: wall_unix_now(),
            pid: std::process::id(),
            severity,
            source: source.to_string(),
            kind: kind.to_string(),
            run_id: None,
            epoch: None,
            shard: None,
            fence: None,
            value: None,
            detail: String::new(),
        }
    }

    /// Sets the run id.
    pub fn run(mut self, run_id: &str) -> Self {
        self.run_id = Some(run_id.to_string());
        self
    }

    /// Sets the epoch name.
    pub fn epoch(mut self, epoch: &str) -> Self {
        self.epoch = Some(epoch.to_string());
        self
    }

    /// Sets the shard index.
    pub fn shard(mut self, shard: u64) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Sets the fencing token.
    pub fn fence(mut self, fence: u64) -> Self {
        self.fence = Some(fence);
        self
    }

    /// Sets the numeric payload.
    pub fn value(mut self, value: f64) -> Self {
        self.value = Some(value);
        self
    }

    /// Sets the human-readable payload.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Renders the event as the one human-readable line every stderr path
    /// shares: `kind-or-detail (run=… epoch=… shard=… fence=… value)`.
    pub fn render(&self) -> String {
        let mut line = if self.detail.is_empty() {
            self.kind.clone()
        } else {
            self.detail.clone()
        };
        let mut ctx = Vec::new();
        if let Some(run) = &self.run_id {
            ctx.push(format!("run={run}"));
        }
        if let Some(epoch) = &self.epoch {
            ctx.push(format!("epoch={epoch}"));
        }
        if let Some(shard) = self.shard {
            ctx.push(format!("shard={shard}"));
        }
        if let Some(fence) = self.fence {
            ctx.push(format!("fence={fence}"));
        }
        if let Some(value) = self.value {
            ctx.push(format!("value={value:.6}"));
        }
        if !ctx.is_empty() {
            line.push_str(" (");
            line.push_str(&ctx.join(" "));
            line.push(')');
        }
        line
    }
}

impl serde::Serialize for Event {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("mono_us".to_string(), Value::UInt(self.mono_us)),
            ("wall_unix".to_string(), Value::UInt(self.wall_unix)),
            ("pid".to_string(), Value::UInt(u64::from(self.pid))),
            (
                "severity".to_string(),
                serde::Serialize::to_value(&self.severity),
            ),
            ("source".to_string(), Value::Str(self.source.clone())),
            ("kind".to_string(), Value::Str(self.kind.clone())),
        ];
        if let Some(run_id) = &self.run_id {
            fields.push(("run_id".to_string(), Value::Str(run_id.clone())));
        }
        if let Some(epoch) = &self.epoch {
            fields.push(("epoch".to_string(), Value::Str(epoch.clone())));
        }
        if let Some(shard) = self.shard {
            fields.push(("shard".to_string(), Value::UInt(shard)));
        }
        if let Some(fence) = self.fence {
            fields.push(("fence".to_string(), Value::UInt(fence)));
        }
        if let Some(value) = self.value {
            fields.push(("value".to_string(), Value::Float(value)));
        }
        if !self.detail.is_empty() {
            fields.push(("detail".to_string(), Value::Str(self.detail.clone())));
        }
        Value::Object(fields)
    }
}

fn opt_str(value: &Value, key: &str) -> Result<Option<String>, serde::Error> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(serde::Error::msg(format!(
            "field `{key}` must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, serde::Error> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(n)) => Ok(Some(*n)),
        Some(Value::Int(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(other) => Err(serde::Error::msg(format!(
            "field `{key}` must be a non-negative integer, got {}",
            other.type_name()
        ))),
    }
}

fn req_u64(value: &Value, key: &str) -> Result<u64, serde::Error> {
    opt_u64(value, key)?.ok_or_else(|| serde::Error::msg(format!("missing required field `{key}`")))
}

fn req_str(value: &Value, key: &str) -> Result<String, serde::Error> {
    opt_str(value, key)?
        .filter(|s| !s.is_empty())
        .ok_or_else(|| serde::Error::msg(format!("missing required field `{key}`")))
}

impl serde::Deserialize for Event {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let severity_value = value
            .get("severity")
            .ok_or_else(|| serde::Error::msg("missing required field `severity`"))?;
        let opt_f64 = match value.get("value") {
            None | Some(Value::Null) => None,
            Some(Value::Float(f)) => Some(*f),
            Some(Value::Int(n)) => Some(*n as f64),
            Some(Value::UInt(n)) => Some(*n as f64),
            Some(other) => {
                return Err(serde::Error::msg(format!(
                    "field `value` must be a number, got {}",
                    other.type_name()
                )))
            }
        };
        Ok(Event {
            mono_us: req_u64(value, "mono_us")?,
            wall_unix: req_u64(value, "wall_unix")?,
            pid: req_u64(value, "pid")? as u32,
            severity: serde::Deserialize::from_value(severity_value)?,
            source: req_str(value, "source")?,
            kind: req_str(value, "kind")?,
            run_id: opt_str(value, "run_id")?,
            epoch: opt_str(value, "epoch")?,
            shard: opt_u64(value, "shard")?,
            fence: opt_u64(value, "fence")?,
            value: opt_f64,
            detail: opt_str(value, "detail")?.unwrap_or_default(),
        })
    }
}

/// A destination for recorded events. Sinks run under the recorder's sink
/// lock, so `record` should stay cheap (a formatted write, not a network
/// round-trip).
pub trait EventSink: Send {
    /// Receives one event. Failures must be swallowed — telemetry never
    /// takes down the plane it observes.
    fn record(&mut self, event: &Event);
}

/// Appends each event as one JSON line to a file.
///
/// The file is opened with `O_APPEND | O_CREATE` and every event is written
/// as a single complete `write` of `line + '\n'`, which is the same
/// atomic-append discipline the store relies on: several processes can aim
/// a `JsonlSink` at the same `events.jsonl` and lines never interleave
/// mid-record. Write errors are swallowed (telemetry must never fail the
/// run); the sink re-opens the file on the next event after an error.
pub struct JsonlSink {
    path: PathBuf,
    file: Option<std::fs::File>,
}

impl JsonlSink {
    /// Creates a sink appending to `path`. The file (but not its parent
    /// directory) is created on first write.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlSink {
            path: path.into(),
            file: None,
        }
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if self.file.is_none() {
            self.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .ok();
        }
        let Some(file) = self.file.as_mut() else {
            return;
        };
        let Ok(mut line) = serde_json::to_string(event) else {
            return;
        };
        line.push('\n');
        if file.write_all(line.as_bytes()).is_err() {
            self.file = None;
        }
    }
}

/// Parses the `AYB_LOG` environment variable into the minimum severity the
/// stderr paths print (`debug`, `info`, `warn`, `error`; default `info`).
pub fn stderr_min_severity() -> Severity {
    std::env::var("AYB_LOG")
        .ok()
        .and_then(|v| Severity::parse(v.trim()))
        .unwrap_or(Severity::Info)
}

/// Formats `event` in the shared stderr line format:
/// `[ayb severity source] rendered-event`.
pub fn stderr_line(event: &Event) -> String {
    format!(
        "[ayb {} {}] {}",
        event.severity,
        event.source,
        event.render()
    )
}

/// Writes `event` to stderr in the shared format, honouring the `AYB_LOG`
/// severity filter. This is the one formatting path behind
/// `StderrObserver`, the CLI observers and the job/coordinator console
/// output.
pub fn log_to_stderr(event: &Event) {
    if event.severity >= stderr_min_severity() {
        eprintln!("{}", stderr_line(event));
    }
}

/// An [`EventSink`] that prints events to stderr through
/// [`log_to_stderr`]'s shared format, with a configurable minimum
/// severity.
pub struct StderrSink {
    min: Severity,
}

impl StderrSink {
    /// Creates a sink honouring the `AYB_LOG` environment filter.
    pub fn from_env() -> Self {
        StderrSink {
            min: stderr_min_severity(),
        }
    }

    /// Creates a sink with an explicit minimum severity.
    pub fn with_min(min: Severity) -> Self {
        StderrSink { min }
    }
}

impl EventSink for StderrSink {
    fn record(&mut self, event: &Event) {
        if event.severity >= self.min {
            eprintln!("{}", stderr_line(event));
        }
    }
}

const DEFAULT_RING_CAPACITY: usize = 1024;

struct RecorderInner {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    sinks: Mutex<Vec<(u64, Box<dyn EventSink>)>>,
    next_sink_id: AtomicU64,
    metrics: Metrics,
}

/// A cheap cloneable handle through which every plane emits [`Event`]s.
///
/// Clones share one bounded in-memory ring (the most recent events, for
/// `ayb top`-style snapshots), one sink list, and one [`Metrics`] registry.
/// Emitting is lock-sparing: a short ring lock, then the sink lock only
/// while fanning out. Every emit also bumps the `ayb_events_total` and
/// per-kind `ayb_events_<kind>_total` counters, so the metrics view and the
/// event log reconcile by construction.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Recorder {
    /// Creates a recorder with the default ring capacity (1024 events).
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates a recorder keeping the most recent `capacity` events in
    /// memory.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
                capacity: capacity.max(1),
                sinks: Mutex::new(Vec::new()),
                next_sink_id: AtomicU64::new(1),
                metrics: Metrics::new(),
            }),
        }
    }

    /// The shared metrics registry behind this recorder and its clones.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Emits one event: counts it, keeps it in the ring, and forwards it to
    /// every sink.
    ///
    /// The `mono_us` stamp is (re)assigned here, *under the sink lock*: an
    /// event's timestamp and its position in the sinks' output are one
    /// atomic step, so a recorder's JSONL stream is monotonically ordered
    /// even when several threads emit concurrently (a stamp taken at
    /// `Event::new` could be written after a later one raced past it).
    pub fn emit(&self, mut event: Event) {
        self.inner.metrics.inc("ayb_events_total");
        self.inner
            .metrics
            .inc(&format!("ayb_events_{}_total", event.kind));
        let mut sinks = self.inner.sinks.lock().expect("recorder sinks poisoned");
        event.mono_us = mono_us_now();
        {
            let mut ring = self.inner.ring.lock().expect("recorder ring poisoned");
            if ring.len() >= self.inner.capacity {
                ring.pop_front();
            }
            ring.push_back(event.clone());
        }
        for (_, sink) in sinks.iter_mut() {
            sink.record(&event);
        }
    }

    /// Adds a sink for the rest of the recorder's lifetime.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        let id = self.inner.next_sink_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sinks
            .lock()
            .expect("recorder sinks poisoned")
            .push((id, sink));
    }

    /// Adds a sink that is detached again when the returned [`SinkGuard`]
    /// drops — how a shared (e.g. job-server) recorder gains a per-run
    /// `events.jsonl` sink only for the duration of that run.
    pub fn add_scoped_sink(&self, sink: Box<dyn EventSink>) -> SinkGuard {
        let id = self.inner.next_sink_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sinks
            .lock()
            .expect("recorder sinks poisoned")
            .push((id, sink));
        SinkGuard {
            recorder: self.clone(),
            id,
        }
    }

    /// A snapshot of the most recent events (oldest first).
    pub fn recent(&self) -> Vec<Event> {
        self.inner
            .ring
            .lock()
            .expect("recorder ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// Detaches a scoped sink from its [`Recorder`] on drop.
pub struct SinkGuard {
    recorder: Recorder,
    id: u64,
}

impl fmt::Debug for SinkGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkGuard").field("id", &self.id).finish()
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let mut sinks = self
            .recorder
            .inner
            .sinks
            .lock()
            .expect("recorder sinks poisoned");
        sinks.retain(|(id, _)| *id != self.id);
    }
}

/// Reads and validates an `events.jsonl` file: every non-empty line must
/// parse as a well-formed [`Event`]. Returns the events in file order, or a
/// message naming the first offending line.
pub fn read_events(path: &Path) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    parse_events(&text).map_err(|err| format!("{}: {err}", path.display()))
}

/// Parses JSONL text into events; see [`read_events`].
pub fn parse_events(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event =
            serde_json::from_str(line).map_err(|err| format!("line {}: {err}", index + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Checks that `mono_us` never decreases within any single writer (pid).
/// Interleaved appends from different processes are expected and fine; a
/// regression within one pid means the log is corrupt.
pub fn check_monotonic_per_pid(events: &[Event]) -> Result<(), String> {
    let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for (index, event) in events.iter().enumerate() {
        if let Some(prev) = last.get(&event.pid) {
            if event.mono_us < *prev {
                return Err(format!(
                    "event {} (pid {}): mono_us {} < previous {}",
                    index, event.pid, event.mono_us, prev
                ));
            }
        }
        last.insert(event.pid, event.mono_us);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("loud"), None);
    }

    #[test]
    fn event_roundtrips_through_json() {
        let event = Event::new(Severity::Warn, "shards", kind::SHARD_FENCED)
            .run("run-0001")
            .epoch("ep-0000")
            .shard(3)
            .fence(7)
            .value(0.25)
            .detail("stale token rejected");
        let line = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&line).expect("roundtrip");
        assert_eq!(back, event);
    }

    #[test]
    fn sparse_event_roundtrips_without_optional_fields() {
        let event = Event::new(Severity::Info, "flow", kind::STAGE_START);
        let line = serde_json::to_string(&event).unwrap();
        assert!(
            !line.contains("run_id"),
            "sparse event stays sparse: {line}"
        );
        let back: Event = serde_json::from_str(&line).expect("roundtrip");
        assert_eq!(back, event);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let good = serde_json::to_string(&Event::new(Severity::Info, "flow", "x")).unwrap();
        let text = format!("{good}\n{{\"kind\":\"missing-everything\"}}\n");
        let err = parse_events(&text).unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn mono_us_is_monotonic_within_a_process() {
        let a = Event::new(Severity::Info, "flow", "a");
        let b = Event::new(Severity::Info, "flow", "b");
        assert!(b.mono_us >= a.mono_us);
        check_monotonic_per_pid(&[a, b]).expect("monotonic");
    }

    #[test]
    fn monotonicity_check_is_per_pid() {
        let mut a = Event::new(Severity::Info, "flow", "a");
        let mut b = Event::new(Severity::Info, "flow", "b");
        a.pid = 10;
        a.mono_us = 100;
        b.pid = 20;
        b.mono_us = 5; // other writer, earlier origin: fine
        check_monotonic_per_pid(&[a.clone(), b]).expect("cross-pid interleaving is fine");
        let mut c = Event::new(Severity::Info, "flow", "c");
        c.pid = 10;
        c.mono_us = 50; // same writer going backwards: corrupt
        assert!(check_monotonic_per_pid(&[a, c]).is_err());
    }

    #[test]
    fn recorder_ring_is_bounded_and_shared_across_clones() {
        let recorder = Recorder::with_capacity(4);
        let clone = recorder.clone();
        for i in 0..10 {
            clone.emit(Event::new(Severity::Info, "test", "tick").value(i as f64));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].value, Some(6.0));
        assert_eq!(recorder.metrics().counter("ayb_events_total"), 10);
        assert_eq!(recorder.metrics().counter("ayb_events_tick_total"), 10);
    }

    #[test]
    fn scoped_sinks_detach_on_drop() {
        struct CountSink(Arc<AtomicU64>);
        impl EventSink for CountSink {
            fn record(&mut self, _event: &Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let recorder = Recorder::new();
        let count = Arc::new(AtomicU64::new(0));
        let guard = recorder.add_scoped_sink(Box::new(CountSink(count.clone())));
        recorder.emit(Event::new(Severity::Info, "test", "one"));
        drop(guard);
        recorder.emit(Event::new(Severity::Info, "test", "two"));
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jsonl_sink_appends_parseable_lines() {
        let dir = std::env::temp_dir().join(format!(
            "ayb-obs-test-{}-{}",
            std::process::id(),
            mono_us_now()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let recorder = Recorder::new();
        recorder.add_sink(Box::new(JsonlSink::new(&path)));
        recorder.emit(Event::new(Severity::Info, "test", "first").run("r1"));
        recorder.emit(Event::new(Severity::Warn, "test", "second").shard(2));
        let events = read_events(&path).expect("valid log");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "first");
        assert_eq!(events[1].shard, Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_includes_context() {
        let event = Event::new(Severity::Info, "flow", kind::STAGE_START)
            .run("run-7")
            .detail("stage optimize started");
        let line = stderr_line(&event);
        assert!(line.starts_with("[ayb info flow] stage optimize started"));
        assert!(line.contains("run=run-7"));
    }
}
