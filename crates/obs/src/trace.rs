//! Timeline reconstruction over a parsed `events.jsonl`: group events into
//! flow attempts, rebuild per-shard claim → fence → steal chains, and render
//! the human-readable trace the `ayb trace` CLI command prints.
//!
//! Everything here is a pure function over `&[Event]`, so tests can assert
//! on reconstructed structure without going through the CLI.

use std::collections::BTreeMap;

use crate::{kind, Event};

/// The claim/submit/fence history of one `(epoch, shard)` slot, rebuilt
/// from its events in log order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardChain {
    /// The epoch the shard belongs to.
    pub epoch: String,
    /// The shard index within the epoch.
    pub shard: u64,
    /// Every fencing token minted for this shard, in log order. More than
    /// one token means the claim was stolen (recovered and re-claimed).
    pub fences: Vec<u64>,
    /// Tokens whose submit was accepted.
    pub accepted: Vec<u64>,
    /// Tokens whose submit was fenced off (a zombie's late write).
    pub fenced: Vec<u64>,
    /// How many times a hung claim on this shard was expired.
    pub recoveries: u64,
    /// Whether the submitter gave up on transport for this shard and
    /// serviced it locally.
    pub degraded: bool,
}

impl ShardChain {
    /// Renders the chain as one line, making steals and fenced writes
    /// legible: `ep-0000/shard 3: claim f1 -> stolen, claim f2 ->
    /// accepted; fenced: f1`.
    pub fn render(&self) -> String {
        let mut steps = Vec::new();
        for fence in &self.fences {
            let outcome = if self.accepted.contains(fence) {
                "accepted"
            } else if self.fenced.contains(fence) {
                "fenced"
            } else if self.fences.last() != Some(fence) {
                "stolen"
            } else {
                "open"
            };
            steps.push(format!("claim f{fence} -> {outcome}"));
        }
        let mut line = format!(
            "{}/shard {}: {}",
            self.epoch,
            self.shard,
            if steps.is_empty() {
                "no claims".to_string()
            } else {
                steps.join(", ")
            }
        );
        if self.recoveries > 0 {
            line.push_str(&format!(" [{} recovered]", self.recoveries));
        }
        if self.degraded {
            line.push_str(" [degraded -> local]");
        }
        line
    }

    /// True when this chain saw contention worth surfacing: a steal, a
    /// fenced write, a recovery, or local degradation.
    pub fn contended(&self) -> bool {
        self.fences.len() > 1 || !self.fenced.is_empty() || self.recoveries > 0 || self.degraded
    }
}

/// Rebuilds the per-`(epoch, shard)` chains from an event log.
pub fn shard_chains(events: &[Event]) -> Vec<ShardChain> {
    let mut chains: BTreeMap<(String, u64), ShardChain> = BTreeMap::new();
    for event in events {
        let (Some(epoch), Some(shard)) = (event.epoch.clone(), event.shard) else {
            continue;
        };
        let chain = chains
            .entry((epoch.clone(), shard))
            .or_insert_with(|| ShardChain {
                epoch,
                shard,
                ..ShardChain::default()
            });
        match event.kind.as_str() {
            kind::SHARD_CLAIM => {
                if let Some(fence) = event.fence {
                    if !chain.fences.contains(&fence) {
                        chain.fences.push(fence);
                    }
                }
            }
            kind::SHARD_SUBMIT => {
                if let Some(fence) = event.fence {
                    chain.accepted.push(fence);
                }
            }
            kind::SHARD_FENCED => {
                if let Some(fence) = event.fence {
                    chain.fenced.push(fence);
                }
            }
            kind::SHARD_RECOVER => chain.recoveries += 1,
            kind::SHARD_DEGRADED => chain.degraded = true,
            _ => {}
        }
    }
    chains.into_values().collect()
}

/// The events of one flow attempt: a [`kind::FLOW_START`] marker and
/// everything the same process emitted until its next marker.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// The emitting process.
    pub pid: u32,
    /// Wall-clock seconds of the attempt's first event.
    pub start_wall: u64,
    /// `mono_us` of the attempt's first event (the zero of its relative
    /// timestamps).
    pub start_mono_us: u64,
    /// The attempt's events, in log order.
    pub events: Vec<Event>,
}

/// Splits an event log into flow attempts on [`kind::FLOW_START`] markers.
/// Events before the first marker (or from processes that never emit one,
/// e.g. a worker appending to the submitter's log) form attempt groups of
/// their own, keyed by pid, so nothing is dropped.
pub fn attempts(events: &[Event]) -> Vec<Attempt> {
    let mut out: Vec<Attempt> = Vec::new();
    let mut open: BTreeMap<u32, usize> = BTreeMap::new();
    for event in events {
        let is_marker = event.kind == kind::FLOW_START;
        let slot = open.get(&event.pid).copied();
        match (is_marker, slot) {
            (true, _) | (false, None) => {
                out.push(Attempt {
                    pid: event.pid,
                    start_wall: event.wall_unix,
                    start_mono_us: event.mono_us,
                    events: vec![event.clone()],
                });
                open.insert(event.pid, out.len() - 1);
            }
            (false, Some(index)) => out[index].events.push(event.clone()),
        }
    }
    out
}

/// The events of the final flow attempt — everything at or after the last
/// [`kind::FLOW_START`] marker in the log. This is the attempt that
/// produced the run's result, so counters reconciled against `FlowTimings`
/// must be counted here. Returns the whole log when no marker exists.
pub fn final_attempt(events: &[Event]) -> &[Event] {
    let start = events
        .iter()
        .rposition(|event| event.kind == kind::FLOW_START)
        .unwrap_or(0);
    &events[start..]
}

/// Counts events of `kind` in `events`.
pub fn count_kind(events: &[Event], kind: &str) -> u64 {
    events.iter().filter(|event| event.kind == kind).count() as u64
}

fn format_rel_ms(event: &Event, start_mono_us: u64) -> String {
    let rel = event.mono_us.saturating_sub(start_mono_us) as f64 / 1000.0;
    format!("{rel:>10.1}ms")
}

/// Renders the full trace: one line per event grouped by attempt, then a
/// chain summary for every contended shard. This is exactly what
/// `ayb trace RUN_ID` prints.
pub fn render_trace(events: &[Event]) -> Vec<String> {
    let mut lines = Vec::new();
    let groups = attempts(events);
    let total = groups.len();
    for (index, attempt) in groups.iter().enumerate() {
        lines.push(format!(
            "attempt {}/{} (pid {}, wall {}):",
            index + 1,
            total,
            attempt.pid,
            attempt.start_wall
        ));
        for event in &attempt.events {
            // Every line leads with the kind so traces are grep-able by
            // vocabulary (`shard_claim`, `shard_fenced`, …); the rendered
            // detail/context follows.
            let rendered = event.render();
            let tail = if event.detail.is_empty() {
                // render() starts with the kind when there is no detail;
                // don't print it twice.
                rendered
                    .strip_prefix(event.kind.as_str())
                    .unwrap_or(&rendered)
                    .trim_start()
                    .to_string()
            } else {
                rendered
            };
            let line = format!(
                "  {} [{:<5}] {:<12} {:<16} {}",
                format_rel_ms(event, attempt.start_mono_us),
                event.severity.as_str(),
                event.source,
                event.kind,
                tail
            );
            lines.push(line.trim_end().to_string());
        }
    }
    let chains = shard_chains(events);
    let contended: Vec<&ShardChain> = chains.iter().filter(|chain| chain.contended()).collect();
    if !contended.is_empty() {
        lines.push("contended shards:".to_string());
        for chain in contended {
            lines.push(format!("  {}", chain.render()));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn ev(pid: u32, mono: u64, kind_name: &str) -> Event {
        let mut event = Event::new(Severity::Info, "test", kind_name);
        event.pid = pid;
        event.mono_us = mono;
        event
    }

    #[test]
    fn attempts_split_on_flow_start_per_pid() {
        let events = vec![
            ev(1, 0, kind::FLOW_START),
            ev(1, 10, kind::STAGE_START),
            ev(2, 5, kind::SHARD_CLAIM), // worker with no marker
            ev(1, 20, kind::FLOW_START), // resume attempt
            ev(1, 30, kind::STAGE_START),
            ev(2, 15, kind::SHARD_SUBMIT),
        ];
        let groups = attempts(&events);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].pid, 1);
        assert_eq!(groups[0].events.len(), 2);
        assert_eq!(groups[1].pid, 2);
        assert_eq!(groups[1].events.len(), 2);
        assert_eq!(groups[2].events.len(), 2);
        let last = final_attempt(&events);
        assert_eq!(last.len(), 3);
        assert_eq!(last[0].kind, kind::FLOW_START);
    }

    #[test]
    fn chains_reconstruct_steal_and_fence() {
        let claim1 = ev(1, 0, kind::SHARD_CLAIM)
            .epoch("var-0000")
            .shard(3)
            .fence(1);
        let recover = ev(1, 10, kind::SHARD_RECOVER).epoch("var-0000").shard(3);
        let claim2 = ev(1, 20, kind::SHARD_CLAIM)
            .epoch("var-0000")
            .shard(3)
            .fence(2);
        let submit2 = ev(1, 30, kind::SHARD_SUBMIT)
            .epoch("var-0000")
            .shard(3)
            .fence(2);
        let fenced1 = ev(2, 40, kind::SHARD_FENCED)
            .epoch("var-0000")
            .shard(3)
            .fence(1);
        let quiet = ev(1, 50, kind::SHARD_CLAIM)
            .epoch("var-0000")
            .shard(0)
            .fence(5);
        let ok = ev(1, 60, kind::SHARD_SUBMIT)
            .epoch("var-0000")
            .shard(0)
            .fence(5);
        let chains = shard_chains(&[claim1, recover, claim2, submit2, fenced1, quiet, ok]);
        assert_eq!(chains.len(), 2);
        let calm = &chains[0];
        assert_eq!(calm.shard, 0);
        assert!(!calm.contended());
        let hot = &chains[1];
        assert_eq!(hot.shard, 3);
        assert!(hot.contended());
        assert_eq!(hot.fences, vec![1, 2]);
        assert_eq!(hot.fenced, vec![1]);
        assert_eq!(hot.accepted, vec![2]);
        assert_eq!(hot.recoveries, 1);
        let line = hot.render();
        assert!(line.contains("claim f1 -> fenced"), "{line}");
        assert!(line.contains("claim f2 -> accepted"), "{line}");
        assert!(line.contains("[1 recovered]"), "{line}");
    }

    #[test]
    fn render_trace_groups_and_summarises() {
        let events = vec![
            ev(1, 0, kind::FLOW_START).run("r1"),
            ev(1, 1_000, kind::SHARD_CLAIM)
                .epoch("ep-0000")
                .shard(1)
                .fence(1),
            ev(1, 2_000, kind::SHARD_RECOVER).epoch("ep-0000").shard(1),
            ev(1, 3_000, kind::SHARD_CLAIM)
                .epoch("ep-0000")
                .shard(1)
                .fence(2),
            ev(1, 4_000, kind::SHARD_SUBMIT)
                .epoch("ep-0000")
                .shard(1)
                .fence(2),
        ];
        let lines = render_trace(&events);
        assert!(lines[0].starts_with("attempt 1/1 (pid 1"));
        assert!(lines.iter().any(|l| l.contains("contended shards:")));
        assert!(lines.iter().any(|l| l.contains("ep-0000/shard 1")));
    }
}
