//! The metrics registry: counters, gauges and fixed-bucket histograms with
//! a text exposition format.
//!
//! Metric names are plain strings (`ayb_shard_requests_total`,
//! `ayb_coord_request_seconds`, …); there is no label syntax — a fleet this
//! size is better served by a flat, greppable namespace. The registry is
//! cheap to clone (all clones share state) and every operation is
//! lock-short, so planes can bump counters on hot paths.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Histogram bucket upper bounds (seconds) suitable for shard service
/// latency and claim-to-submit times: 500µs up to 10s.
pub const LATENCY_BUCKETS_SECONDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket histogram: cumulative-style buckets, a running sum and a
/// count. Observations above the last bound land in an implicit overflow
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bucket upper
    /// bounds. One extra overflow bucket is added implicitly.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(self.bounds.len());
        self.counts[index] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`):
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `q × count`. Returns `None` when empty, and `f64::INFINITY` when the
    /// quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return Some(self.bounds.get(index).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts (one extra trailing overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A cheap cloneable registry of counters, gauges and histograms; clones
/// share state.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").finish()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments the counter `name` by one, creating it at zero first.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        let mut counters = self.inner.counters.lock().expect("counters poisoned");
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The current value of counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .expect("counters poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut gauges = self.inner.gauges.lock().expect("gauges poisoned");
        gauges.insert(name.to_string(), value);
    }

    /// The current value of gauge `name`, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .gauges
            .lock()
            .expect("gauges poisoned")
            .get(name)
            .copied()
    }

    /// Records `value` into the histogram `name`, creating it with
    /// [`LATENCY_BUCKETS_SECONDS`] when absent.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, LATENCY_BUCKETS_SECONDS, value);
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// given bounds when absent.
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut histograms = self.inner.histograms.lock().expect("histograms poisoned");
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// A snapshot of histogram `name`, when it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .histograms
            .lock()
            .expect("histograms poisoned")
            .get(name)
            .cloned()
    }

    /// Renders every metric in the text exposition format:
    ///
    /// ```text
    /// # TYPE ayb_coord_claims_total counter
    /// ayb_coord_claims_total 12
    /// # TYPE ayb_coord_open_shards gauge
    /// ayb_coord_open_shards 3
    /// # TYPE ayb_coord_request_seconds histogram
    /// ayb_coord_request_seconds_bucket{le="0.001"} 4
    /// ayb_coord_request_seconds_bucket{le="+Inf"} 12
    /// ayb_coord_request_seconds_sum 0.042
    /// ayb_coord_request_seconds_count 12
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self
            .inner
            .counters
            .lock()
            .expect("counters poisoned")
            .iter()
        {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in self.inner.gauges.lock().expect("gauges poisoned").iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in self
            .inner
            .histograms
            .lock()
            .expect("histograms poisoned")
            .iter()
        {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (index, count) in histogram.counts.iter().enumerate() {
                cumulative += count;
                match histogram.bounds.get(index) {
                    Some(bound) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "{name}_count {}", histogram.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let metrics = Metrics::new();
        let clone = metrics.clone();
        metrics.inc("ayb_test_total");
        clone.add("ayb_test_total", 4);
        assert_eq!(metrics.counter("ayb_test_total"), 5);
        assert_eq!(metrics.counter("ayb_absent_total"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let metrics = Metrics::new();
        metrics.set_gauge("ayb_depth", 3.0);
        metrics.set_gauge("ayb_depth", 1.0);
        assert_eq!(metrics.gauge("ayb_depth"), Some(1.0));
        assert_eq!(metrics.gauge("ayb_absent"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut histogram = Histogram::with_bounds(&[0.01, 0.1, 1.0]);
        for value in [0.005, 0.005, 0.05, 0.5, 5.0] {
            histogram.observe(value);
        }
        assert_eq!(histogram.count(), 5);
        assert_eq!(histogram.bucket_counts(), &[2, 1, 1, 1]);
        assert!((histogram.sum() - 5.56).abs() < 1e-9);
        assert_eq!(histogram.quantile(0.5), Some(0.1));
        assert_eq!(histogram.quantile(0.0), Some(0.01));
        assert_eq!(histogram.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(Histogram::with_bounds(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn text_exposition_covers_all_kinds() {
        let metrics = Metrics::new();
        metrics.inc("ayb_claims_total");
        metrics.set_gauge("ayb_open_shards", 2.0);
        metrics.observe_with("ayb_latency_seconds", &[0.1, 1.0], 0.05);
        metrics.observe_with("ayb_latency_seconds", &[0.1, 1.0], 2.0);
        let text = metrics.render_text();
        assert!(text.contains("# TYPE ayb_claims_total counter"));
        assert!(text.contains("ayb_claims_total 1"));
        assert!(text.contains("# TYPE ayb_open_shards gauge"));
        assert!(text.contains("ayb_open_shards 2"));
        assert!(text.contains("ayb_latency_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("ayb_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ayb_latency_seconds_count 2"));
    }
}
