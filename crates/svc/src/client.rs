//! A small blocking HTTP client for the service plane.
//!
//! Used by the integration tests and the `ayb-load` generator. Each request
//! opens a fresh connection with `connection: close` — boring and robust,
//! which is what a load generator measuring the *server* wants (connection
//! reuse would measure the client's socket pooling instead).

use crate::http::{self, HttpError};
use serde::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

/// Per-request connect/read/write timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking client bound to one service URL and (optionally) one tenant.
#[derive(Debug, Clone)]
pub struct SvcClient {
    authority: String,
    tenant: Option<String>,
}

impl SvcClient {
    /// Creates a client for `http://host:port` (or a bare `host:port`).
    ///
    /// # Errors
    ///
    /// Fails on URLs with a scheme other than `http` or an empty authority.
    pub fn new(url: &str) -> Result<SvcClient, String> {
        let authority = match url.split_once("://") {
            Some(("http", rest)) => rest,
            Some((scheme, _)) => return Err(format!("unsupported scheme `{scheme}`")),
            None => url,
        };
        let authority = authority.trim_end_matches('/');
        if authority.is_empty() {
            return Err(format!("no host in url `{url}`"));
        }
        Ok(SvcClient {
            authority: authority.to_string(),
            tenant: None,
        })
    }

    /// Returns a copy sending `x-ayb-tenant: tenant` with every request.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> SvcClient {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// Sends one request and returns `(status, parsed body)`. A non-JSON
    /// body (e.g. `/v1/metrics` text) comes back as [`Value::Str`].
    ///
    /// # Errors
    ///
    /// Connection, timeout, and protocol errors as strings.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Value), String> {
        let stream = TcpStream::connect(&self.authority)
            .map_err(|e| format!("connect {}: {e}", self.authority))?;
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(CLIENT_TIMEOUT))
            .map_err(|e| e.to_string())?;
        let mut headers = vec![
            ("host".to_string(), self.authority.clone()),
            ("connection".to_string(), "close".to_string()),
        ];
        if let Some(tenant) = &self.tenant {
            headers.push(("x-ayb-tenant".to_string(), tenant.clone()));
        }
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        http::write_request(&mut writer, method, path, &headers, body)
            .map_err(|e| format!("send {method} {path}: {e}"))?;
        let mut reader = BufReader::new(stream);
        let response = http::read_response(&mut reader).map_err(|e| match e {
            HttpError::Io(io) => format!("read {method} {path}: {io}"),
            other => format!("read {method} {path}: {other}"),
        })?;
        let text = response.text();
        let parsed = if response
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("application/json"))
        {
            serde_json::from_str::<Value>(&text).unwrap_or(Value::Str(text))
        } else {
            Value::Str(text)
        };
        Ok((response.status, parsed))
    }

    /// `POST /v1/runs` with a raw JSON body.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`].
    pub fn submit_raw(&self, body: &str) -> Result<(u16, Value), String> {
        self.request("POST", "/v1/runs", Some(body))
    }

    /// Submits `{seed, scale}`.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`].
    pub fn submit_seed(&self, seed: u64, scale: &str) -> Result<(u16, Value), String> {
        self.submit_raw(&format!("{{\"seed\": {seed}, \"scale\": \"{scale}\"}}"))
    }

    /// `GET /v1/runs/{id}`.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`].
    pub fn run_status(&self, id: &str) -> Result<(u16, Value), String> {
        self.request("GET", &format!("/v1/runs/{id}"), None)
    }

    /// `GET /v1/runs/{id}/result`.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`].
    pub fn run_result(&self, id: &str) -> Result<(u16, Value), String> {
        self.request("GET", &format!("/v1/runs/{id}/result"), None)
    }

    /// `POST /v1/runs/{id}/cancel`.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`].
    pub fn cancel(&self, id: &str) -> Result<(u16, Value), String> {
        self.request("POST", &format!("/v1/runs/{id}/cancel"), None)
    }

    /// `GET /v1/metrics` as raw exposition text.
    ///
    /// # Errors
    ///
    /// As [`SvcClient::request`]; non-200 answers are errors here.
    pub fn metrics_text(&self) -> Result<String, String> {
        match self.request("GET", "/v1/metrics", None)? {
            (200, Value::Str(text)) => Ok(text),
            (status, _) => Err(format!("metrics endpoint answered {status}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_http_and_bare_authorities() {
        assert_eq!(
            SvcClient::new("http://127.0.0.1:8080/").unwrap().authority,
            "127.0.0.1:8080"
        );
        assert_eq!(
            SvcClient::new("127.0.0.1:8080").unwrap().authority,
            "127.0.0.1:8080"
        );
        assert!(SvcClient::new("tcp://127.0.0.1:1").is_err());
        assert!(SvcClient::new("http://").is_err());
    }
}
