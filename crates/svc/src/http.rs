//! Minimal HTTP/1.1 framing for the service plane.
//!
//! The service speaks a deliberately small subset of HTTP/1.1 — enough for
//! JSON request/response exchanges with `Content-Length` bodies and
//! keep-alive connections, with hard limits on every dimension so a hostile
//! or broken client cannot wedge a connection handler:
//!
//! | limit                  | value                         |
//! |------------------------|-------------------------------|
//! | request/status line    | [`MAX_START_LINE_BYTES`]      |
//! | header line            | [`MAX_HEADER_LINE_BYTES`]     |
//! | header count           | [`MAX_HEADERS`]               |
//! | body (`Content-Length`)| [`MAX_BODY_BYTES`]            |
//!
//! Chunked transfer encoding, continuation lines, and HTTP/2 upgrades are
//! all rejected as malformed. Both sides of the exchange live here: the
//! server parses [`Request`]s and writes responses, the client (the test
//! harness and `ayb-load`) writes requests and parses [`Response`]s.

use std::io::{self, BufRead, Write};

/// Maximum accepted request/status line length in bytes.
pub const MAX_START_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted header line length in bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted number of headers per message.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted `Content-Length` in bytes (requests and responses).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup; returns the first match.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup; returns the first match.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why an HTTP message could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire do not form a valid message.
    Malformed(String),
    /// A line, header count, or body exceeded its hard limit.
    TooLarge(String),
    /// The underlying socket failed (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed http message: {m}"),
            HttpError::TooLarge(m) => write!(f, "http message too large: {m}"),
            HttpError::Io(e) => write!(f, "http io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines longer than
/// `cap`. Returns `Ok(None)` on clean EOF before any byte.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof mid-line".to_string()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-utf8 line".to_string()))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(HttpError::TooLarge(format!("line exceeds {cap} bytes")));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Header list as parsed off the wire: lowercased name, trimmed value.
type HeaderList = Vec<(String, String)>;

/// Reads the header block (after the start line) and an optional
/// `Content-Length` body.
fn read_headers_and_body(reader: &mut impl BufRead) -> Result<(HeaderList, Vec<u8>), HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line_capped(reader, MAX_HEADER_LINE_BYTES)?
            .ok_or_else(|| HttpError::Malformed("eof in headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::Malformed("unparseable content-length".to_string()))?;
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported".to_string(),
        ));
    }
    if let Some(len) = content_length {
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge(format!(
                "content-length {len} exceeds {MAX_BODY_BYTES}"
            )));
        }
        body.resize(len, 0);
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("body shorter than content-length".to_string())
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    Ok((headers, body))
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (the keep-alive loop's normal exit).
///
/// # Errors
///
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] for protocol
/// violations, [`HttpError::Io`] for socket failures.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let start = match read_line_capped(reader, MAX_START_LINE_BYTES)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.chars().all(|c| c.is_ascii_alphabetic()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line: {start:?}")))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request target: {start:?}")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed(format!("missing http version: {start:?}")))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad request line: {start:?}")));
    }
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Reads one response from the stream (client side).
///
/// # Errors
///
/// Same taxonomy as [`read_request`]; a clean EOF before the status line is
/// malformed here (the client asked a question and expects an answer).
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, HttpError> {
    let start = read_line_capped(reader, MAX_START_LINE_BYTES)?
        .ok_or_else(|| HttpError::Malformed("eof before status line".to_string()))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad status line: {start:?}")));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .filter(|s| (100..600).contains(s))
        .ok_or_else(|| HttpError::Malformed(format!("bad status code: {start:?}")))?;
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes this service emits.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with an explicit content type.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n\r\n",
        status,
        reason_for(status),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response (the body must already be serialized JSON text).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_json(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response(stream, status, "application/json", body.as_bytes())
}

/// Writes a request with an optional JSON body (client side).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    write!(stream, "{method} {path} HTTP/1.1\r\n")?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    if !body.is_empty() {
        write!(stream, "content-type: application/json\r\n")?;
    }
    write!(stream, "content-length: {}\r\n\r\n{body}", body.len())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let raw = b"POST /v1/runs HTTP/1.1\r\nX-Ayb-Tenant: acme\r\nContent-Length: 12\r\n\r\n{\"seed\": 42}";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/runs");
        assert_eq!(req.header("x-ayb-tenant"), Some("acme"));
        assert_eq!(req.header("X-AYB-TENANT"), Some("acme"));
        assert_eq!(req.body, b"{\"seed\": 42}");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn garbage_start_line_is_malformed() {
        for raw in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn oversized_content_length_is_rejected_before_reading_the_body() {
        let raw = format!(
            "POST /v1/runs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let raw = b"POST /v1/runs HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn header_flood_is_too_large() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("x-h-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_round_trips_through_the_writers_and_parser() {
        let mut wire = Vec::new();
        write_json(&mut wire, 201, "{\"run_id\":\"r1\"}").unwrap();
        let resp = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{\"run_id\":\"r1\"}");
    }

    #[test]
    fn request_writer_output_parses_back() {
        let mut wire = Vec::new();
        let headers = vec![("x-ayb-tenant".to_string(), "t0".to_string())];
        write_request(
            &mut wire,
            "POST",
            "/v1/runs",
            &headers,
            Some("{\"seed\":1}"),
        )
        .unwrap();
        let req = read_request(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("x-ayb-tenant"), Some("t0"));
        assert_eq!(req.body, b"{\"seed\":1}");
    }
}
