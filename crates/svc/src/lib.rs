//! `ayb-svc` — the multi-tenant HTTP/JSON service plane.
//!
//! Everything below `ayb serve` shares one filesystem: submitters and
//! workers mount the same run store. This crate adds the missing front
//! door — a std-only HTTP/1.1 service (`ayb serve-http`) that turns the
//! store + job server into a shared, *governed* facility:
//!
//! * **[`http`]** — minimal HTTP/1.1 framing with hard limits on every
//!   message dimension (request line, headers, body), so hostile input
//!   costs one connection, never the accept loop.
//! * **[`digest`]** — content-addressed submission digests: canonical-JSON
//!   FNV-1a over `(problem, optimizer, flow, seed)`. Identical submissions
//!   map to one run; the stability tests pin the key's field coverage.
//! * **[`service`]** — [`SvcServer`]: admission
//!   (dedup → per-tenant quotas → atomic enqueue with `tenant` / `priority`
//!   / `submission_digest` manifest extras) in front of an embedded
//!   [`JobServer`](ayb_jobs::JobServer) running
//!   [`QueuePolicy::WeightedTenant`](ayb_jobs::QueuePolicy) — weighted
//!   round-robin across tenants with priority lanes, replacing global FIFO.
//! * **[`client`]** — the blocking client the tests and the `ayb-load`
//!   generator (this crate's binary) drive the service with.
//!
//! Everything rides the existing planes: results, checkpoints and claims
//! are untouched store artefacts; telemetry flows through the shared
//! `ayb-obs` recorder and is exposed verbatim at `GET /v1/metrics`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod digest;
pub mod http;
pub mod service;

pub use client::SvcClient;
pub use digest::{
    canonical_json, canonical_value, digest_hex, parse_digest_hex, submission_digest,
    submission_digest_value,
};
pub use service::{SvcConfig, SvcServer, TenantQuota};
