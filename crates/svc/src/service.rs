//! The multi-tenant HTTP/JSON service plane.
//!
//! [`SvcServer`] binds an HTTP/1.1 listener over a run [`Store`] and (when
//! configured with workers) an embedded [`JobServer`] executing what the
//! HTTP plane admits. The layer between the two is the *admission* state:
//!
//! ```text
//!            POST /v1/runs
//!                 │
//!      ┌──────────▼──────────┐   dedup hit → 200 (existing live run)
//!      │  dedup index        │
//!      │  (live submissions) │
//!      ├─────────────────────┤   cache hit → 200 (served_from_cache)
//!      │  result cache       │
//!      │  (completed digests)│
//!      ├─────────────────────┤   over quota → 429 (nothing written)
//!      │  per-tenant quotas  │
//!      │  (queued / running) │
//!      ├─────────────────────┤   admitted → 201, manifest carries
//!      │  store enqueue      │   tenant / priority / digest extras
//!      └──────────┬──────────┘
//!                 │ (store poll)
//!        JobServer with QueuePolicy::WeightedTenant
//!        — weighted round-robin across tenants, priority lanes
//! ```
//!
//! Endpoints:
//!
//! | method & path              | success | errors                          |
//! |----------------------------|---------|---------------------------------|
//! | `POST /v1/runs`            | 201 new, 200 dedup hit | 400 bad body, 429 over quota |
//! | `GET /v1/runs/{id}`        | 200     | 404 unknown run                 |
//! | `GET /v1/runs/{id}/result` | 200     | 404 unknown, 409 not completed  |
//! | `POST /v1/runs/{id}/cancel`| 200     | 404 unknown, 409 not cancellable|
//! | `GET /v1/metrics`          | 200     | —                               |
//!
//! The tenant is taken from the `x-ayb-tenant` request header (default
//! `default`). Cancellation of a still-queued run frees its quota slot and
//! drops its dedup-index entry, so an identical submission executes fresh.
//!
//! The in-memory dedup index covers *live* (non-terminal) runs only. When a
//! run completes, its digest graduates to the store's persistent
//! [`ResultCache`] (`cache/digest_index.json`), which survives restarts and
//! run-directory garbage collection — so a byte-identical resubmission of
//! any completed digest answers 200 with `served_from_cache: true` and never
//! re-executes, even on a freshly started server with an empty dedup index.
//!
//! With `workers: 0` the server is *admission-only*: it accepts, dedups,
//! quota-checks and records runs but executes nothing — the deterministic
//! mode the scheduler tests drive (a separate `ayb serve` fleet sharing the
//! store can still execute).

use crate::digest::{digest_hex, parse_digest_hex, submission_digest};
use crate::http::{self, HttpError, Request};
use ayb_core::FlowConfig;
use ayb_jobs::{
    JobEvent, JobServer, JobServerConfig, Priority, QueuePolicy, ShutdownHandle, TenantPolicy,
};
use ayb_moo::OptimizerConfig;
use ayb_obs::{kind, Event, Recorder, Severity};
use ayb_store::{ClaimHealth, ResultCache, RunStatus, Store, StoreError};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-connection socket IO timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Accept-loop poll interval while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// The single optimisation problem the service currently exposes; part of
/// the dedup key so a second problem can never collide with the first.
const PROBLEM_ID: &str = "ota";
/// Heartbeat age past which a run claim no longer proves a live holder when
/// the admission ledger is rebuilt (matches the CLI's recovery threshold).
const CLAIM_ALIVE_MAX_HEARTBEAT_AGE: Duration = Duration::from_secs(30);

/// Queued/running admission limits for one tenant (`0` = unlimited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum runs waiting in the queue; submissions beyond it get 429.
    pub max_queued: usize,
    /// Maximum runs executing concurrently (enforced by the scheduler's
    /// per-tenant running cap, not by rejecting submissions).
    pub max_running: usize,
}

/// Configuration of a [`SvcServer`].
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub bind: String,
    /// Embedded worker threads executing admitted runs. `0` = admission
    /// only: no [`JobServer`] is started.
    pub workers: usize,
    /// Maximum concurrently open HTTP connections; further clients get an
    /// immediate 503 instead of wedging the accept loop.
    pub max_connections: usize,
    /// Quota applied to tenants without an explicit entry in
    /// [`SvcConfig::quotas`].
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub quotas: Vec<(String, TenantQuota)>,
    /// Scheduler weight for tenants without an explicit entry in
    /// [`SvcConfig::weights`] (minimum 1).
    pub default_weight: u32,
    /// Per-tenant scheduler-weight overrides.
    pub weights: Vec<(String, u32)>,
    /// Store poll interval of the embedded job server.
    pub poll_interval: Duration,
    /// Claim-owner label of the embedded job server.
    pub owner: String,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 1,
            max_connections: 256,
            default_quota: TenantQuota::default(),
            quotas: Vec::new(),
            default_weight: 1,
            weights: Vec::new(),
            poll_interval: Duration::from_millis(25),
            owner: format!("ayb-svc-{}", std::process::id()),
        }
    }
}

impl SvcConfig {
    /// The quota in force for `tenant`.
    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }

    /// Translates the service's weights and quotas into the job server's
    /// queue policy (weighted round-robin with per-tenant running caps).
    fn queue_policy(&self) -> QueuePolicy {
        let mut tenants: Vec<(String, TenantPolicy)> = Vec::new();
        let policy_of = |name: &str| -> TenantPolicy {
            let weight = self
                .weights
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, w)| *w)
                .unwrap_or(self.default_weight);
            TenantPolicy {
                weight,
                max_running: self.quota_for(name).max_running,
            }
        };
        for (name, _) in &self.weights {
            if !tenants.iter().any(|(n, _)| n == name) {
                tenants.push((name.clone(), policy_of(name)));
            }
        }
        for (name, _) in &self.quotas {
            if !tenants.iter().any(|(n, _)| n == name) {
                tenants.push((name.clone(), policy_of(name)));
            }
        }
        QueuePolicy::WeightedTenant {
            default: TenantPolicy {
                weight: self.default_weight.max(1),
                max_running: self.default_quota.max_running,
            },
            tenants,
        }
    }
}

/// Live queued/running counters for one tenant.
#[derive(Debug, Default, Clone, Copy)]
struct TenantCounts {
    queued: usize,
    running: usize,
}

/// The admission state shared between the HTTP handlers and the job
/// server's event hook. One mutex guards all four maps so dedup + quota +
/// enqueue are atomic; holders never call back into the job server (the
/// reverse — the hook locking this while a worker runs — happens on every
/// dispatch, and lock-ordering discipline is what keeps that deadlock-free).
#[derive(Debug, Default)]
struct Admission {
    /// Submission digest → canonical run id, for *live* (non-terminal) runs
    /// only; completed digests live in the persistent [`ResultCache`].
    dedup: HashMap<u64, String>,
    /// Tenant → live counters.
    tenants: HashMap<String, TenantCounts>,
    /// Run id → owning tenant (for the event hook and cancellation).
    run_tenants: HashMap<String, String>,
    /// `(tenant, run_id)` in worker-dispatch order; the fairness tests read
    /// this to assert the weighted round-robin's starvation bound.
    dispatch_log: Vec<(String, String)>,
}

/// State shared by every connection handler thread.
struct SvcShared {
    store: Store,
    cache: ResultCache,
    recorder: Recorder,
    admission: Arc<Mutex<Admission>>,
    config: SvcConfig,
    stop: AtomicBool,
    open_connections: AtomicUsize,
    job_server: Option<Arc<JobServer>>,
}

/// A routed response: status code, content type, body bytes.
struct Routed(u16, &'static str, String);

fn json_body(pairs: Vec<(String, Value)>) -> String {
    serde_json::to_string(&Value::Object(pairs)).expect("json render")
}

fn error_body(error: &str, detail: impl Into<String>) -> String {
    json_body(vec![
        ("error".to_string(), Value::Str(error.to_string())),
        ("detail".to_string(), Value::Str(detail.into())),
    ])
}

fn pair(key: &str, value: Value) -> (String, Value) {
    (key.to_string(), value)
}

/// A tenant name is constrained like a run id: short and filesystem/URL
/// safe, so it can be embedded in manifests and metrics labels verbatim.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.starts_with('.')
}

impl SvcShared {
    fn emit(&self, severity: Severity, event_kind: &str, detail: String, run: Option<&str>) {
        let mut event = Event::new(severity, "svc", event_kind).detail(detail);
        if let Some(run_id) = run {
            event = event.run(run_id);
        }
        self.recorder.emit(event);
    }

    /// Routes one parsed request. Never panics; every arm returns a
    /// complete response.
    fn route(&self, req: &Request) -> Routed {
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("GET", "/v1/metrics") => Routed(
                200,
                "text/plain; charset=utf-8",
                self.recorder.metrics().render_text(),
            ),
            ("POST", "/v1/runs") => self.handle_submit(req),
            (method, path) if path.starts_with("/v1/runs/") => {
                let rest = &path["/v1/runs/".len()..];
                match (
                    method,
                    rest.strip_suffix("/result"),
                    rest.strip_suffix("/cancel"),
                ) {
                    ("GET", Some(id), _) => self.handle_result(id),
                    ("POST", _, Some(id)) => self.handle_cancel(id),
                    ("GET", None, None) if !rest.contains('/') => self.handle_status(rest),
                    _ => Routed(
                        405,
                        "application/json",
                        error_body("method_not_allowed", format!("{method} {path}")),
                    ),
                }
            }
            (_, path) => Routed(
                404,
                "application/json",
                error_body("not_found", format!("no route for {path}")),
            ),
        }
    }

    /// `POST /v1/runs` — dedup, quota check, enqueue.
    fn handle_submit(&self, req: &Request) -> Routed {
        let tenant = req.header("x-ayb-tenant").unwrap_or("default").to_string();
        if !valid_tenant(&tenant) {
            return self.bad_request("invalid x-ayb-tenant header");
        }
        let body = match std::str::from_utf8(&req.body) {
            Ok(text) => text,
            Err(_) => return self.bad_request("body is not utf-8"),
        };
        let value: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return self.bad_request(format!("body is not json: {e}")),
        };
        let submission = match parse_submission(&value) {
            Ok(s) => s,
            Err(e) => return self.bad_request(e),
        };
        let Submission {
            seed,
            flow,
            optimizer,
            priority,
        } = submission;
        let digest = submission_digest(PROBLEM_ID, seed, &optimizer, &flow);

        let metrics = self.recorder.metrics();
        let mut admission = self.admission.lock().expect("admission lock");

        // Content-addressed dedup: an identical live submission returns the
        // canonical run instead of enqueueing a duplicate. A failed (or
        // cancelled) canonical run does not count — the resubmission
        // replaces it and executes fresh.
        if let Some(existing) = admission.dedup.get(&digest).cloned() {
            if let Ok(handle) = self.store.run(&existing) {
                if let Ok(status) = handle.status() {
                    if status != RunStatus::Failed {
                        let hits = handle
                            .manifest_extra("dedup_hits")
                            .ok()
                            .flatten()
                            .and_then(|v| match v {
                                Value::Int(n) => u64::try_from(n).ok(),
                                Value::UInt(n) => Some(n),
                                _ => None,
                            })
                            .unwrap_or(0)
                            + 1;
                        let _ = handle.merge_manifest_extras(&[(
                            "dedup_hits".to_string(),
                            (hits).to_value(),
                        )]);
                        metrics.inc("ayb_svc_dedup_hits_total");
                        drop(admission);
                        self.emit(
                            Severity::Debug,
                            kind::SVC_DEDUP_HIT,
                            format!("tenant={tenant} digest={}", digest_hex(digest)),
                            Some(&existing),
                        );
                        return Routed(
                            200,
                            "application/json",
                            json_body(vec![
                                pair("run_id", Value::Str(existing)),
                                pair("status", Value::Str(status.as_str().to_string())),
                                pair("deduped", Value::Bool(true)),
                                pair("digest", Value::Str(digest_hex(digest))),
                            ]),
                        );
                    }
                }
            }
            admission.dedup.remove(&digest);
        }

        // Persistent result cache: a digest completed in this server life
        // — or any previous one — answers with the finished run, consuming
        // neither queue slot nor quota. The entry outlives restarts and run
        // directory GC, so identical resubmissions never re-execute.
        let hex = digest_hex(digest);
        if let Ok(Some(entry)) = self.cache.lookup(&hex) {
            if matches!(self.cache.load_result(&hex), Ok(Some(_))) {
                let _ = self.cache.record_hit(&hex);
                if let Ok(handle) = self.store.run(&entry.run_id) {
                    let served = handle
                        .manifest_extra("served_from_cache")
                        .ok()
                        .flatten()
                        .and_then(|v| match v {
                            Value::Int(n) => u64::try_from(n).ok(),
                            Value::UInt(n) => Some(n),
                            _ => None,
                        })
                        .unwrap_or(0)
                        + 1;
                    let _ = handle.merge_manifest_extras(&[(
                        "served_from_cache".to_string(),
                        served.to_value(),
                    )]);
                }
                metrics.inc("ayb_svc_cache_hits_total");
                drop(admission);
                self.emit(
                    Severity::Debug,
                    kind::SVC_CACHE_HIT,
                    format!("tenant={tenant} digest={hex}"),
                    Some(&entry.run_id),
                );
                return Routed(
                    200,
                    "application/json",
                    json_body(vec![
                        pair("run_id", Value::Str(entry.run_id)),
                        pair("status", Value::Str("completed".to_string())),
                        pair("deduped", Value::Bool(true)),
                        pair("served_from_cache", Value::Bool(true)),
                        pair("digest", Value::Str(hex)),
                    ]),
                );
            }
            // An entry whose result vanished entirely (blob and run dir both
            // gone) is dead weight: drop it and execute fresh.
            let _ = self.cache.remove(&hex);
        }

        // Quota: reject before anything touches the store.
        let quota = self.config.quota_for(&tenant);
        let counts = admission.tenants.entry(tenant.clone()).or_default();
        if quota.max_queued > 0 && counts.queued >= quota.max_queued {
            metrics.inc("ayb_svc_quota_rejections_total");
            drop(admission);
            self.emit(
                Severity::Warn,
                kind::SVC_QUOTA_REJECTED,
                format!("tenant={tenant} max_queued={}", quota.max_queued),
                None,
            );
            return Routed(
                429,
                "application/json",
                json_body(vec![
                    pair("error", Value::Str("quota_exceeded".to_string())),
                    pair("tenant", Value::Str(tenant)),
                    pair("max_queued", (quota.max_queued as u64).to_value()),
                ]),
            );
        }

        let extras = vec![
            pair("tenant", Value::Str(tenant.clone())),
            pair("priority", Value::Str(priority.as_str().to_string())),
            pair("submission_digest", Value::Str(digest_hex(digest))),
            pair("dedup_hits", Value::Int(0)),
            pair("served_from_cache", Value::Int(0)),
        ];
        let handle = match self
            .store
            .enqueue_run_with_extras(seed, &optimizer, &flow, &extras)
        {
            Ok(handle) => handle,
            Err(e) => {
                drop(admission);
                return Routed(
                    500,
                    "application/json",
                    error_body("store_error", e.to_string()),
                );
            }
        };
        let run_id = handle.id().to_string();
        admission.dedup.insert(digest, run_id.clone());
        admission.run_tenants.insert(run_id.clone(), tenant.clone());
        admission.tenants.entry(tenant.clone()).or_default().queued += 1;
        metrics.inc("ayb_svc_submissions_total");
        drop(admission);
        self.emit(
            Severity::Info,
            kind::SVC_SUBMIT,
            format!("tenant={tenant} seed={seed} digest={}", digest_hex(digest)),
            Some(&run_id),
        );
        Routed(
            201,
            "application/json",
            json_body(vec![
                pair("run_id", Value::Str(run_id)),
                pair("status", Value::Str("queued".to_string())),
                pair("deduped", Value::Bool(false)),
                pair("digest", Value::Str(digest_hex(digest))),
            ]),
        )
    }

    /// `GET /v1/runs/{id}`.
    fn handle_status(&self, id: &str) -> Routed {
        let handle = match self.open_run(id) {
            Ok(handle) => handle,
            Err(routed) => {
                // A garbage-collected run whose result graduated to the
                // cache is still answerable — completion outlives the dir.
                if let Ok(Some(entry)) = self.cache.find_by_run(id) {
                    return Routed(
                        200,
                        "application/json",
                        json_body(vec![
                            pair("run_id", Value::Str(id.to_string())),
                            pair("status", Value::Str("completed".to_string())),
                            pair("submission_digest", Value::Str(entry.digest)),
                            pair("served_from_cache", Value::Bool(true)),
                        ]),
                    );
                }
                return routed;
            }
        };
        let status = match handle.status() {
            Ok(status) => status,
            Err(e) => {
                return Routed(
                    500,
                    "application/json",
                    error_body("store_error", e.to_string()),
                )
            }
        };
        let mut pairs = vec![
            pair("run_id", Value::Str(id.to_string())),
            pair("status", Value::Str(status.as_str().to_string())),
        ];
        for key in [
            "tenant",
            "priority",
            "submission_digest",
            "dedup_hits",
            "served_from_cache",
            "cancelled",
        ] {
            if let Ok(Some(value)) = handle.manifest_extra(key) {
                pairs.push(pair(key, value));
            }
        }
        Routed(200, "application/json", json_body(pairs))
    }

    /// `GET /v1/runs/{id}/result`.
    fn handle_result(&self, id: &str) -> Routed {
        let handle = match self.open_run(id) {
            Ok(handle) => handle,
            Err(routed) => {
                if let Some(cached) = self.cached_result_for_run(id) {
                    return cached;
                }
                return routed;
            }
        };
        match handle.status() {
            Ok(RunStatus::Completed) => {}
            Ok(status) => {
                return Routed(
                    409,
                    "application/json",
                    json_body(vec![
                        pair("error", Value::Str("not_completed".to_string())),
                        pair("status", Value::Str(status.as_str().to_string())),
                    ]),
                )
            }
            Err(e) => {
                return Routed(
                    500,
                    "application/json",
                    error_body("store_error", e.to_string()),
                )
            }
        }
        match handle.load_result::<Value>() {
            Ok(result) => Routed(
                200,
                "application/json",
                serde_json::to_string(&result).expect("result render"),
            ),
            Err(StoreError::NoResult(_)) => match self.cached_result_for_run(id) {
                Some(cached) => cached,
                None => Routed(
                    409,
                    "application/json",
                    error_body("not_completed", "result not yet on disk"),
                ),
            },
            Err(e) => Routed(
                500,
                "application/json",
                error_body("store_error", e.to_string()),
            ),
        }
    }

    /// The cached result blob for `run_id`, when the cache has one — the
    /// answer of record once the run directory (or its `result.json`) is
    /// garbage-collected.
    fn cached_result_for_run(&self, run_id: &str) -> Option<Routed> {
        let entry = self.cache.find_by_run(run_id).ok().flatten()?;
        let result = self.cache.load_result(&entry.digest).ok().flatten()?;
        Some(Routed(
            200,
            "application/json",
            serde_json::to_string(&result).expect("result render"),
        ))
    }

    /// `POST /v1/runs/{id}/cancel` — only still-queued runs are
    /// cancellable; dispatched or terminal runs answer 409.
    fn handle_cancel(&self, id: &str) -> Routed {
        let handle = match self.open_run(id) {
            Ok(handle) => handle,
            Err(routed) => return routed,
        };
        let status = match handle.status() {
            Ok(status) => status,
            Err(e) => {
                return Routed(
                    500,
                    "application/json",
                    error_body("store_error", e.to_string()),
                )
            }
        };
        let conflict = |status: RunStatus| {
            Routed(
                409,
                "application/json",
                json_body(vec![
                    pair("error", Value::Str("not_cancellable".to_string())),
                    pair("status", Value::Str(status.as_str().to_string())),
                ]),
            )
        };
        if status != RunStatus::Queued {
            return conflict(status);
        }
        // With an embedded job server, win the race against dispatch first:
        // `cancel_queued` removes the run from the in-memory queue (or marks
        // a not-yet-scanned id as seen) — once it returns `true`, no worker
        // will ever start this run. Called *before* taking the admission
        // lock (lock ordering: never hold admission while entering the job
        // server).
        let won = match &self.job_server {
            Some(server) => server.cancel_queued(id),
            None => true,
        };
        if !won {
            return conflict(RunStatus::Running);
        }
        if let Err(e) = handle.set_status(RunStatus::Failed) {
            return Routed(
                500,
                "application/json",
                error_body("store_error", e.to_string()),
            );
        }
        let _ = handle.merge_manifest_extras(&[pair("cancelled", Value::Bool(true))]);
        let digest = handle
            .manifest_extra("submission_digest")
            .ok()
            .flatten()
            .and_then(|v| match v {
                Value::Str(s) => parse_digest_hex(&s),
                _ => None,
            });
        {
            let mut admission = self.admission.lock().expect("admission lock");
            let tenant = admission
                .run_tenants
                .get(id)
                .cloned()
                .unwrap_or_else(|| "default".to_string());
            if let Some(counts) = admission.tenants.get_mut(&tenant) {
                counts.queued = counts.queued.saturating_sub(1);
            }
            if let Some(key) = digest {
                if admission.dedup.get(&key).map(String::as_str) == Some(id) {
                    admission.dedup.remove(&key);
                }
            }
        }
        self.recorder.metrics().inc("ayb_svc_cancellations_total");
        self.emit(Severity::Info, kind::SVC_CANCELLED, String::new(), Some(id));
        Routed(
            200,
            "application/json",
            json_body(vec![
                pair("run_id", Value::Str(id.to_string())),
                pair("status", Value::Str("failed".to_string())),
                pair("cancelled", Value::Bool(true)),
            ]),
        )
    }

    fn open_run(&self, id: &str) -> Result<ayb_store::RunHandle, Routed> {
        match self.store.run(id) {
            Ok(handle) => Ok(handle),
            Err(StoreError::RunNotFound(_)) | Err(StoreError::InvalidRunId(_)) => Err(Routed(
                404,
                "application/json",
                error_body("not_found", format!("no run `{id}`")),
            )),
            Err(e) => Err(Routed(
                500,
                "application/json",
                error_body("store_error", e.to_string()),
            )),
        }
    }

    fn bad_request(&self, detail: impl Into<String>) -> Routed {
        let detail = detail.into();
        self.recorder.metrics().inc("ayb_svc_bad_requests_total");
        self.emit(Severity::Warn, kind::SVC_BAD_REQUEST, detail.clone(), None);
        Routed(400, "application/json", error_body("bad_request", detail))
    }
}

/// A parsed, seed-normalised submission.
struct Submission {
    seed: u64,
    flow: FlowConfig,
    optimizer: OptimizerConfig,
    priority: Priority,
}

/// Parses a `POST /v1/runs` body. The seed is mandatory; scale, optimizer,
/// an explicit flow configuration, and priority are optional. The seed is
/// pushed into `ga.seed`, `monte_carlo.seed` and the optimizer *before* the
/// dedup digest is computed, so every spelling of the same run collapses to
/// one key (`FlowBuilder::with_seed` semantics).
fn parse_submission(value: &Value) -> Result<Submission, String> {
    if !matches!(value, Value::Object(_)) {
        return Err(format!(
            "expected a json object, found {}",
            value.type_name()
        ));
    }
    let seed = match value.get("seed") {
        Some(v) => u64::from_value(v).map_err(|e| format!("bad seed: {e}"))?,
        None => return Err("missing required field `seed`".to_string()),
    };
    let mut flow = match value.get("flow") {
        Some(v) => FlowConfig::from_value(v).map_err(|e| format!("bad flow config: {e}"))?,
        None => match value.get("scale") {
            None => FlowConfig::reduced(),
            Some(Value::Str(scale)) => match scale.as_str() {
                "reduced" => FlowConfig::reduced(),
                "demo" => FlowConfig::demo_scale(),
                "paper" => FlowConfig::paper_scale(),
                other => return Err(format!("unknown scale `{other}` (reduced|demo|paper)")),
            },
            Some(other) => {
                return Err(format!(
                    "bad scale: expected string, found {}",
                    other.type_name()
                ))
            }
        },
    };
    let optimizer_name = match value.get("optimizer") {
        None => "wbga".to_string(),
        Some(Value::Str(name)) => name.clone(),
        Some(other) => {
            return Err(format!(
                "bad optimizer: expected string, found {}",
                other.type_name()
            ))
        }
    };
    let mut optimizer = match optimizer_name.as_str() {
        "wbga" => OptimizerConfig::Wbga(flow.ga),
        "nsga2" => OptimizerConfig::Nsga2(flow.ga),
        "random" | "random_search" => OptimizerConfig::RandomSearch {
            budget: flow.ga.evaluation_budget(),
            seed: flow.ga.seed,
        },
        other => return Err(format!("unknown optimizer `{other}` (wbga|nsga2|random)")),
    };
    let priority = match value.get("priority") {
        None => Priority::Normal,
        Some(Value::Str(p)) => Priority::parse(p).map_err(|e| format!("bad priority: {e}"))?,
        Some(other) => {
            return Err(format!(
                "bad priority: expected string, found {}",
                other.type_name()
            ))
        }
    };
    flow.ga.seed = seed;
    flow.monte_carlo.seed = seed;
    optimizer = optimizer.with_seed(seed);
    Ok(Submission {
        seed,
        flow,
        optimizer,
        priority,
    })
}

/// The running service: HTTP listener, admission state, and (optionally)
/// an embedded job server. Shuts down on drop.
pub struct SvcServer {
    shared: Arc<SvcShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    job_thread: Option<JoinHandle<()>>,
    job_shutdown: Option<ShutdownHandle>,
}

impl SvcServer {
    /// Binds the listener, rebuilds the admission state from the store's
    /// manifests, and (with `workers > 0`) starts the embedded job server.
    ///
    /// # Errors
    ///
    /// Fails when the bind address is unusable or the store cannot be
    /// scanned.
    pub fn start(store: Store, config: SvcConfig) -> io::Result<SvcServer> {
        let recorder = Recorder::new();
        let cache = ResultCache::open(&store).map_err(io::Error::other)?;
        let admission = Arc::new(Mutex::new(
            rebuild_admission(&store, &cache).map_err(io::Error::other)?,
        ));
        recorder.metrics().set_gauge(
            "ayb_svc_result_cache_entries",
            cache.entries().map(|e| e.len()).unwrap_or(0) as f64,
        );

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (job_server, job_thread, job_shutdown) = if config.workers > 0 {
            let job_config = JobServerConfig {
                workers: config.workers,
                poll_interval: config.poll_interval,
                owner: config.owner.clone(),
                queue_policy: config.queue_policy(),
                ..JobServerConfig::default()
            };
            let server = Arc::new(JobServer::new_with_recorder(
                store.clone(),
                job_config,
                recorder.clone(),
            ));
            let hook_admission = Arc::clone(&admission);
            let hook_store = store.clone();
            let hook_cache = cache.clone();
            let hook_metrics = recorder.metrics().clone();
            server.set_event_hook(move |event| {
                let run_id = event.run_id().to_string();
                {
                    let mut admission = hook_admission.lock().expect("admission lock");
                    let tenant = admission
                        .run_tenants
                        .get(&run_id)
                        .cloned()
                        .unwrap_or_else(|| "default".to_string());
                    match event {
                        JobEvent::Started { .. } => {
                            let counts = admission.tenants.entry(tenant.clone()).or_default();
                            counts.queued = counts.queued.saturating_sub(1);
                            counts.running += 1;
                            admission.dispatch_log.push((tenant, run_id.clone()));
                        }
                        JobEvent::Completed { .. }
                        | JobEvent::Failed { .. }
                        | JobEvent::Interrupted { .. }
                        | JobEvent::Skipped { .. } => {
                            let counts = admission.tenants.entry(tenant).or_default();
                            counts.running = counts.running.saturating_sub(1);
                        }
                        _ => {}
                    }
                }
                // A completed run graduates from the live dedup index to the
                // persistent result cache: insert first, *then* drop the
                // dedup key, so a racing submission always finds the digest
                // in one of the two.
                if matches!(event, JobEvent::Completed { .. }) {
                    let Ok(handle) = hook_store.run(&run_id) else {
                        return;
                    };
                    let Ok(Some(Value::Str(hex))) = handle.manifest_extra("submission_digest")
                    else {
                        return;
                    };
                    if let Ok(result) = handle.load_result::<Value>() {
                        if hook_cache.insert(&hex, &run_id, &result).is_ok() {
                            if let Ok(entries) = hook_cache.entries() {
                                hook_metrics.set_gauge(
                                    "ayb_svc_result_cache_entries",
                                    entries.len() as f64,
                                );
                            }
                        }
                    }
                    if let Some(key) = parse_digest_hex(&hex) {
                        let mut admission = hook_admission.lock().expect("admission lock");
                        if admission.dedup.get(&key).map(String::as_str) == Some(run_id.as_str()) {
                            admission.dedup.remove(&key);
                        }
                    }
                }
            });
            let shutdown = server.shutdown_handle();
            let run_server = Arc::clone(&server);
            let run_recorder = recorder.clone();
            let thread = thread::Builder::new()
                .name("ayb-svc-jobs".to_string())
                .spawn(move || {
                    if let Err(e) = run_server.run() {
                        run_recorder.emit(
                            Event::new(Severity::Error, "svc", "svc_job_server_failed")
                                .detail(e.to_string()),
                        );
                    }
                })?;
            (Some(server), Some(thread), Some(shutdown))
        } else {
            (None, None, None)
        };

        let shared = Arc::new(SvcShared {
            store,
            cache,
            recorder,
            admission,
            config,
            stop: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            job_server,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("ayb-svc-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, &listener))?;

        Ok(SvcServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            job_thread,
            job_shutdown,
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service's base URL (`http://host:port`).
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The telemetry recorder shared by the HTTP plane and the embedded job
    /// server.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// The persistent result cache the admission plane consults.
    pub fn result_cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The live `(queued, running)` admission counters for `tenant` —
    /// what the quota checks see. Restart tests assert the rebuilt ledger
    /// through this.
    pub fn admission_counts(&self, tenant: &str) -> (usize, usize) {
        let admission = self.shared.admission.lock().expect("admission lock");
        admission
            .tenants
            .get(tenant)
            .map(|c| (c.queued, c.running))
            .unwrap_or((0, 0))
    }

    /// `(tenant, run_id)` pairs in worker-dispatch order — the observable
    /// the fairness tests assert the weighted round-robin bound on.
    pub fn dispatch_log(&self) -> Vec<(String, String)> {
        self.shared
            .admission
            .lock()
            .expect("admission lock")
            .dispatch_log
            .clone()
    }

    /// Stops the HTTP listener and the embedded job server (idempotent).
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        if let Some(handle) = self.job_shutdown.take() {
            handle.shutdown();
        }
        if let Some(thread) = self.job_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SvcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rebuilds the dedup index and tenant counters from the manifests on disk,
/// so a restarted service keeps deduplicating against (and counting) runs
/// admitted by a previous life.
///
/// Live (non-terminal) digests go back into the dedup index; completed
/// digests are backfilled into the persistent result cache instead, so
/// resubmissions are answered from the cache even for runs completed by an
/// external `ayb serve` fleet (or before the cache existed). Quota is
/// rebuilt only from runs that still hold it: queued manifests, and running
/// manifests whose claim holder is demonstrably alive — a `Running` corpse
/// left by a killed server must not consume a tenant's slots forever.
fn rebuild_admission(store: &Store, cache: &ResultCache) -> Result<Admission, StoreError> {
    let mut admission = Admission::default();
    for id in store.run_ids()? {
        let Ok(handle) = store.run(&id) else { continue };
        let Ok(status) = handle.status() else {
            continue;
        };
        let tenant = match handle.manifest_extra("tenant") {
            Ok(Some(Value::Str(t))) => t,
            _ => "default".to_string(),
        };
        if let Ok(Some(Value::Str(hex))) = handle.manifest_extra("submission_digest") {
            match status {
                RunStatus::Completed => {
                    if matches!(cache.lookup(&hex), Ok(None)) {
                        if let Ok(result) = handle.load_result::<Value>() {
                            let _ = cache.insert(&hex, &id, &result);
                        }
                    }
                }
                RunStatus::Failed => {}
                _ => {
                    if let Some(key) = parse_digest_hex(&hex) {
                        admission.dedup.insert(key, id.clone());
                    }
                }
            }
        }
        match status {
            RunStatus::Queued => {
                admission.tenants.entry(tenant.clone()).or_default().queued += 1;
            }
            RunStatus::Running => {
                let holder_alive = matches!(
                    handle.claim_health(CLAIM_ALIVE_MAX_HEARTBEAT_AGE),
                    Ok(Some((_, ClaimHealth::Alive | ClaimHealth::Hung)))
                );
                if holder_alive {
                    admission.tenants.entry(tenant.clone()).or_default().running += 1;
                }
            }
            _ => {}
        }
        admission.run_tenants.insert(id, tenant);
    }
    Ok(admission)
}

/// Polls the non-blocking listener, enforcing the connection cap, until the
/// stop flag is raised.
fn accept_loop(shared: &Arc<SvcShared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let open = shared.open_connections.load(Ordering::SeqCst);
                if open >= shared.config.max_connections {
                    // Reject instantly instead of queueing: an overloaded
                    // service must stay observable, and a bounded pool is
                    // what keeps `/v1/metrics` answering during a flood.
                    shared
                        .recorder
                        .metrics()
                        .inc("ayb_svc_overload_rejections_total");
                    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                    let _ = http::write_json(
                        &mut stream,
                        503,
                        &error_body("overloaded", "connection limit reached"),
                    );
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("ayb-svc-conn".to_string())
                    .spawn(move || {
                        handle_connection(&conn_shared, stream);
                        conn_shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves one keep-alive connection until EOF, error, or shutdown. A
/// protocol violation answers 400/413 and closes; it never takes the
/// listener down with it.
fn handle_connection(shared: &Arc<SvcShared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let metrics = shared.recorder.metrics().clone();
    metrics.set_gauge(
        "ayb_svc_open_connections",
        shared.open_connections.load(Ordering::SeqCst) as f64,
    );
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let started = Instant::now();
                let close = req.wants_close();
                let Routed(status, content_type, body) = shared.route(&req);
                metrics.inc("ayb_svc_requests_total");
                metrics.inc(&format!("ayb_svc_responses_{status}_total"));
                metrics.observe("ayb_svc_request_seconds", started.elapsed().as_secs_f64());
                if http::write_response(&mut writer, status, content_type, body.as_bytes()).is_err()
                {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(HttpError::Malformed(detail)) => {
                metrics.inc("ayb_svc_requests_total");
                metrics.inc("ayb_svc_responses_400_total");
                shared.emit(Severity::Warn, kind::SVC_BAD_REQUEST, detail, None);
                let _ = http::write_json(
                    &mut writer,
                    400,
                    &error_body("bad_request", "malformed http"),
                );
                return;
            }
            Err(HttpError::TooLarge(detail)) => {
                metrics.inc("ayb_svc_requests_total");
                metrics.inc("ayb_svc_responses_413_total");
                shared.emit(Severity::Warn, kind::SVC_BAD_REQUEST, detail, None);
                let _ = http::write_json(
                    &mut writer,
                    413,
                    &error_body("too_large", "message exceeds limits"),
                );
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SvcClient;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    /// Fresh store directory per test (removed on drop).
    struct TempStore {
        root: PathBuf,
    }

    impl TempStore {
        fn new(label: &str) -> TempStore {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let root = std::env::temp_dir().join(format!(
                "ayb-svc-{label}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::SeqCst)
            ));
            TempStore { root }
        }

        fn open(&self) -> Store {
            Store::open(&self.root).expect("open store")
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    /// Admission-only server (no workers): deterministic scheduler-state
    /// tests without any flow execution.
    fn admission_server(temp: &TempStore, config: SvcConfig) -> SvcServer {
        SvcServer::start(
            temp.open(),
            SvcConfig {
                workers: 0,
                ..config
            },
        )
        .expect("start service")
    }

    fn str_field(value: &Value, key: &str) -> String {
        match value.get(key) {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("expected string `{key}`, found {other:?}"),
        }
    }

    #[test]
    fn quota_rejects_with_429_and_cancel_frees_the_slot() {
        let temp = TempStore::new("quota");
        let mut server = admission_server(
            &temp,
            SvcConfig {
                default_quota: TenantQuota {
                    max_queued: 2,
                    max_running: 0,
                },
                ..SvcConfig::default()
            },
        );
        let flood = SvcClient::new(&server.url()).unwrap().with_tenant("flood");

        let (status, first) = flood.submit_seed(1, "reduced").unwrap();
        assert_eq!(status, 201);
        let (status, _) = flood.submit_seed(2, "reduced").unwrap();
        assert_eq!(status, 201);
        // Third distinct submission: over max_queued → structured 429.
        let (status, body) = flood.submit_seed(3, "reduced").unwrap();
        assert_eq!(status, 429);
        assert_eq!(str_field(&body, "error"), "quota_exceeded");
        assert_eq!(str_field(&body, "tenant"), "flood");
        // Quotas are per tenant: another tenant still gets in.
        let other = SvcClient::new(&server.url()).unwrap().with_tenant("calm");
        let (status, _) = other.submit_seed(3, "reduced").unwrap();
        assert_eq!(status, 201);

        // Cancelling a queued run frees its quota slot…
        let first_id = str_field(&first, "run_id");
        let (status, body) = flood.cancel(&first_id).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("cancelled"), Some(&Value::Bool(true)));
        let (status, _) = flood.submit_seed(4, "reduced").unwrap();
        assert_eq!(status, 201, "cancel must free the quota slot");

        // …and a second cancel of the same run is a 409, not a double-free.
        let (status, _) = flood.cancel(&first_id).unwrap();
        assert_eq!(status, 409);

        let metrics = flood.metrics_text().unwrap();
        assert!(metrics.contains("ayb_svc_quota_rejections_total"));
        server.shutdown();
    }

    #[test]
    fn identical_submissions_dedup_to_one_run_and_cancel_forgets_the_key() {
        let temp = TempStore::new("dedup");
        let mut server = admission_server(&temp, SvcConfig::default());
        let client = SvcClient::new(&server.url()).unwrap().with_tenant("t0");

        let (status, first) = client.submit_seed(7, "reduced").unwrap();
        assert_eq!(status, 201);
        assert_eq!(first.get("deduped"), Some(&Value::Bool(false)));
        let run_id = str_field(&first, "run_id");

        // Same submission → 200, same run, hit counted in the manifest.
        let (status, second) = client.submit_seed(7, "reduced").unwrap();
        assert_eq!(status, 200);
        assert_eq!(second.get("deduped"), Some(&Value::Bool(true)));
        assert_eq!(str_field(&second, "run_id"), run_id);
        assert_eq!(str_field(&second, "digest"), str_field(&first, "digest"));

        // Dedup crosses tenants (the run is content-addressed, not
        // tenant-scoped) and spellings: an explicit optimizer/priority-free
        // body with the same seed+scale is the same key.
        let other = SvcClient::new(&server.url()).unwrap().with_tenant("t1");
        let (status, third) = other
            .submit_raw("{\"scale\": \"reduced\", \"seed\": 7}")
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(str_field(&third, "run_id"), run_id);

        let (status, info) = client.run_status(&run_id).unwrap();
        assert_eq!(status, 200);
        assert_eq!(info.get("dedup_hits"), Some(&Value::Int(2)));
        assert_eq!(str_field(&info, "tenant"), "t0");

        // A different seed is a different run.
        let (status, fresh) = client.submit_seed(8, "reduced").unwrap();
        assert_eq!(status, 201);
        assert_ne!(str_field(&fresh, "run_id"), run_id);

        // Cancelling the canonical run forgets the dedup key: the next
        // identical submission executes fresh instead of returning a
        // cancelled corpse.
        let (status, _) = client.cancel(&run_id).unwrap();
        assert_eq!(status, 200);
        let (status, revived) = client.submit_seed(7, "reduced").unwrap();
        assert_eq!(status, 201);
        assert_ne!(str_field(&revived, "run_id"), run_id);
        server.shutdown();
    }

    #[test]
    fn dedup_index_survives_a_service_restart() {
        let temp = TempStore::new("restart");
        let run_id = {
            let mut server = admission_server(&temp, SvcConfig::default());
            let client = SvcClient::new(&server.url()).unwrap();
            let (status, body) = client.submit_seed(11, "reduced").unwrap();
            assert_eq!(status, 201);
            server.shutdown();
            str_field(&body, "run_id")
        };
        let mut server = admission_server(&temp, SvcConfig::default());
        let client = SvcClient::new(&server.url()).unwrap();
        let (status, body) = client.submit_seed(11, "reduced").unwrap();
        assert_eq!(status, 200, "restart must rebuild the dedup index");
        assert_eq!(str_field(&body, "run_id"), run_id);
        // The rebuilt quota ledger still counts the queued run.
        let (status, _) = client.submit_seed(12, "reduced").unwrap();
        assert_eq!(status, 201);
        server.shutdown();
    }

    #[test]
    fn resubmission_after_restart_is_served_from_the_persistent_cache() {
        let temp = TempStore::new("cache");
        // Life 1: admit a run, then stop — the in-memory dedup index dies
        // with the server.
        let run_id = {
            let mut server = admission_server(&temp, SvcConfig::default());
            let client = SvcClient::new(&server.url()).unwrap();
            let (status, body) = client.submit_seed(21, "reduced").unwrap();
            assert_eq!(status, 201);
            server.shutdown();
            str_field(&body, "run_id")
        };
        // Complete it out-of-band, the way an external `ayb serve` fleet
        // sharing the store would.
        let store = temp.open();
        let result: Value = serde_json::from_str("{\"answer\": 42}").unwrap();
        {
            let handle = store.run(&run_id).unwrap();
            handle.save_result(&result).unwrap();
            handle.set_status(RunStatus::Completed).unwrap();
        }
        let dirs_before = store.run_ids().unwrap().len();

        // Life 2: empty dedup index — the persistent cache must answer,
        // without creating any run directory.
        {
            let mut server = admission_server(&temp, SvcConfig::default());
            let client = SvcClient::new(&server.url()).unwrap();
            let (status, body) = client.submit_seed(21, "reduced").unwrap();
            assert_eq!(status, 200, "completed digest must hit the cache");
            assert_eq!(body.get("served_from_cache"), Some(&Value::Bool(true)));
            assert_eq!(body.get("deduped"), Some(&Value::Bool(true)));
            assert_eq!(str_field(&body, "run_id"), run_id);
            assert_eq!(
                store.run_ids().unwrap().len(),
                dirs_before,
                "a cache hit must not enqueue anything"
            );
            // The hit is counted in the manifest, dedup_hits-style.
            let (status, info) = client.run_status(&run_id).unwrap();
            assert_eq!(status, 200);
            assert_eq!(info.get("served_from_cache"), Some(&Value::Int(1)));
            // And the result endpoint serves the stored result.
            let (status, body) = client.run_result(&run_id).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, result);
            let metrics = client.metrics_text().unwrap();
            assert!(metrics.contains("ayb_svc_cache_hits_total"));
            server.shutdown();
        }

        // Life 3: the run directory itself is garbage-collected. The cache
        // blob keeps every endpoint answering.
        std::fs::remove_dir_all(store.root().join("runs").join(&run_id)).unwrap();
        let mut server = admission_server(&temp, SvcConfig::default());
        let client = SvcClient::new(&server.url()).unwrap();
        let (status, body) = client.submit_seed(21, "reduced").unwrap();
        assert_eq!(status, 200, "cache must outlive the run directory");
        assert_eq!(body.get("served_from_cache"), Some(&Value::Bool(true)));
        let (status, info) = client.run_status(&run_id).unwrap();
        assert_eq!(status, 200);
        assert_eq!(str_field(&info, "status"), "completed");
        let (status, body) = client.run_result(&run_id).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, result);
        server.shutdown();
    }

    #[test]
    fn rebuild_releases_quota_of_dead_running_and_interrupted_runs() {
        let temp = TempStore::new("deadquota");
        let config = SvcConfig {
            default_quota: TenantQuota {
                max_queued: 3,
                max_running: 0,
            },
            ..SvcConfig::default()
        };
        // Life 1: three distinct runs admitted for one tenant.
        let ids: Vec<String> = {
            let mut server = admission_server(&temp, config.clone());
            let client = SvcClient::new(&server.url()).unwrap().with_tenant("t");
            let ids = [31, 32, 33]
                .iter()
                .map(|seed| {
                    let (status, body) = client.submit_seed(*seed, "reduced").unwrap();
                    assert_eq!(status, 201);
                    str_field(&body, "run_id")
                })
                .collect();
            server.shutdown();
            ids
        };
        // Rewrite their fates behind the server's back: one Running corpse
        // with no claim (its server was SIGKILLed), one Interrupted, one
        // Running legitimately claimed by a live process (this one).
        let store = temp.open();
        store
            .run(&ids[0])
            .unwrap()
            .set_status(RunStatus::Running)
            .unwrap();
        store
            .run(&ids[1])
            .unwrap()
            .set_status(RunStatus::Interrupted)
            .unwrap();
        let live = store.run(&ids[2]).unwrap();
        live.set_status(RunStatus::Running).unwrap();
        let _claim = live.try_claim("live-holder").unwrap();

        // Life 2: the rebuilt ledger counts only runs that still hold
        // their slot — the corpse and the interrupted run release quota,
        // the legitimately claimed run keeps its running slot.
        let mut server = admission_server(&temp, config);
        assert_eq!(server.admission_counts("t"), (0, 1));
        let client = SvcClient::new(&server.url()).unwrap().with_tenant("t");
        // All three queued slots are free again.
        for seed in [34, 35, 36] {
            let (status, _) = client.submit_seed(seed, "reduced").unwrap();
            assert_eq!(status, 201, "released quota must admit seed {seed}");
        }
        // The interrupted run stays dedup-addressable (it is resumable) …
        let (status, body) = client.submit_seed(32, "reduced").unwrap();
        assert_eq!(status, 200);
        assert_eq!(str_field(&body, "run_id"), ids[1]);
        // … and never re-executes as a duplicate.
        assert_eq!(body.get("deduped"), Some(&Value::Bool(true)));
        server.shutdown();
    }

    #[test]
    fn http_status_mapping_is_distinct_per_failure() {
        let temp = TempStore::new("statuses");
        let mut server = admission_server(&temp, SvcConfig::default());
        let client = SvcClient::new(&server.url()).unwrap();

        // 404: unknown run, for status, result and cancel alike.
        for (status, _) in [
            client.run_status("run-9999").unwrap(),
            client.run_result("run-9999").unwrap(),
            client.cancel("run-9999").unwrap(),
        ] {
            assert_eq!(status, 404);
        }
        // 400: bodies that are not a valid submission.
        for body in [
            "",
            "not json",
            "{}",
            "{\"seed\": -1}",
            "{\"seed\": 1, \"scale\": \"galactic\"}",
            "{\"seed\": 1, \"optimizer\": \"sgd\"}",
            "{\"seed\": 1, \"priority\": \"urgent\"}",
        ] {
            let (status, _) = client.submit_raw(body).unwrap();
            assert_eq!(status, 400, "body {body:?} must be a 400");
        }
        // 409: result of a run that has not completed.
        let (_, submitted) = client.submit_seed(1, "reduced").unwrap();
        let run_id = str_field(&submitted, "run_id");
        let (status, body) = client.run_result(&run_id).unwrap();
        assert_eq!(status, 409);
        assert_eq!(str_field(&body, "error"), "not_completed");
        // 405: known resource, wrong method.
        let (status, _) = client
            .request("POST", &format!("/v1/runs/{run_id}"), None)
            .unwrap();
        assert_eq!(status, 405);
        // 404: unknown route.
        let (status, _) = client.request("GET", "/v2/nope", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }
}
