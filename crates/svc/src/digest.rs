//! Content-addressed submission digests.
//!
//! Two submissions that would execute the *same run* must map to the same
//! digest, so the service can return the already-running (or completed) run
//! instead of burning a worker on a duplicate. The dedup key is defined as
//! the FNV-1a 64 hash of the **canonical JSON** of:
//!
//! ```text
//! { "flow": <FlowConfig>, "optimizer": <OptimizerConfig>,
//!   "problem": <problem id>, "seed": <seed> }
//! ```
//!
//! where canonical JSON sorts every object's keys recursively and uses the
//! vendored `serde_json`'s compact rendering (shortest-round-trip floats, so
//! the text is bit-stable). Hashing the *whole serialized value* rather than
//! a hand-picked field list means a future `FlowConfig` field is covered
//! automatically — and the field-inventory tests below fail loudly if the
//! serialized shape changes, forcing this module's documentation (and the
//! dedup-compatibility story) to be revisited.
//!
//! The digest is computed **after** seed normalisation (the submitted seed
//! is pushed into `ga.seed`, `monte_carlo.seed`, and the optimizer — same
//! semantics as `FlowBuilder::with_seed`), so `{"seed": 7}` and a full flow
//! spelling of the same run collapse to one key.

use serde::{Serialize, Value};

/// Returns a copy of `value` with every object's keys sorted recursively.
///
/// The vendored `serde::Value::Object` is an *ordered* list of pairs, so two
/// semantically identical objects can differ in pair order; canonicalisation
/// erases that difference before hashing.
pub fn canonical_value(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonical_value).collect()),
        Value::Object(pairs) => {
            let mut sorted: Vec<(String, Value)> = pairs
                .iter()
                .map(|(k, v)| (k.clone(), canonical_value(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// Renders a value's canonical JSON text (sorted keys, compact).
pub fn canonical_json(value: &Value) -> String {
    serde_json::to_string(&canonical_value(value)).expect("canonical json render")
}

/// FNV-1a 64 over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Computes the dedup digest from already-serialized config values.
///
/// This is the layer the stability tests drive: it accepts raw [`Value`]s so
/// a test can mutate individual fields without constructing impossible typed
/// configs.
pub fn submission_digest_value(problem: &str, seed: u64, optimizer: &Value, flow: &Value) -> u64 {
    let envelope = Value::Object(vec![
        ("flow".to_string(), flow.clone()),
        ("optimizer".to_string(), optimizer.clone()),
        ("problem".to_string(), Value::Str(problem.to_string())),
        ("seed".to_string(), seed.to_value()),
    ]);
    fnv1a64(canonical_json(&envelope).as_bytes())
}

/// Computes the dedup digest of a typed submission.
pub fn submission_digest<O: Serialize, F: Serialize>(
    problem: &str,
    seed: u64,
    optimizer: &O,
    flow: &F,
) -> u64 {
    submission_digest_value(problem, seed, &optimizer.to_value(), &flow.to_value())
}

/// Renders a digest as the fixed-width hex string stored in run manifests.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses a manifest's hex digest back to the integer key.
pub fn parse_digest_hex(text: &str) -> Option<u64> {
    (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok())?
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_core::FlowConfig;
    use ayb_moo::{GaConfig, OptimizerConfig};

    /// The problem id every current submission uses (one testbench today;
    /// the field exists so a second problem cannot collide with the first).
    const PROBLEM: &str = "ota";

    fn baseline() -> (FlowConfig, OptimizerConfig, u64) {
        let mut flow = FlowConfig::reduced();
        flow.ga.seed = 42;
        flow.monte_carlo.seed = 42;
        let optimizer = OptimizerConfig::Wbga(flow.ga).with_seed(42);
        let digest = submission_digest(PROBLEM, 42, &optimizer, &flow);
        (flow, optimizer, digest)
    }

    /// Recursively reverses object pair order — a worst-case reordering.
    fn reversed(value: &Value) -> Value {
        match value {
            Value::Array(items) => Value::Array(items.iter().map(reversed).collect()),
            Value::Object(pairs) => Value::Object(
                pairs
                    .iter()
                    .rev()
                    .map(|(k, v)| (k.clone(), reversed(v)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    #[test]
    fn digest_is_invariant_under_field_reordering() {
        let (flow, optimizer, digest) = baseline();
        let shuffled_flow = reversed(&flow.to_value());
        let shuffled_opt = reversed(&optimizer.to_value());
        assert_eq!(
            submission_digest_value(PROBLEM, 42, &shuffled_opt, &shuffled_flow),
            digest
        );
    }

    #[test]
    fn digest_is_invariant_under_a_json_round_trip() {
        let (flow, optimizer, digest) = baseline();
        let flow_rt: Value = serde_json::from_str(&serde_json::to_string(&flow).unwrap()).unwrap();
        let opt_rt: Value =
            serde_json::from_str(&serde_json::to_string(&optimizer).unwrap()).unwrap();
        assert_eq!(
            submission_digest_value(PROBLEM, 42, &opt_rt, &flow_rt),
            digest
        );
    }

    #[test]
    fn digest_changes_for_every_flow_config_field() {
        // Table-driven over the *actual* serialized keys: a FlowConfig field
        // added in a future PR is automatically included, so forgetting to
        // think about its dedup impact fails this test, not production.
        let (flow, optimizer, digest) = baseline();
        let Value::Object(pairs) = flow.to_value() else {
            panic!("FlowConfig must serialize as an object");
        };
        let opt_value = optimizer.to_value();
        assert!(!pairs.is_empty());
        for (index, (key, _)) in pairs.iter().enumerate() {
            let mut mutated = pairs.clone();
            mutated[index].1 = Value::Str("__mutated__".to_string());
            let mutated_digest =
                submission_digest_value(PROBLEM, 42, &opt_value, &Value::Object(mutated));
            assert_ne!(
                mutated_digest, digest,
                "mutating flow field `{key}` did not change the digest — \
                 the field is not covered by the dedup key"
            );
        }
    }

    #[test]
    fn digest_changes_for_every_ga_config_field() {
        let (flow, optimizer, digest) = baseline();
        let Value::Object(flow_pairs) = flow.to_value() else {
            panic!("FlowConfig must serialize as an object");
        };
        let ga_index = flow_pairs.iter().position(|(k, _)| k == "ga").unwrap();
        let Value::Object(ga_pairs) = flow_pairs[ga_index].1.clone() else {
            panic!("GaConfig must serialize as an object");
        };
        for (index, (key, _)) in ga_pairs.iter().enumerate() {
            let mut mutated_ga = ga_pairs.clone();
            mutated_ga[index].1 = Value::Str("__mutated__".to_string());
            let mut mutated_flow = flow_pairs.clone();
            mutated_flow[ga_index].1 = Value::Object(mutated_ga);
            let mutated_digest = submission_digest_value(
                PROBLEM,
                42,
                &optimizer.to_value(),
                &Value::Object(mutated_flow),
            );
            assert_ne!(
                mutated_digest, digest,
                "mutating ga field `{key}` did not change the digest"
            );
        }
    }

    #[test]
    fn flow_config_field_inventory_is_what_this_module_documents() {
        // If this fails, a FlowConfig field was added/renamed: check that the
        // dedup key still means "same run", then update this inventory.
        let Value::Object(pairs) = FlowConfig::reduced().to_value() else {
            panic!("FlowConfig must serialize as an object");
        };
        let mut keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![
                "eval_cache",
                "ga",
                "max_pareto_points",
                "monte_carlo",
                "shard_size",
                "sharded",
                "sigma_level",
                "solver",
                "sweep",
                "testbench",
                "threads",
                "transport",
                "variation",
                "variation_batch",
            ]
        );
    }

    #[test]
    fn ga_config_field_inventory_is_stable() {
        let Value::Object(pairs) = GaConfig::small_test().to_value() else {
            panic!("GaConfig must serialize as an object");
        };
        let mut keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![
                "crossover_rate",
                "early_stop",
                "elitism",
                "generations",
                "mutation_rate",
                "mutation_sigma",
                "population_size",
                "seed",
                "tournament_size",
            ]
        );
    }

    #[test]
    fn digest_changes_with_seed_problem_and_optimizer_variant() {
        let (flow, optimizer, digest) = baseline();
        assert_ne!(submission_digest(PROBLEM, 43, &optimizer, &flow), digest);
        assert_ne!(submission_digest("ota2", 42, &optimizer, &flow), digest);
        let nsga2 = OptimizerConfig::Nsga2(flow.ga).with_seed(42);
        assert_ne!(submission_digest(PROBLEM, 42, &nsga2, &flow), digest);
        let random = OptimizerConfig::RandomSearch {
            budget: 64,
            seed: 42,
        };
        assert_ne!(submission_digest(PROBLEM, 42, &random, &flow), digest);
    }

    #[test]
    fn hex_form_round_trips() {
        let (_, _, digest) = baseline();
        assert_eq!(parse_digest_hex(&digest_hex(digest)), Some(digest));
        assert_eq!(parse_digest_hex("nope"), None);
        assert_eq!(parse_digest_hex(""), None);
    }
}
