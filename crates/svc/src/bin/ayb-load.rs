//! `ayb-load` — load generator for the `ayb serve-http` service plane.
//!
//! Spawns `--clients` threads spread round-robin across `--tenants`
//! synthetic tenants; each client issues `--requests` submissions drawn
//! from a `--seeds`-sized seed pool (smaller pool → higher duplicate rate →
//! more dedup hits) and polls the status of every run it created. Reports a
//! schema-versioned JSON document (latency quantiles, status counts, dedup
//! hits, throughput) to `--out` and a one-line summary to stdout.
//!
//! CI runs it with `--require-dedup --fail-on-5xx`, turning the burst into
//! a self-asserting smoke test.
//!
//! ```text
//! ayb-load --url http://127.0.0.1:4780 \
//!          --tenants 2 --clients 8 --requests 10 --seeds 5 \
//!          --scale reduced --out LOAD.json
//! ```

use ayb_obs::{Histogram, LATENCY_BUCKETS_SECONDS};
use ayb_svc::SvcClient;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

/// Version of the report document; bump on breaking shape changes.
const SCHEMA_VERSION: u64 = 1;

struct LoadArgs {
    url: String,
    tenants: usize,
    clients: usize,
    requests: usize,
    seeds: u64,
    scale: String,
    priority: Option<String>,
    out: Option<String>,
    quiet: bool,
    require_dedup: bool,
    fail_on_5xx: bool,
}

fn parse_args(args: &[String]) -> Result<LoadArgs, String> {
    let mut parsed = LoadArgs {
        url: String::new(),
        tenants: 2,
        clients: 8,
        requests: 10,
        seeds: 5,
        scale: "reduced".to_string(),
        priority: None,
        out: None,
        quiet: false,
        require_dedup: false,
        fail_on_5xx: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--url" => parsed.url = value_of("--url")?,
            "--tenants" => {
                parsed.tenants = value_of("--tenants")?
                    .parse()
                    .map_err(|e| format!("bad --tenants: {e}"))?
            }
            "--clients" => {
                parsed.clients = value_of("--clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?
            }
            "--requests" => {
                parsed.requests = value_of("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seeds" => {
                parsed.seeds = value_of("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--scale" => parsed.scale = value_of("--scale")?,
            "--priority" => parsed.priority = Some(value_of("--priority")?),
            "--out" => parsed.out = Some(value_of("--out")?),
            "--quiet" => parsed.quiet = true,
            "--require-dedup" => parsed.require_dedup = true,
            "--fail-on-5xx" => parsed.fail_on_5xx = true,
            "--help" | "-h" => {
                println!(
                    "usage: ayb-load --url URL [--tenants N] [--clients N] [--requests N] \
                     [--seeds N] [--scale reduced|demo|paper] [--priority high|normal|low] \
                     [--out FILE] [--quiet] [--require-dedup] [--fail-on-5xx]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if parsed.url.is_empty() {
        return Err("--url is required".to_string());
    }
    if parsed.tenants == 0 || parsed.clients == 0 || parsed.requests == 0 || parsed.seeds == 0 {
        return Err("--tenants/--clients/--requests/--seeds must be positive".to_string());
    }
    Ok(parsed)
}

/// Everything one client thread observed, merged into totals at the end.
#[derive(Default)]
struct ClientStats {
    by_status: BTreeMap<u16, u64>,
    dedup_hits: u64,
    transport_errors: u64,
    latencies: Vec<f64>,
}

fn run_client(args: &LoadArgs, client_index: usize) -> ClientStats {
    let tenant = format!("tenant-{}", client_index % args.tenants);
    let client = match SvcClient::new(&args.url) {
        Ok(c) => c.with_tenant(&tenant),
        Err(_) => return ClientStats::default(),
    };
    let mut stats = ClientStats::default();
    let mut my_runs: Vec<String> = Vec::new();
    for request in 0..args.requests {
        // Deterministic seed schedule: client and request index walk the
        // pool, so every invocation of ayb-load with the same flags hits
        // the same duplicate pattern.
        let seed = ((client_index + request) as u64 % args.seeds) + 1;
        let body = match &args.priority {
            Some(priority) => format!(
                "{{\"seed\": {seed}, \"scale\": \"{}\", \"priority\": \"{priority}\"}}",
                args.scale
            ),
            None => format!("{{\"seed\": {seed}, \"scale\": \"{}\"}}", args.scale),
        };
        let started = Instant::now();
        match client.submit_raw(&body) {
            Ok((status, value)) => {
                stats.latencies.push(started.elapsed().as_secs_f64());
                *stats.by_status.entry(status).or_default() += 1;
                if let Some(Value::Bool(true)) = value.get("deduped") {
                    stats.dedup_hits += 1;
                }
                if let Some(Value::Str(run_id)) = value.get("run_id") {
                    my_runs.push(run_id.clone());
                }
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    // Status poll for every run this client touched — the read side of the
    // mix, exercising keep-alive-free GETs under the same load.
    for run_id in &my_runs {
        let started = Instant::now();
        match client.run_status(run_id) {
            Ok((status, _)) => {
                stats.latencies.push(started.elapsed().as_secs_f64());
                *stats.by_status.entry(status).or_default() += 1;
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

fn quantile_ms(histogram: Option<&Histogram>, q: f64) -> f64 {
    histogram
        .and_then(|h| h.quantile(q))
        .map(|seconds| seconds * 1e3)
        .unwrap_or(0.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ayb-load: {e}");
            return ExitCode::FAILURE;
        }
    };

    let started = Instant::now();
    let merged = Mutex::new(Vec::<ClientStats>::new());
    std::thread::scope(|scope| {
        for client_index in 0..args.clients {
            let args = &args;
            let merged = &merged;
            scope.spawn(move || {
                let stats = run_client(args, client_index);
                merged.lock().expect("stats lock").push(stats);
            });
        }
    });
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);

    let mut by_status: BTreeMap<u16, u64> = BTreeMap::new();
    let mut dedup_hits = 0u64;
    let mut transport_errors = 0u64;
    let mut histogram = Histogram::with_bounds(LATENCY_BUCKETS_SECONDS);
    let mut max_latency = 0.0f64;
    for stats in merged.into_inner().expect("stats lock") {
        for (status, count) in stats.by_status {
            *by_status.entry(status).or_default() += count;
        }
        dedup_hits += stats.dedup_hits;
        transport_errors += stats.transport_errors;
        for latency in stats.latencies {
            histogram.observe(latency);
            max_latency = max_latency.max(latency);
        }
    }
    let total_requests = histogram.count();
    let server_errors: u64 = by_status
        .iter()
        .filter(|(status, _)| **status >= 500)
        .map(|(_, count)| *count)
        .sum();

    let status_pairs: Vec<(String, Value)> = by_status
        .iter()
        .map(|(status, count)| (status.to_string(), (*count).to_value()))
        .collect();
    let report = Value::Object(vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_value()),
        (
            "config".to_string(),
            Value::Object(vec![
                ("url".to_string(), Value::Str(args.url.clone())),
                ("tenants".to_string(), (args.tenants as u64).to_value()),
                ("clients".to_string(), (args.clients as u64).to_value()),
                (
                    "requests_per_client".to_string(),
                    (args.requests as u64).to_value(),
                ),
                ("seed_pool".to_string(), args.seeds.to_value()),
                ("scale".to_string(), Value::Str(args.scale.clone())),
            ]),
        ),
        (
            "totals".to_string(),
            Value::Object(vec![
                ("requests".to_string(), total_requests.to_value()),
                ("by_status".to_string(), Value::Object(status_pairs)),
                ("dedup_hits".to_string(), dedup_hits.to_value()),
                ("server_errors".to_string(), server_errors.to_value()),
                ("transport_errors".to_string(), transport_errors.to_value()),
            ]),
        ),
        (
            "latency_ms".to_string(),
            Value::Object(vec![
                (
                    "p50".to_string(),
                    quantile_ms(Some(&histogram), 0.50).to_value(),
                ),
                (
                    "p95".to_string(),
                    quantile_ms(Some(&histogram), 0.95).to_value(),
                ),
                (
                    "p99".to_string(),
                    quantile_ms(Some(&histogram), 0.99).to_value(),
                ),
                ("mean".to_string(), (histogram.mean() * 1e3).to_value()),
                ("max".to_string(), (max_latency * 1e3).to_value()),
            ]),
        ),
        (
            "throughput_rps".to_string(),
            (total_requests as f64 / wall_seconds).to_value(),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("report render");

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("ayb-load: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !args.quiet {
        println!(
            "ayb-load: {total_requests} requests in {wall_seconds:.2}s ({:.0} rps), \
             dedup_hits={dedup_hits}, 5xx={server_errors}, transport_errors={transport_errors}",
            total_requests as f64 / wall_seconds
        );
        if args.out.is_none() {
            println!("{rendered}");
        }
    }

    if args.fail_on_5xx && (server_errors > 0 || transport_errors > 0) {
        eprintln!(
            "ayb-load: FAIL — {server_errors} server errors, {transport_errors} transport errors"
        );
        return ExitCode::FAILURE;
    }
    if args.require_dedup && dedup_hits == 0 {
        eprintln!("ayb-load: FAIL — expected at least one dedup hit, saw none");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
