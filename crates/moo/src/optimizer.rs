//! The engine-style optimiser abstraction.
//!
//! The paper frames its flow as "netlist/objective generation" (the problem)
//! followed by "optimisation" (the search algorithm) — steps 1–2 of Figure 3
//! — without tying either to the other. This module makes that separation a
//! stable public API:
//!
//! * [`Optimizer`] — anything that can drive a [`SizingProblem`] to a set of
//!   evaluated candidates: the paper's [`Wbga`], the [`Nsga2`] baseline and
//!   [`RandomSearch`] all implement it,
//! * [`OptimizationResult`] — the optimiser-independent result (archive,
//!   history, counters, senses) every implementation returns,
//! * [`OptimizerConfig`] — a serde-friendly description of *which* optimiser
//!   to run with *what* settings, so flows, benches and config files select
//!   the algorithm through one code path.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointSink};
use crate::config::{GaConfig, GenerationStats};
use crate::nsga2::{Nsga2, Nsga2Result};
use crate::pareto::pareto_front;
use crate::problem::{Evaluation, Sense, SizingProblem};
use crate::random_search::{RandomSearch, RandomSearchResult};
use crate::wbga::{Wbga, WbgaResult};
use serde::{Deserialize, Serialize};

/// An optimisation algorithm that can drive any [`SizingProblem`].
///
/// Implementations are interchangeable behind `&dyn Optimizer` / `Box<dyn
/// Optimizer>`: the model-generation flow, the ablation benchmarks and the
/// integration tests all run optimisers exclusively through this trait.
pub trait Optimizer {
    /// Stable machine-readable identifier (e.g. `"wbga"`).
    fn name(&self) -> &'static str;

    /// Runs the optimisation against `problem`.
    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult;

    /// Runs the optimisation with per-generation checkpointing.
    ///
    /// `sink` receives a [`Checkpoint`] at every generation boundary and may
    /// halt the run; `resume` continues a previous run from its latest
    /// checkpoint, producing a result identical to the uninterrupted run.
    /// Every optimiser in this crate overrides this; the default rejects
    /// resumption and otherwise falls back to a plain (un-checkpointed)
    /// [`Optimizer::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when `resume` is incompatible with the
    /// optimiser/problem/configuration, checkpointing is unsupported, or the
    /// sink halted the run.
    fn run_checkpointed(
        &self,
        problem: &dyn SizingProblem,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<OptimizationResult, CheckpointError> {
        let _ = sink;
        if resume.is_some() {
            return Err(CheckpointError::Unsupported(self.name().to_string()));
        }
        Ok(self.run(problem))
    }
}

/// Optimiser-independent result of one optimisation run.
///
/// This is the common denominator of [`WbgaResult`], [`Nsga2Result`] and
/// [`RandomSearchResult`]; the algorithm-specific result types convert into
/// it with `From`/`Into`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// Identifier of the optimiser that produced this result.
    pub optimizer: String,
    /// Every successful evaluation performed during the run.
    pub archive: Vec<Evaluation>,
    /// The optimiser's final population, when the algorithm maintains one.
    pub final_population: Option<Vec<Evaluation>>,
    /// Per-generation statistics (empty for non-generational algorithms).
    pub history: Vec<GenerationStats>,
    /// Number of evaluation attempts, including failures.
    pub evaluations: usize,
    /// Number of failed (infeasible) evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem, for Pareto extraction.
    pub senses: Vec<Sense>,
}

impl OptimizationResult {
    /// Extracts the Pareto front (§3.3) from the evaluation archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }

    /// The archived evaluation with the best value of objective `index`.
    pub fn best_by_objective(&self, index: usize) -> Option<&Evaluation> {
        let sense = *self.senses.get(index)?;
        self.archive.iter().max_by(|a, b| {
            let (va, vb) = (a.objectives[index], b.objectives[index]);
            let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
            match sense {
                Sense::Maximize => ord,
                Sense::Minimize => ord.reverse(),
            }
        })
    }
}

impl From<WbgaResult> for OptimizationResult {
    fn from(result: WbgaResult) -> Self {
        OptimizationResult {
            optimizer: "wbga".to_string(),
            archive: result.archive,
            final_population: None,
            history: result.history,
            evaluations: result.evaluations,
            failed_evaluations: result.failed_evaluations,
            senses: result.senses,
        }
    }
}

impl From<Nsga2Result> for OptimizationResult {
    fn from(result: Nsga2Result) -> Self {
        OptimizationResult {
            optimizer: "nsga2".to_string(),
            archive: result.archive,
            final_population: Some(result.final_population),
            history: result.history,
            evaluations: result.evaluations,
            failed_evaluations: result.failed_evaluations,
            senses: result.senses,
        }
    }
}

impl From<RandomSearchResult> for OptimizationResult {
    fn from(result: RandomSearchResult) -> Self {
        OptimizationResult {
            optimizer: "random_search".to_string(),
            archive: result.archive,
            final_population: None,
            history: Vec::new(),
            evaluations: result.evaluations,
            failed_evaluations: result.failed_evaluations,
            senses: result.senses,
        }
    }
}

/// Serde-friendly selection of an optimisation algorithm and its settings.
///
/// ```
/// use ayb_moo::{FnProblem, GaConfig, ObjectiveSpec, OptimizerConfig};
///
/// let problem = FnProblem::new(
///     1,
///     vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
///     |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
/// );
/// for config in [
///     OptimizerConfig::Wbga(GaConfig::small_test()),
///     OptimizerConfig::Nsga2(GaConfig::small_test()),
///     OptimizerConfig::RandomSearch { budget: 64, seed: 7 },
/// ] {
///     let result = config.build().run(&problem);
///     assert!(!result.pareto_front().is_empty(), "{}", config.name());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// The paper's weight-based genetic algorithm (§3.2).
    Wbga(GaConfig),
    /// The NSGA-II baseline.
    Nsga2(GaConfig),
    /// Uniform random sampling at a fixed evaluation budget.
    RandomSearch {
        /// Number of evaluation attempts.
        budget: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl OptimizerConfig {
    /// Stable identifier of the selected algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerConfig::Wbga(_) => "wbga",
            OptimizerConfig::Nsga2(_) => "nsga2",
            OptimizerConfig::RandomSearch { .. } => "random_search",
        }
    }

    /// The RNG seed the selected algorithm will use.
    pub fn seed(&self) -> u64 {
        match self {
            OptimizerConfig::Wbga(ga) | OptimizerConfig::Nsga2(ga) => ga.seed,
            OptimizerConfig::RandomSearch { seed, .. } => *seed,
        }
    }

    /// Returns a copy with a different RNG seed (end-to-end determinism).
    #[must_use]
    pub fn with_seed(mut self, new_seed: u64) -> Self {
        match &mut self {
            OptimizerConfig::Wbga(ga) | OptimizerConfig::Nsga2(ga) => ga.seed = new_seed,
            OptimizerConfig::RandomSearch { seed, .. } => *seed = new_seed,
        }
        self
    }

    /// Upper bound on the number of evaluations the configuration implies.
    pub fn evaluation_budget(&self) -> usize {
        match self {
            OptimizerConfig::Wbga(ga) | OptimizerConfig::Nsga2(ga) => ga.evaluation_budget(),
            OptimizerConfig::RandomSearch { budget, .. } => *budget,
        }
    }

    /// The early-stopping criterion of the selected algorithm, if any
    /// (random search has no generational convergence notion).
    pub fn early_stop(&self) -> Option<crate::config::EarlyStop> {
        match self {
            OptimizerConfig::Wbga(ga) | OptimizerConfig::Nsga2(ga) => ga.early_stop,
            OptimizerConfig::RandomSearch { .. } => None,
        }
    }

    /// Instantiates the configured optimiser.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match self {
            OptimizerConfig::Wbga(ga) => Box::new(Wbga::new(*ga)),
            OptimizerConfig::Nsga2(ga) => Box::new(Nsga2::new(*ga)),
            OptimizerConfig::RandomSearch { budget, seed } => {
                Box::new(RandomSearch::new(*budget, *seed))
            }
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::Wbga(GaConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, ObjectiveSpec};

    fn tradeoff() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync> {
        FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
        )
    }

    fn all_variants() -> Vec<OptimizerConfig> {
        vec![
            OptimizerConfig::Wbga(GaConfig::small_test()),
            OptimizerConfig::Nsga2(GaConfig::small_test()),
            OptimizerConfig::RandomSearch {
                budget: 128,
                seed: 7,
            },
        ]
    }

    #[test]
    fn every_variant_builds_and_runs_through_the_trait_object() {
        let problem = tradeoff();
        for config in all_variants() {
            let optimizer = config.build();
            assert_eq!(optimizer.name(), config.name());
            let result = optimizer.run(&problem);
            assert_eq!(result.optimizer, config.name());
            assert!(result.evaluations > 0);
            assert!(!result.pareto_front().is_empty(), "{}", config.name());
            assert!(result.evaluations <= config.evaluation_budget());
        }
    }

    #[test]
    fn with_seed_rewrites_every_variant() {
        for config in all_variants() {
            let reseeded = config.clone().with_seed(0xfeed);
            assert_eq!(reseeded.seed(), 0xfeed);
            assert_eq!(reseeded.name(), config.name());
        }
    }

    #[test]
    fn trait_runs_match_inherent_runs() {
        let problem = tradeoff();
        let ga = GaConfig::small_test();

        let direct = Wbga::new(ga).run(&problem);
        let via_trait = OptimizerConfig::Wbga(ga).build().run(&problem);
        assert_eq!(direct.archive, via_trait.archive);
        assert_eq!(direct.evaluations, via_trait.evaluations);

        let direct = Nsga2::new(ga).run(&problem);
        let via_trait = OptimizerConfig::Nsga2(ga).build().run(&problem);
        assert_eq!(direct.archive, via_trait.archive);
        assert_eq!(Some(direct.final_population), via_trait.final_population);
    }

    #[test]
    fn checkpointed_trait_runs_match_plain_trait_runs() {
        use crate::checkpoint::{Checkpoint, CheckpointControl, DiscardCheckpoints};

        let problem = tradeoff();
        for config in all_variants() {
            let optimizer = config.build();
            let plain = optimizer.run(&problem);
            let fresh = optimizer
                .run_checkpointed(&problem, None, &mut DiscardCheckpoints)
                .expect("fresh checkpointed run succeeds");
            assert_eq!(plain.archive, fresh.archive, "{}", config.name());
            assert_eq!(plain.evaluations, fresh.evaluations, "{}", config.name());

            // Resuming from the first emitted checkpoint reproduces the run
            // through the trait object as well.
            let mut first: Option<Checkpoint> = None;
            let mut sink = |cp: &Checkpoint| {
                first.get_or_insert_with(|| cp.clone());
                CheckpointControl::Continue
            };
            optimizer
                .run_checkpointed(&problem, None, &mut sink)
                .expect("checkpointed run succeeds");
            let first = first.expect("at least one checkpoint was emitted");
            let resumed = optimizer
                .run_checkpointed(&problem, Some(first), &mut DiscardCheckpoints)
                .expect("resume succeeds");
            assert_eq!(plain.archive, resumed.archive, "{}", config.name());
        }
    }

    #[test]
    fn early_stop_accessor_reflects_ga_configs_only() {
        use crate::config::EarlyStop;
        let ga = GaConfig::small_test().with_early_stop(EarlyStop::after_stalled_generations(3));
        assert_eq!(OptimizerConfig::Wbga(ga).early_stop().unwrap().patience, 3);
        assert_eq!(OptimizerConfig::Nsga2(ga).early_stop().unwrap().patience, 3);
        assert!(OptimizerConfig::RandomSearch { budget: 8, seed: 1 }
            .early_stop()
            .is_none());
    }

    #[test]
    fn config_serializes_roundtrip() {
        for config in all_variants() {
            let json = serde_json::to_string(&config).expect("serializes");
            let back: OptimizerConfig = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, config);
        }
    }

    #[test]
    fn best_by_objective_respects_sense_on_unified_result() {
        let problem = tradeoff();
        let result: OptimizationResult = OptimizerConfig::RandomSearch {
            budget: 200,
            seed: 3,
        }
        .build()
        .run(&problem);
        let best = result.best_by_objective(0).unwrap().objectives[0];
        assert!(result
            .archive
            .iter()
            .all(|e| e.objectives[0] <= best + 1e-12));
        assert!(result.best_by_objective(9).is_none());
    }
}
