//! Genetic operators on normalised `[0, 1]` gene vectors.
//!
//! The paper's WBGA uses the classic crossover / mutation / selection loop of
//! Goldberg-style genetic algorithms (§3.2, ref. \[10\]); the operators here are
//! the standard real-coded versions: tournament selection, single-point and
//! blend (BLX-α) crossover, and Gaussian or uniform mutation, all clamped back
//! into `[0, 1]`.

use rand::Rng;

/// Tournament selection: picks `tournament_size` random candidates and
/// returns the index of the one with the highest fitness.
///
/// # Panics
///
/// Panics if `fitness` is empty or `tournament_size` is zero.
pub fn tournament_select<R: Rng + ?Sized>(
    rng: &mut R,
    fitness: &[f64],
    tournament_size: usize,
) -> usize {
    assert!(!fitness.is_empty(), "fitness slice must not be empty");
    assert!(tournament_size > 0, "tournament size must be positive");
    let mut best = rng.gen_range(0..fitness.len());
    for _ in 1..tournament_size {
        let challenger = rng.gen_range(0..fitness.len());
        if fitness[challenger] > fitness[best] {
            best = challenger;
        }
    }
    best
}

/// Single-point crossover: children swap tails after a random cut point.
///
/// With gene vectors of length 1 the operation degenerates to swapping the
/// whole gene with probability ½, which is still meaningful.
pub fn single_point_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    a: &[f64],
    b: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let n = a.len();
    if n < 2 {
        return if rng.gen_bool(0.5) {
            (b.to_vec(), a.to_vec())
        } else {
            (a.to_vec(), b.to_vec())
        };
    }
    let cut = rng.gen_range(1..n);
    let mut child_a = a[..cut].to_vec();
    child_a.extend_from_slice(&b[cut..]);
    let mut child_b = b[..cut].to_vec();
    child_b.extend_from_slice(&a[cut..]);
    (child_a, child_b)
}

/// Blend (BLX-α) crossover: each child gene is drawn uniformly from the
/// interval spanned by the parents, extended by a fraction `alpha` on both
/// sides, then clamped to `[0, 1]`.
pub fn blend_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    a: &[f64],
    b: &[f64],
    alpha: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let mut child_a = Vec::with_capacity(a.len());
    let mut child_b = Vec::with_capacity(a.len());
    for (&ga, &gb) in a.iter().zip(b.iter()) {
        let lo = ga.min(gb);
        let hi = ga.max(gb);
        let span = (hi - lo).max(1e-12);
        let lower = (lo - alpha * span).max(0.0);
        let upper = (hi + alpha * span).min(1.0);
        child_a.push(rng.gen_range(lower..=upper));
        child_b.push(rng.gen_range(lower..=upper));
    }
    (child_a, child_b)
}

/// Gaussian mutation: each gene is perturbed with probability `rate` by a
/// normal draw of standard deviation `sigma` and clamped to `[0, 1]`.
pub fn gaussian_mutation<R: Rng + ?Sized>(rng: &mut R, genes: &mut [f64], rate: f64, sigma: f64) {
    for gene in genes.iter_mut() {
        if rng.gen::<f64>() < rate {
            // Box–Muller draw (kept local to avoid a dependency on ayb-process).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *gene = (*gene + sigma * z).clamp(0.0, 1.0);
        }
    }
}

/// Uniform (reset) mutation: each gene is replaced with probability `rate` by
/// a fresh uniform draw in `[0, 1]`.
pub fn uniform_mutation<R: Rng + ?Sized>(rng: &mut R, genes: &mut [f64], rate: f64) {
    for gene in genes.iter_mut() {
        if rng.gen::<f64>() < rate {
            *gene = rng.gen::<f64>();
        }
    }
}

/// Draws a random gene vector in `[0, 1]^n`.
pub fn random_genes<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tournament_prefers_high_fitness() {
        let mut rng = StdRng::seed_from_u64(1);
        let fitness = vec![0.1, 0.9, 0.2, 0.05];
        let mut wins = vec![0usize; fitness.len()];
        for _ in 0..2000 {
            wins[tournament_select(&mut rng, &fitness, 3)] += 1;
        }
        assert!(wins[1] > wins[0]);
        assert!(wins[1] > wins[2]);
        assert!(
            wins[1] > 1000,
            "best individual should win most tournaments"
        );
    }

    #[test]
    fn single_point_crossover_preserves_genes() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = vec![0.0, 0.0, 0.0, 0.0];
        let b = vec![1.0, 1.0, 1.0, 1.0];
        let (ca, cb) = single_point_crossover(&mut rng, &a, &b);
        assert_eq!(ca.len(), 4);
        // Each child position holds a gene from one of the parents.
        for (i, (&ga, &gb)) in ca.iter().zip(cb.iter()).enumerate() {
            assert!(ga == 0.0 || ga == 1.0);
            assert!(gb == 0.0 || gb == 1.0);
            assert_ne!(ga, gb, "children complement each other at position {i}");
        }
        // Single-gene parents do not panic.
        let (x, y) = single_point_crossover(&mut rng, &[0.3], &[0.7]);
        assert_eq!(x.len(), 1);
        assert_eq!(y.len(), 1);
    }

    #[test]
    fn blend_crossover_stays_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = vec![0.05, 0.95, 0.5];
        let b = vec![0.0, 1.0, 0.6];
        for _ in 0..100 {
            let (ca, cb) = blend_crossover(&mut rng, &a, &b, 0.5);
            for &g in ca.iter().chain(cb.iter()) {
                assert!((0.0..=1.0).contains(&g));
            }
        }
    }

    #[test]
    fn mutations_respect_bounds_and_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut genes = vec![0.5; 1000];
        gaussian_mutation(&mut rng, &mut genes, 0.3, 0.1);
        let changed = genes.iter().filter(|&&g| g != 0.5).count();
        assert!((200..400).contains(&changed), "changed = {changed}");
        assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));

        let mut genes = vec![0.5; 1000];
        uniform_mutation(&mut rng, &mut genes, 0.0);
        assert!(genes.iter().all(|&g| g == 0.5), "zero rate mutates nothing");
        uniform_mutation(&mut rng, &mut genes, 1.0);
        assert!(genes.iter().any(|&g| g != 0.5), "full rate mutates");
    }

    #[test]
    fn random_genes_have_correct_length_and_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_genes(&mut rng, 10);
        assert_eq!(g.len(), 10);
        assert!(g.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
