//! Pareto dominance utilities (paper §3.3).
//!
//! The paper extracts the set of non-dominated solutions from all points the
//! GA evaluated; conditions (a)/(b) in §3.3 are exactly the definition of a
//! non-dominated (Pareto-optimal) set implemented here.

use crate::problem::{Evaluation, Sense};

/// Returns `true` if objective vector `a` dominates `b` under the given senses:
/// `a` is at least as good in every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the vectors and senses have different lengths.
pub fn dominates(a: &[f64], b: &[f64], senses: &[Sense]) -> bool {
    assert_eq!(a.len(), senses.len(), "objective/sense length mismatch");
    assert_eq!(b.len(), senses.len(), "objective/sense length mismatch");
    let mut strictly_better = false;
    for ((&va, &vb), &sense) in a.iter().zip(b.iter()).zip(senses.iter()) {
        if !sense.at_least_as_good(va, vb) {
            return false;
        }
        if sense.strictly_better(va, vb) {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points within `objectives`.
pub fn non_dominated_indices(objectives: &[Vec<f64>], senses: &[Sense]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for (i, a) in objectives.iter().enumerate() {
        for (j, b) in objectives.iter().enumerate() {
            if i != j && dominates(b, a, senses) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// Incrementally maintained Pareto front over a stream of evaluations.
///
/// Used by the optimisers' early-stopping criterion: inserting a point
/// reports whether it *improved* the front (it was not dominated by — and not
/// equal to — any current member). The tracker is fully deterministic, so the
/// state after replaying an evaluation archive equals the state the live run
/// had at the same point — which is how resumed runs rebuild it from a
/// checkpoint's archive.
#[derive(Debug, Clone)]
pub struct FrontTracker {
    senses: Vec<Sense>,
    front: Vec<Evaluation>,
}

impl FrontTracker {
    /// Creates an empty tracker for the given objective senses.
    pub fn new(senses: Vec<Sense>) -> Self {
        FrontTracker {
            senses,
            front: Vec::new(),
        }
    }

    /// Rebuilds the tracker by replaying `archive` in order.
    pub fn from_archive(archive: &[Evaluation], senses: &[Sense]) -> Self {
        let mut tracker = FrontTracker::new(senses.to_vec());
        for evaluation in archive {
            tracker.insert(evaluation);
        }
        tracker
    }

    /// Inserts one evaluation; returns `true` if it entered the front.
    ///
    /// A point enters when no current member dominates or equals it;
    /// members it dominates are evicted.
    pub fn insert(&mut self, candidate: &Evaluation) -> bool {
        let rejected = self.front.iter().any(|member| {
            member.objectives == candidate.objectives
                || dominates(&member.objectives, &candidate.objectives, &self.senses)
        });
        if rejected {
            return false;
        }
        self.front
            .retain(|member| !dominates(&candidate.objectives, &member.objectives, &self.senses));
        self.front.push(candidate.clone());
        true
    }

    /// The current non-dominated set, in insertion order.
    pub fn front(&self) -> &[Evaluation] {
        &self.front
    }
}

/// Extracts the Pareto front from a set of evaluations, sorted by the first
/// objective for reproducible output ordering.
pub fn pareto_front(evaluations: &[Evaluation], senses: &[Sense]) -> Vec<Evaluation> {
    let objectives: Vec<Vec<f64>> = evaluations.iter().map(|e| e.objectives.clone()).collect();
    let mut front: Vec<Evaluation> = non_dominated_indices(&objectives, senses)
        .into_iter()
        .map(|i| evaluations[i].clone())
        .collect();
    front.sort_by(|a, b| {
        a.objectives[0]
            .partial_cmp(&b.objectives[0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| a.objectives == b.objectives);
    front
}

/// Fast non-dominated sorting (NSGA-II): partitions the points into fronts,
/// front 0 being the Pareto-optimal set.
pub fn fast_non_dominated_sort(objectives: &[Vec<f64>], senses: &[Sense]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new()];

    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&objectives[i], &objectives[j], senses) {
                dominated_sets[i].push(j);
            } else if dominates(&objectives[j], &objectives[i], senses) {
                domination_count[i] += 1;
            }
        }
        if domination_count[i] == 0 {
            fronts[0].push(i);
        }
    }
    let mut current = 0;
    while !fronts[current].is_empty() {
        let mut next = Vec::new();
        for &i in &fronts[current] {
            for &j in &dominated_sets[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        current += 1;
        fronts.push(next);
    }
    fronts.pop();
    fronts
}

/// Crowding distance of each point within one front (NSGA-II diversity metric).
pub fn crowding_distance(objectives: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let mut distance = vec![0.0; front.len()];
    if front.len() <= 2 {
        return vec![f64::INFINITY; front.len()];
    }
    let m = objectives[front[0]].len();
    // Index-based loop: `obj` addresses a column across several slices.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..m {
        let mut order: Vec<usize> = (0..front.len()).collect();
        order.sort_by(|&a, &b| {
            objectives[front[a]][obj]
                .partial_cmp(&objectives[front[b]][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let min = objectives[front[order[0]]][obj];
        let max = objectives[front[order[front.len() - 1]]][obj];
        let span = (max - min).abs().max(1e-30);
        distance[order[0]] = f64::INFINITY;
        distance[order[front.len() - 1]] = f64::INFINITY;
        for k in 1..front.len() - 1 {
            let lower = objectives[front[order[k - 1]]][obj];
            let upper = objectives[front[order[k + 1]]][obj];
            distance[order[k]] += (upper - lower) / span;
        }
    }
    distance
}

/// Two-objective hypervolume with respect to a reference point.
///
/// Both objectives are first oriented so that larger is better; the reference
/// point must be dominated by every front member for a meaningful result.
/// Used as the front-quality metric in the WBGA-vs-NSGA-II ablation.
pub fn hypervolume_2d(front: &[Evaluation], reference: [f64; 2], senses: &[Sense]) -> f64 {
    assert_eq!(
        senses.len(),
        2,
        "hypervolume_2d requires exactly two objectives"
    );
    let orient = |value: f64, sense: Sense, reference: f64| match sense {
        Sense::Maximize => value - reference,
        Sense::Minimize => reference - value,
    };
    let mut points: Vec<(f64, f64)> = front
        .iter()
        .map(|e| {
            (
                orient(e.objectives[0], senses[0], reference[0]),
                orient(e.objectives[1], senses[1], reference[1]),
            )
        })
        .filter(|&(a, b)| a > 0.0 && b > 0.0)
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut volume = 0.0;
    let mut previous_x = 0.0;
    let mut best_y: f64 = 0.0;
    // Sweep in increasing x (oriented objective 1); accumulate rectangles under
    // the staircase of maximal y values.
    let mut staircase: Vec<(f64, f64)> = Vec::new();
    for &(x, y) in points.iter().rev() {
        // iterate from largest x downwards, keep track of running max y
        if y > best_y {
            staircase.push((x, y));
            best_y = y;
        }
    }
    staircase.reverse(); // ascending x, descending y
    for &(x, y) in &staircase {
        volume += (x - previous_x) * y;
        previous_x = x;
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX2: [Sense; 2] = [Sense::Maximize, Sense::Maximize];

    #[test]
    fn dominance_definition() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 1.0], &MAX2));
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0], &MAX2));
        assert!(!dominates(&[2.0, 0.5], &[1.0, 1.0], &MAX2));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], &MAX2));
        let min2 = [Sense::Minimize, Sense::Minimize];
        assert!(dominates(&[0.5, 0.5], &[1.0, 1.0], &min2));
    }

    #[test]
    fn non_dominated_set_matches_hand_computation() {
        // Point B from the paper's Figure 2 discussion: dominated by A.
        let points = vec![
            vec![3.0, 1.0], // A'
            vec![2.0, 2.0], // A
            vec![1.5, 1.5], // B (dominated by A)
            vec![1.0, 3.0], // C
            vec![0.5, 0.5], // dominated by everything
        ];
        let idx = non_dominated_indices(&points, &MAX2);
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn pareto_front_is_sorted_and_deduplicated() {
        let evals = vec![
            Evaluation::new(vec![0.1], vec![1.0, 3.0]),
            Evaluation::new(vec![0.2], vec![3.0, 1.0]),
            Evaluation::new(vec![0.3], vec![2.0, 2.0]),
            Evaluation::new(vec![0.4], vec![2.0, 2.0]), // duplicate objectives
            Evaluation::new(vec![0.5], vec![1.0, 1.0]), // dominated
        ];
        let front = pareto_front(&evals, &MAX2);
        assert_eq!(front.len(), 3);
        assert!(front
            .windows(2)
            .all(|w| w[0].objectives[0] <= w[1].objectives[0]));
    }

    #[test]
    fn every_front_member_is_mutually_non_dominated() {
        // Property-style check on a deterministic pseudo-random cloud.
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64) / (1u64 << 31) as f64
        };
        let evals: Vec<Evaluation> = (0..200)
            .map(|_| Evaluation::new(vec![0.0], vec![next(), next()]))
            .collect();
        let front = pareto_front(&evals, &MAX2);
        for a in &front {
            for b in &front {
                assert!(
                    !dominates(&a.objectives, &b.objectives, &MAX2) || a.objectives == b.objectives
                );
            }
        }
        // Condition (b): every non-front point is dominated by a front member.
        for e in &evals {
            let on_front = front.iter().any(|f| f.objectives == e.objectives);
            if !on_front {
                assert!(front
                    .iter()
                    .any(|f| dominates(&f.objectives, &e.objectives, &MAX2)));
            }
        }
    }

    #[test]
    fn fast_sort_layers_fronts() {
        let points = vec![
            vec![3.0, 3.0], // front 0
            vec![2.0, 2.0], // front 1
            vec![1.0, 1.0], // front 2
            vec![3.5, 1.0], // front 0
        ];
        let fronts = fast_non_dominated_sort(&points, &MAX2);
        assert_eq!(fronts.len(), 3);
        assert!(fronts[0].contains(&0) && fronts[0].contains(&3));
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn crowding_distance_rewards_spread() {
        let points = vec![
            vec![0.0, 10.0],
            vec![1.0, 9.0],
            vec![5.0, 5.0],
            vec![9.0, 1.0],
            vec![10.0, 0.0],
        ];
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&points, &front);
        assert!(d[0].is_infinite() && d[4].is_infinite());
        // The middle point has the widest gap to its neighbours.
        assert!(d[2] > d[1] && d[2] > d[3]);
    }

    #[test]
    fn hypervolume_of_single_point_is_rectangle_area() {
        let front = vec![Evaluation::new(vec![], vec![3.0, 4.0])];
        let hv = hypervolume_2d(&front, [0.0, 0.0], &MAX2);
        assert!((hv - 12.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let weak = vec![
            Evaluation::new(vec![], vec![1.0, 3.0]),
            Evaluation::new(vec![], vec![3.0, 1.0]),
        ];
        let strong = vec![
            Evaluation::new(vec![], vec![2.0, 4.0]),
            Evaluation::new(vec![], vec![4.0, 2.0]),
        ];
        let hv_weak = hypervolume_2d(&weak, [0.0, 0.0], &MAX2);
        let hv_strong = hypervolume_2d(&strong, [0.0, 0.0], &MAX2);
        assert!(hv_strong > hv_weak);
        // Minimisation orientation also works.
        let min2 = [Sense::Minimize, Sense::Minimize];
        let front = vec![Evaluation::new(vec![], vec![1.0, 1.0])];
        assert!((hypervolume_2d(&front, [2.0, 2.0], &min2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn front_tracker_reports_improvements_and_evicts_dominated() {
        let mut tracker = FrontTracker::new(MAX2.to_vec());
        assert!(tracker.insert(&Evaluation::new(vec![], vec![1.0, 1.0])));
        // Dominated and duplicate points are not improvements.
        assert!(!tracker.insert(&Evaluation::new(vec![], vec![0.5, 0.5])));
        assert!(!tracker.insert(&Evaluation::new(vec![], vec![1.0, 1.0])));
        // A trade-off point extends the front.
        assert!(tracker.insert(&Evaluation::new(vec![], vec![2.0, 0.5])));
        assert_eq!(tracker.front().len(), 2);
        // A dominating point evicts both members.
        assert!(tracker.insert(&Evaluation::new(vec![], vec![3.0, 3.0])));
        assert_eq!(tracker.front().len(), 1);
    }

    #[test]
    fn front_tracker_replay_matches_incremental_state() {
        let points: Vec<Evaluation> = (0..40)
            .map(|i| {
                let x = (i as f64 * 0.37) % 1.0;
                let y = ((i * i) as f64 * 0.11) % 1.0;
                Evaluation::new(vec![], vec![x, y])
            })
            .collect();
        let mut incremental = FrontTracker::new(MAX2.to_vec());
        for p in &points {
            incremental.insert(p);
        }
        let replayed = FrontTracker::from_archive(&points, &MAX2);
        assert_eq!(incremental.front(), replayed.front());
        // The tracked set is exactly the non-dominated set of the archive.
        let reference = pareto_front(&points, &MAX2);
        let mut tracked = incremental.front().to_vec();
        tracked.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap());
        assert_eq!(tracked, reference);
    }
}
