//! # ayb-moo — multi-objective optimisation for analogue sizing
//!
//! This crate implements the optimisation machinery of the paper's flow
//! (§2.1, §3.2, §3.3):
//!
//! * [`Wbga`] — the weight-based genetic algorithm the paper uses, where the
//!   GA string carries designable parameters *and* objective weights
//!   (normalised per eq. 4) and fitness is the normalised weighted sum (eq. 5),
//! * [`Nsga2`] — the NSGA-II baseline used in the ablation benchmarks,
//! * [`random_search`] — a uniform-sampling baseline,
//! * [`pareto`] — dominance tests, Pareto-front extraction (§3.3), fast
//!   non-dominated sorting, crowding distance and 2-D hypervolume,
//! * [`MultiObjectiveProblem`] — the problem abstraction over normalised
//!   `[0, 1]` parameter vectors.
//!
//! # Examples
//!
//! Optimising a two-objective toy trade-off with the paper's algorithm:
//!
//! ```
//! use ayb_moo::{FnProblem, GaConfig, ObjectiveSpec, Wbga};
//!
//! let problem = FnProblem::new(
//!     1,
//!     vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
//!     |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
//! );
//! let result = Wbga::new(GaConfig::small_test()).run(&problem);
//! let front = result.pareto_front();
//! assert!(!front.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod nsga2;
pub mod operators;
pub mod pareto;
pub mod problem;
pub mod random_search;
pub mod wbga;

pub use config::{GaConfig, GenerationStats};
pub use nsga2::{Nsga2, Nsga2Result};
pub use pareto::{
    crowding_distance, dominates, fast_non_dominated_sort, hypervolume_2d, non_dominated_indices,
    pareto_front,
};
pub use problem::{Evaluation, FnProblem, MultiObjectiveProblem, ObjectiveSpec, Sense};
pub use random_search::{random_search, RandomSearchResult};
pub use wbga::{normalize_weights, Wbga, WbgaIndividual, WbgaResult};
