//! # ayb-moo — multi-objective optimisation for analogue sizing
//!
//! This crate implements the optimisation machinery of the paper's flow
//! (§2.1, §3.2, §3.3) behind an engine-style public API:
//!
//! * [`SizingProblem`] — the problem abstraction over normalised `[0, 1]`
//!   parameter vectors, with a batch evaluation entry point
//!   ([`SizingProblem::evaluate_batch`] / [`evaluate_batch_parallel`]) so
//!   expensive evaluations use every core,
//! * [`Optimizer`] — the common interface every search algorithm implements;
//!   algorithms are interchangeable behind `&dyn Optimizer` and selected with
//!   the serde-friendly [`OptimizerConfig`] enum,
//! * [`Wbga`] — the weight-based genetic algorithm the paper uses, where the
//!   GA string carries designable parameters *and* objective weights
//!   (normalised per eq. 4) and fitness is the normalised weighted sum (eq. 5),
//! * [`Nsga2`] — the NSGA-II baseline used in the ablation benchmarks,
//! * [`RandomSearch`] / [`random_search()`](random_search::random_search) — a uniform-sampling baseline,
//! * [`pareto`] — dominance tests, Pareto-front extraction (§3.3), fast
//!   non-dominated sorting, crowding distance and 2-D hypervolume,
//! * [`checkpoint`] — serializable per-generation [`Checkpoint`]s: every
//!   optimiser supports [`Optimizer::run_checkpointed`], which snapshots its
//!   complete state (population, archive, RNG stream) between generations
//!   and resumes from any snapshot with bit-identical results; combined with
//!   the optional [`EarlyStop`] convergence criterion this is the substrate
//!   for durable, resumable flows (see the `ayb_store` crate),
//! * [`sharding`] — the [`BatchEvaluator`] seam under
//!   [`SizingProblem::evaluate_batch`] and the [`ShardedEvaluator`], which
//!   distributes batches as deterministic shards over a [`ShardTransport`]
//!   (the run store's on-disk shard plane, in production) so any number of
//!   worker processes — on any number of machines sharing the transport —
//!   evaluate one optimiser's populations, with results bit-identical to
//!   single-process runs.
//!
//! # Examples
//!
//! Optimising a two-objective toy trade-off with the paper's algorithm:
//!
//! ```
//! use ayb_moo::{FnProblem, GaConfig, ObjectiveSpec, Wbga};
//!
//! let problem = FnProblem::new(
//!     1,
//!     vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
//!     |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
//! );
//! let result = Wbga::new(GaConfig::small_test()).run(&problem);
//! let front = result.pareto_front();
//! assert!(!front.is_empty());
//! ```
//!
//! Selecting the algorithm at run time through the [`Optimizer`] trait:
//!
//! ```
//! use ayb_moo::{FnProblem, GaConfig, ObjectiveSpec, OptimizerConfig};
//!
//! let problem = FnProblem::new(
//!     1,
//!     vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
//!     |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
//! );
//! let config = OptimizerConfig::Nsga2(GaConfig::small_test());
//! let result = config.build().run(&problem);
//! assert_eq!(result.optimizer, "nsga2");
//! assert!(!result.pareto_front().is_empty());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod config;
pub mod evalcache;
pub mod nsga2;
pub mod operators;
pub mod optimizer;
pub mod pareto;
pub mod problem;
pub mod random_search;
pub mod sharding;
pub mod wbga;

pub use checkpoint::{
    Checkpoint, CheckpointControl, CheckpointError, CheckpointIndividual, CheckpointSink,
    DiscardCheckpoints,
};
pub use config::{EarlyStop, GaConfig, GenerationStats};
pub use evalcache::CachedProblem;
pub use nsga2::{Nsga2, Nsga2Result};
pub use optimizer::{OptimizationResult, Optimizer, OptimizerConfig};
pub use pareto::{
    crowding_distance, dominates, fast_non_dominated_sort, hypervolume_2d, non_dominated_indices,
    pareto_front, FrontTracker,
};
/// Backwards-compatible alias for [`SizingProblem`] (the pre-redesign name).
pub use problem::SizingProblem as MultiObjectiveProblem;
pub use problem::{
    evaluate_batch_parallel, Evaluation, FnProblem, ObjectiveSpec, Sense, SizingProblem,
};
pub use random_search::{random_search, RandomSearch, RandomSearchResult};
pub use sharding::{
    drive_epoch, BatchEvaluator, DegradedHook, EpochWork, LocalEvaluator, ShardError, ShardResults,
    ShardTransport, ShardedEvaluator, ShardingOptions, WithEvaluator,
};
pub use wbga::{normalize_weights, Wbga, WbgaIndividual, WbgaResult};
