//! The multi-objective problem abstraction.

use serde::{Deserialize, Serialize};

/// Optimisation direction of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Larger values are better (e.g. open-loop gain).
    Maximize,
    /// Smaller values are better (e.g. power, area).
    Minimize,
}

impl Sense {
    /// Returns `true` if `a` is at least as good as `b` under this sense.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a >= b,
            Sense::Minimize => a <= b,
        }
    }

    /// Returns `true` if `a` is strictly better than `b` under this sense.
    pub fn strictly_better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a > b,
            Sense::Minimize => a < b,
        }
    }
}

/// Name and direction of one objective function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpec {
    /// Human-readable name (e.g. `"gain_db"`).
    pub name: String,
    /// Optimisation direction.
    pub sense: Sense,
}

impl ObjectiveSpec {
    /// Creates a maximisation objective.
    pub fn maximize(name: impl Into<String>) -> Self {
        ObjectiveSpec {
            name: name.into(),
            sense: Sense::Maximize,
        }
    }

    /// Creates a minimisation objective.
    pub fn minimize(name: impl Into<String>) -> Self {
        ObjectiveSpec {
            name: name.into(),
            sense: Sense::Minimize,
        }
    }
}

/// A sizing problem: a multi-objective optimisation problem over normalised
/// parameters.
///
/// Parameters are presented to the optimiser as a vector in `[0, 1]^n`
/// (mirroring the paper's normalised GA string, Figure 6); the problem
/// implementation is responsible for mapping them to physical values.
///
/// `evaluate` returns `None` for infeasible points (for example a bias point
/// that does not converge); the optimisers treat these as worst-possible
/// candidates rather than aborting.
///
/// The trait is object safe — every [`Optimizer`](crate::Optimizer) consumes
/// a `&dyn SizingProblem` — and requires [`Sync`] so that batches can be
/// evaluated on worker threads (see [`SizingProblem::evaluate_batch`] and
/// [`evaluate_batch_parallel`]).
pub trait SizingProblem: Sync {
    /// Number of designable parameters (dimension of the normalised vector).
    fn parameter_count(&self) -> usize;

    /// Objective specifications, fixing the number and direction of objectives.
    fn objectives(&self) -> &[ObjectiveSpec];

    /// Evaluates the raw objective values at a normalised parameter vector.
    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>>;

    /// Number of objectives (derived from [`SizingProblem::objectives`]).
    fn objective_count(&self) -> usize {
        self.objectives().len()
    }

    /// Evaluates a whole batch of candidates, returning one entry per input
    /// in the same order (`None` marks an infeasible candidate).
    ///
    /// The default implementation loops over [`SizingProblem::evaluate`].
    /// Problems with expensive evaluations (such as circuit simulation)
    /// override this with [`evaluate_batch_parallel`] so that *optimiser*
    /// populations — not just Monte Carlo samples — use every core.
    fn evaluate_batch(&self, batch: &[Vec<f64>]) -> Vec<Option<Evaluation>> {
        batch
            .iter()
            .map(|parameters| {
                self.evaluate(parameters)
                    .map(|objectives| Evaluation::new(parameters.clone(), objectives))
            })
            .collect()
    }
}

/// Shared references delegate every method — including any overridden
/// `evaluate_batch` — so wrappers like
/// [`WithEvaluator`](crate::sharding::WithEvaluator) can borrow a problem
/// without losing its parallel (or sharded) batch evaluation.
impl<P: SizingProblem + ?Sized> SizingProblem for &P {
    fn parameter_count(&self) -> usize {
        (**self).parameter_count()
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        (**self).objectives()
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        (**self).evaluate(parameters)
    }

    fn objective_count(&self) -> usize {
        (**self).objective_count()
    }

    fn evaluate_batch(&self, batch: &[Vec<f64>]) -> Vec<Option<Evaluation>> {
        (**self).evaluate_batch(batch)
    }
}

/// Evaluates a batch on `threads` scoped worker threads, preserving order.
///
/// Work is distributed through an atomic-index work queue (work stealing)
/// rather than fixed chunks: each worker repeatedly claims the next
/// unevaluated candidate, so variable-cost evaluations — a handful of
/// slow-to-converge bias points amongst fast ones — no longer leave threads
/// idle behind an unlucky chunk split.
///
/// Results are identical to the sequential default (candidate evaluation is
/// pure and every result lands in its input slot), so parallel batch
/// evaluation never perturbs reproducibility. With `threads <= 1` — or
/// batches too small to be worth splitting — the batch is evaluated inline.
pub fn evaluate_batch_parallel<P: SizingProblem + ?Sized>(
    problem: &P,
    batch: &[Vec<f64>],
    threads: usize,
) -> Vec<Option<Evaluation>> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(batch.len().max(1));
    if threads == 1 {
        return batch
            .iter()
            .map(|parameters| {
                problem
                    .evaluate(parameters)
                    .map(|objectives| Evaluation::new(parameters.clone(), objectives))
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Evaluation>> = Vec::with_capacity(batch.len());
    slots.resize_with(batch.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Option<Evaluation>)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= batch.len() {
                            break;
                        }
                        let parameters = &batch[index];
                        let result = problem
                            .evaluate(parameters)
                            .map(|objectives| Evaluation::new(parameters.clone(), objectives));
                        local.push((index, result));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (index, result) in worker.join().expect("evaluation worker panicked") {
                slots[index] = result;
            }
        }
    });
    slots
}

/// A point that has been evaluated: normalised parameters plus raw objective values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Normalised parameter vector in `[0, 1]^n`.
    pub parameters: Vec<f64>,
    /// Raw objective values in the order declared by the problem.
    pub objectives: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation record.
    pub fn new(parameters: Vec<f64>, objectives: Vec<f64>) -> Self {
        Evaluation {
            parameters,
            objectives,
        }
    }
}

/// A closure-backed problem, convenient for tests and small studies.
pub struct FnProblem<F> {
    parameter_count: usize,
    objectives: Vec<ObjectiveSpec>,
    function: F,
}

impl<F> FnProblem<F>
where
    F: Fn(&[f64]) -> Option<Vec<f64>>,
{
    /// Wraps a closure as a [`SizingProblem`].
    pub fn new(parameter_count: usize, objectives: Vec<ObjectiveSpec>, function: F) -> Self {
        FnProblem {
            parameter_count,
            objectives,
            function,
        }
    }
}

impl<F> SizingProblem for FnProblem<F>
where
    F: Fn(&[f64]) -> Option<Vec<f64>> + Sync,
{
    fn parameter_count(&self) -> usize {
        self.parameter_count
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        &self.objectives
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        (self.function)(parameters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_comparisons() {
        assert!(Sense::Maximize.strictly_better(2.0, 1.0));
        assert!(!Sense::Maximize.strictly_better(1.0, 1.0));
        assert!(Sense::Maximize.at_least_as_good(1.0, 1.0));
        assert!(Sense::Minimize.strictly_better(1.0, 2.0));
        assert!(Sense::Minimize.at_least_as_good(1.0, 1.0));
    }

    #[test]
    fn fn_problem_delegates() {
        let p = FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| Some(vec![x[0] + x[1], x[0] - x[1]]),
        );
        assert_eq!(p.parameter_count(), 2);
        assert_eq!(p.objective_count(), 2);
        assert_eq!(p.objectives()[0].name, "f1");
        assert_eq!(p.evaluate(&[0.25, 0.5]), Some(vec![0.75, -0.25]));
    }

    #[test]
    fn evaluation_holds_both_vectors() {
        let e = Evaluation::new(vec![0.1, 0.2], vec![50.0, 75.0]);
        assert_eq!(e.parameters.len(), 2);
        assert_eq!(e.objectives[1], 75.0);
    }

    fn batch_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync> {
        FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                if x[0] > 0.9 {
                    None
                } else {
                    Some(vec![x[0] + x[1], x[0] * x[1]])
                }
            },
        )
    }

    #[test]
    fn default_batch_evaluation_preserves_order_and_failures() {
        let p = batch_problem();
        let batch = vec![vec![0.1, 0.2], vec![0.95, 0.0], vec![0.5, 0.5]];
        let results = p.evaluate_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().parameters, batch[0]);
        assert!(results[1].is_none(), "infeasible candidate maps to None");
        assert_eq!(results[2].as_ref().unwrap().objectives, vec![1.0, 0.25]);
    }

    #[test]
    fn parallel_batch_matches_sequential_for_any_thread_count() {
        let p = batch_problem();
        let batch: Vec<Vec<f64>> = (0..37)
            .map(|i| vec![(i as f64) / 40.0, ((i * 7) % 40) as f64 / 40.0])
            .collect();
        let sequential = p.evaluate_batch(&batch);
        for threads in [0, 1, 2, 3, 8, 64] {
            let parallel = evaluate_batch_parallel(&p, &batch, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        // Empty batches are handled without panicking.
        assert!(evaluate_batch_parallel(&p, &[], 4).is_empty());
    }

    #[test]
    fn work_stealing_matches_sequential_under_skewed_costs() {
        // Candidate cost varies by three orders of magnitude: a fixed chunk
        // split would serialise the expensive tail on one thread, and any
        // indexing bug in the work queue would scramble the output order.
        let p = FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                let spins = if x[0] > 0.9 { 200_000 } else { 200 };
                let mut acc = x[0];
                for _ in 0..spins {
                    acc = (acc * 1.000_001).min(1e6);
                }
                Some(vec![x[0], acc])
            },
        );
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![(i as f64) / 64.0]).collect();
        let sequential = p.evaluate_batch(&batch);
        for threads in [2, 4, 7] {
            assert_eq!(
                evaluate_batch_parallel(&p, &batch, threads),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sizing_problem_is_object_safe() {
        let p = batch_problem();
        let dynamic: &dyn SizingProblem = &p;
        assert_eq!(dynamic.parameter_count(), 2);
        assert_eq!(dynamic.objective_count(), 2);
        assert!(dynamic.evaluate(&[0.2, 0.2]).is_some());
        assert_eq!(dynamic.evaluate_batch(&[vec![0.2, 0.2]]).len(), 1);
    }
}
