//! The multi-objective problem abstraction.

use serde::{Deserialize, Serialize};

/// Optimisation direction of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Larger values are better (e.g. open-loop gain).
    Maximize,
    /// Smaller values are better (e.g. power, area).
    Minimize,
}

impl Sense {
    /// Returns `true` if `a` is at least as good as `b` under this sense.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a >= b,
            Sense::Minimize => a <= b,
        }
    }

    /// Returns `true` if `a` is strictly better than `b` under this sense.
    pub fn strictly_better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a > b,
            Sense::Minimize => a < b,
        }
    }
}

/// Name and direction of one objective function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpec {
    /// Human-readable name (e.g. `"gain_db"`).
    pub name: String,
    /// Optimisation direction.
    pub sense: Sense,
}

impl ObjectiveSpec {
    /// Creates a maximisation objective.
    pub fn maximize(name: impl Into<String>) -> Self {
        ObjectiveSpec {
            name: name.into(),
            sense: Sense::Maximize,
        }
    }

    /// Creates a minimisation objective.
    pub fn minimize(name: impl Into<String>) -> Self {
        ObjectiveSpec {
            name: name.into(),
            sense: Sense::Minimize,
        }
    }
}

/// A multi-objective optimisation problem over normalised parameters.
///
/// Parameters are presented to the optimiser as a vector in `[0, 1]^n`
/// (mirroring the paper's normalised GA string, Figure 6); the problem
/// implementation is responsible for mapping them to physical values.
///
/// `evaluate` returns `None` for infeasible points (for example a bias point
/// that does not converge); the optimisers treat these as worst-possible
/// candidates rather than aborting.
pub trait MultiObjectiveProblem {
    /// Number of designable parameters (dimension of the normalised vector).
    fn parameter_count(&self) -> usize;

    /// Objective specifications, fixing the number and direction of objectives.
    fn objectives(&self) -> &[ObjectiveSpec];

    /// Evaluates the raw objective values at a normalised parameter vector.
    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>>;

    /// Number of objectives (derived from [`MultiObjectiveProblem::objectives`]).
    fn objective_count(&self) -> usize {
        self.objectives().len()
    }
}

/// A point that has been evaluated: normalised parameters plus raw objective values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Normalised parameter vector in `[0, 1]^n`.
    pub parameters: Vec<f64>,
    /// Raw objective values in the order declared by the problem.
    pub objectives: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation record.
    pub fn new(parameters: Vec<f64>, objectives: Vec<f64>) -> Self {
        Evaluation {
            parameters,
            objectives,
        }
    }
}

/// A closure-backed problem, convenient for tests and small studies.
pub struct FnProblem<F> {
    parameter_count: usize,
    objectives: Vec<ObjectiveSpec>,
    function: F,
}

impl<F> FnProblem<F>
where
    F: Fn(&[f64]) -> Option<Vec<f64>>,
{
    /// Wraps a closure as a [`MultiObjectiveProblem`].
    pub fn new(parameter_count: usize, objectives: Vec<ObjectiveSpec>, function: F) -> Self {
        FnProblem {
            parameter_count,
            objectives,
            function,
        }
    }
}

impl<F> MultiObjectiveProblem for FnProblem<F>
where
    F: Fn(&[f64]) -> Option<Vec<f64>>,
{
    fn parameter_count(&self) -> usize {
        self.parameter_count
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        &self.objectives
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        (self.function)(parameters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_comparisons() {
        assert!(Sense::Maximize.strictly_better(2.0, 1.0));
        assert!(!Sense::Maximize.strictly_better(1.0, 1.0));
        assert!(Sense::Maximize.at_least_as_good(1.0, 1.0));
        assert!(Sense::Minimize.strictly_better(1.0, 2.0));
        assert!(Sense::Minimize.at_least_as_good(1.0, 1.0));
    }

    #[test]
    fn fn_problem_delegates() {
        let p = FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| Some(vec![x[0] + x[1], x[0] - x[1]]),
        );
        assert_eq!(p.parameter_count(), 2);
        assert_eq!(p.objective_count(), 2);
        assert_eq!(p.objectives()[0].name, "f1");
        assert_eq!(p.evaluate(&[0.25, 0.5]), Some(vec![0.75, -0.25]));
    }

    #[test]
    fn evaluation_holds_both_vectors() {
        let e = Evaluation::new(vec![0.1, 0.2], vec![50.0, 75.0]);
        assert_eq!(e.parameters.len(), 2);
        assert_eq!(e.objectives[1], 75.0);
    }
}
