//! Genetic-algorithm configuration.

use serde::{Deserialize, Serialize};

/// Optional convergence-based early stopping for the generational optimisers.
///
/// The optimisers track the Pareto front of their evaluation archive; a
/// generation "improves" when at least one of its offspring enters that
/// front. After `patience` consecutive generations without an improvement
/// the run stops early (its history is simply shorter than
/// `GaConfig::generations`).
///
/// The stall counter is part of every [`Checkpoint`](crate::Checkpoint), so
/// an interrupted-and-resumed run honours the criterion exactly like an
/// uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// Number of consecutive non-improving generations tolerated before the
    /// run stops. Values below 1 are treated as 1.
    pub patience: usize,
}

impl EarlyStop {
    /// Creates a criterion stopping after `patience` stalled generations.
    pub fn after_stalled_generations(patience: usize) -> Self {
        EarlyStop { patience }
    }

    /// The effective patience (at least one generation).
    pub fn effective_patience(&self) -> usize {
        self.patience.max(1)
    }
}

/// Configuration shared by the WBGA and NSGA-II optimisers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of individuals per generation (paper: 100 for the OTA, 30 for the filter).
    pub population_size: usize,
    /// Number of generations (paper: 100 for the OTA, 40 for the filter).
    pub generations: usize,
    /// Probability that a selected pair undergoes crossover.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Standard deviation of Gaussian mutation (in normalised units).
    pub mutation_sigma: f64,
    /// Tournament size used for selection.
    pub tournament_size: usize,
    /// Number of elite individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Optional convergence criterion: stop after this many consecutive
    /// generations without a Pareto-front improvement. `None` (the default
    /// and the paper's behaviour) always runs the full generation budget.
    pub early_stop: Option<EarlyStop>,
}

impl GaConfig {
    /// The paper's OTA optimisation settings: 100 generations × 100
    /// individuals = 10 000 evaluation samples (§4.2, Table 5).
    ///
    /// Elitism is disabled so that exactly `population_size × generations`
    /// circuit simulations are performed, matching the sample count the paper
    /// reports for Figure 7 and Table 5.
    pub fn paper_ota() -> Self {
        GaConfig {
            population_size: 100,
            generations: 100,
            crossover_rate: 0.9,
            mutation_rate: 0.08,
            mutation_sigma: 0.1,
            tournament_size: 2,
            elitism: 0,
            seed: 2008,
            early_stop: None,
        }
    }

    /// The paper's filter optimisation settings: 30 individuals × 40 generations (§5).
    pub fn paper_filter() -> Self {
        GaConfig {
            population_size: 30,
            generations: 40,
            ..GaConfig::paper_ota()
        }
    }

    /// A small configuration for fast unit tests.
    pub fn small_test() -> Self {
        GaConfig {
            population_size: 16,
            generations: 12,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            mutation_sigma: 0.15,
            tournament_size: 2,
            elitism: 1,
            seed: 7,
            early_stop: None,
        }
    }

    /// Returns a copy with a different seed (useful for repeatability studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given early-stopping criterion enabled.
    #[must_use]
    pub fn with_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.early_stop = Some(early_stop);
        self
    }

    /// Upper bound on the number of objective evaluations this configuration
    /// implies (`population_size × generations`). With elitism enabled, the
    /// elite individuals carried over between generations are not re-simulated,
    /// so the actual evaluation count is lower by `elitism × (generations − 1)`.
    pub fn evaluation_budget(&self) -> usize {
        self.population_size * self.generations
    }

    /// Exact number of problem evaluations a WBGA run with this configuration
    /// performs (accounts for elites that are carried over unchanged).
    pub fn exact_evaluations(&self) -> usize {
        self.evaluation_budget() - self.elitism * self.generations.saturating_sub(1)
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_ota()
    }
}

/// Per-generation statistics recorded during optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best scalar fitness in the generation (WBGA) or hypervolume proxy (NSGA-II).
    pub best_fitness: f64,
    /// Mean scalar fitness across the generation.
    pub mean_fitness: f64,
    /// Number of feasible (successfully evaluated) individuals.
    pub feasible: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_match_reported_budgets() {
        let ota = GaConfig::paper_ota();
        assert_eq!(ota.evaluation_budget(), 10_000);
        let filter = GaConfig::paper_filter();
        assert_eq!(filter.evaluation_budget(), 1_200);
        assert_eq!(filter.crossover_rate, ota.crossover_rate);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = GaConfig::paper_ota();
        let b = a.with_seed(123);
        assert_eq!(a.population_size, b.population_size);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn default_is_paper_ota() {
        assert_eq!(GaConfig::default(), GaConfig::paper_ota());
    }

    #[test]
    fn early_stop_defaults_off_and_clamps_patience() {
        assert!(GaConfig::paper_ota().early_stop.is_none());
        let cfg = GaConfig::small_test().with_early_stop(EarlyStop::after_stalled_generations(0));
        assert_eq!(cfg.early_stop.unwrap().effective_patience(), 1);
        assert_eq!(
            EarlyStop::after_stalled_generations(4).effective_patience(),
            4
        );
    }
}
