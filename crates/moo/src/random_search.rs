//! Uniform random search baseline.
//!
//! The simplest "conventional simulation-based approach": sample the design
//! space uniformly and keep the non-dominated points. Used to show what the
//! same evaluation budget buys without an evolutionary search.

use crate::optimizer::{OptimizationResult, Optimizer};
use crate::pareto::pareto_front;
use crate::problem::{Evaluation, Sense, SizingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a random-search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomSearchResult {
    /// All successful evaluations.
    pub archive: Vec<Evaluation>,
    /// Number of evaluation attempts including failures.
    pub evaluations: usize,
    /// Number of failed evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem.
    pub senses: Vec<Sense>,
}

impl RandomSearchResult {
    /// Pareto front over the archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }
}

/// Uniform random search as an [`Optimizer`] (stateless apart from its
/// budget and seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Number of evaluation attempts.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Creates a random-search optimiser.
    pub fn new(budget: usize, seed: u64) -> Self {
        RandomSearch { budget, seed }
    }

    /// Runs the search (same result as the free [`random_search`] function).
    pub fn run<P: SizingProblem + ?Sized>(&self, problem: &P) -> RandomSearchResult {
        random_search(problem, self.budget, self.seed)
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "random_search"
    }

    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult {
        RandomSearch::run(self, problem).into()
    }
}

/// Runs uniform random search with the given evaluation budget and seed.
///
/// All candidates are drawn up front and evaluated as one batch through
/// [`SizingProblem::evaluate_batch`], so problems with a parallel batch
/// implementation use every core.
pub fn random_search<P: SizingProblem + ?Sized>(
    problem: &P,
    budget: usize,
    seed: u64,
) -> RandomSearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let senses: Vec<Sense> = problem.objectives().iter().map(|o| o.sense).collect();
    let genomes: Vec<Vec<f64>> = (0..budget)
        .map(|_| {
            (0..problem.parameter_count())
                .map(|_| rng.gen::<f64>())
                .collect()
        })
        .collect();
    let mut archive = Vec::with_capacity(budget);
    let mut failed = 0usize;
    for result in problem.evaluate_batch(&genomes) {
        match result {
            Some(evaluation) => archive.push(evaluation),
            None => failed += 1,
        }
    }
    RandomSearchResult {
        archive,
        evaluations: budget,
        failed_evaluations: failed,
        senses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaConfig;
    use crate::pareto::hypervolume_2d;
    use crate::problem::{FnProblem, ObjectiveSpec};
    use crate::wbga::Wbga;

    fn tradeoff() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
        FnProblem::new(
            3,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| {
                // Only the first variable matters for the front; the others
                // penalise f2, making blind sampling inefficient.
                let penalty = (x[1] + x[2]) / 2.0;
                Some(vec![x[0], (1.0 - x[0] * x[0]) * (1.0 - 0.8 * penalty)])
            },
        )
    }

    #[test]
    fn budget_and_reproducibility() {
        let a = random_search(&tradeoff(), 100, 5);
        let b = random_search(&tradeoff(), 100, 5);
        assert_eq!(a.archive, b.archive);
        assert_eq!(a.evaluations, 100);
        assert_eq!(a.failed_evaluations, 0);
        assert!(!a.pareto_front().is_empty());
    }

    #[test]
    fn wbga_front_dominates_random_search_front_on_equal_budget() {
        let problem = tradeoff();
        let cfg = GaConfig {
            population_size: 20,
            generations: 20,
            ..GaConfig::small_test()
        };
        let wbga = Wbga::new(cfg).run(&problem);
        let random = random_search(&problem, cfg.evaluation_budget(), cfg.seed);
        let senses = wbga.senses.clone();
        let hv_wbga = hypervolume_2d(&wbga.pareto_front(), [0.0, -1.0], &senses);
        let hv_rand = hypervolume_2d(&random.pareto_front(), [0.0, -1.0], &senses);
        assert!(
            hv_wbga >= hv_rand * 0.98,
            "WBGA should not be clearly worse: {hv_wbga} vs {hv_rand}"
        );
    }
}
