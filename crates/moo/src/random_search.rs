//! Uniform random search baseline.
//!
//! The simplest "conventional simulation-based approach": sample the design
//! space uniformly and keep the non-dominated points. Used to show what the
//! same evaluation budget buys without an evolutionary search.

use crate::checkpoint::{
    Checkpoint, CheckpointControl, CheckpointError, CheckpointSink, DiscardCheckpoints,
};
use crate::optimizer::{OptimizationResult, Optimizer};
use crate::pareto::pareto_front;
use crate::problem::{Evaluation, Sense, SizingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of evaluations between two checkpoints of a resumable random
/// search. Candidates are drawn and evaluated in chunks of this size, which
/// produces exactly the same stream (and therefore the same result) as
/// drawing the whole budget up front.
pub const RANDOM_SEARCH_CHECKPOINT_CHUNK: usize = 64;

/// Result of a random-search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomSearchResult {
    /// All successful evaluations.
    pub archive: Vec<Evaluation>,
    /// Number of evaluation attempts including failures.
    pub evaluations: usize,
    /// Number of failed evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem.
    pub senses: Vec<Sense>,
}

impl RandomSearchResult {
    /// Pareto front over the archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }
}

/// Uniform random search as an [`Optimizer`] (stateless apart from its
/// budget and seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Number of evaluation attempts.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Creates a random-search optimiser.
    pub fn new(budget: usize, seed: u64) -> Self {
        RandomSearch { budget, seed }
    }

    /// Runs the search (same result as the free [`random_search`] function).
    pub fn run<P: SizingProblem + ?Sized>(&self, problem: &P) -> RandomSearchResult {
        self.run_resumable(problem, None, &mut DiscardCheckpoints)
            .expect("a fresh random search cannot fail")
    }

    /// Runs the search with a checkpoint after every evaluated chunk of
    /// [`RANDOM_SEARCH_CHECKPOINT_CHUNK`] candidates, optionally resuming.
    ///
    /// Random search has no population: a checkpoint carries the archive,
    /// the counters and the RNG state, and `next_generation` counts
    /// completed chunks. Chunked execution draws candidates in the same
    /// order as the single-batch version, so results are identical.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on an incompatible `resume` state or
    /// [`CheckpointError::Halted`] when the sink requested a stop.
    pub fn run_resumable<P: SizingProblem + ?Sized>(
        &self,
        problem: &P,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<RandomSearchResult, CheckpointError> {
        let senses: Vec<Sense> = problem.objectives().iter().map(|o| o.sense).collect();
        let total_chunks = self.budget.div_ceil(RANDOM_SEARCH_CHECKPOINT_CHUNK);

        let mut rng;
        let mut archive;
        let mut evaluations;
        let mut failed;
        let start_chunk;
        match resume {
            None => {
                rng = StdRng::seed_from_u64(self.seed);
                archive = Vec::with_capacity(self.budget);
                evaluations = 0usize;
                failed = 0usize;
                start_chunk = 0;
            }
            Some(checkpoint) => {
                checkpoint.validate(
                    "random_search",
                    problem.parameter_count(),
                    &senses,
                    total_chunks,
                )?;
                rng = StdRng::from_state(checkpoint.rng_state);
                archive = checkpoint.archive;
                evaluations = checkpoint.evaluations;
                failed = checkpoint.failed_evaluations;
                start_chunk = checkpoint.next_generation;
            }
        }

        for chunk in start_chunk..total_chunks {
            let offset = chunk * RANDOM_SEARCH_CHECKPOINT_CHUNK;
            let len = RANDOM_SEARCH_CHECKPOINT_CHUNK.min(self.budget - offset);
            let genomes: Vec<Vec<f64>> = (0..len)
                .map(|_| {
                    (0..problem.parameter_count())
                        .map(|_| rng.gen::<f64>())
                        .collect()
                })
                .collect();
            for result in problem.evaluate_batch(&genomes) {
                evaluations += 1;
                match result {
                    Some(evaluation) => archive.push(evaluation),
                    None => failed += 1,
                }
            }

            // The final chunk completes the run; no checkpoint is needed.
            if chunk + 1 == total_chunks {
                break;
            }
            if sink.wants_checkpoints() {
                let checkpoint = Checkpoint {
                    optimizer: "random_search".to_string(),
                    next_generation: chunk + 1,
                    rng_state: rng.state(),
                    population: Vec::new(),
                    archive: archive.clone(),
                    history: Vec::new(),
                    evaluations,
                    failed_evaluations: failed,
                    stall_generations: 0,
                    senses: senses.clone(),
                };
                if sink.on_checkpoint(&checkpoint) == CheckpointControl::Halt {
                    return Err(CheckpointError::Halted {
                        generation: chunk + 1,
                    });
                }
            }
        }

        Ok(RandomSearchResult {
            archive,
            evaluations,
            failed_evaluations: failed,
            senses,
        })
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "random_search"
    }

    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult {
        RandomSearch::run(self, problem).into()
    }

    fn run_checkpointed(
        &self,
        problem: &dyn SizingProblem,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<OptimizationResult, CheckpointError> {
        self.run_resumable(problem, resume, sink).map(Into::into)
    }
}

/// Runs uniform random search with the given evaluation budget and seed.
///
/// Candidates are evaluated through [`SizingProblem::evaluate_batch`] in
/// chunks of [`RANDOM_SEARCH_CHECKPOINT_CHUNK`], so problems with a parallel
/// batch implementation use every core.
pub fn random_search<P: SizingProblem + ?Sized>(
    problem: &P,
    budget: usize,
    seed: u64,
) -> RandomSearchResult {
    RandomSearch::new(budget, seed).run(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaConfig;
    use crate::pareto::hypervolume_2d;
    use crate::problem::{FnProblem, ObjectiveSpec};
    use crate::wbga::Wbga;

    fn tradeoff() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
        FnProblem::new(
            3,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| {
                // Only the first variable matters for the front; the others
                // penalise f2, making blind sampling inefficient.
                let penalty = (x[1] + x[2]) / 2.0;
                Some(vec![x[0], (1.0 - x[0] * x[0]) * (1.0 - 0.8 * penalty)])
            },
        )
    }

    #[test]
    fn budget_and_reproducibility() {
        let a = random_search(&tradeoff(), 100, 5);
        let b = random_search(&tradeoff(), 100, 5);
        assert_eq!(a.archive, b.archive);
        assert_eq!(a.evaluations, 100);
        assert_eq!(a.failed_evaluations, 0);
        assert!(!a.pareto_front().is_empty());
    }

    #[test]
    fn resume_from_any_chunk_reproduces_the_full_run() {
        let problem = tradeoff();
        // A budget that is not a multiple of the chunk size, so the last
        // chunk is partial.
        let search = RandomSearch::new(3 * RANDOM_SEARCH_CHECKPOINT_CHUNK + 17, 11);
        let full = search.run(&problem);
        assert_eq!(full.evaluations, search.budget);

        let mut checkpoints = Vec::new();
        let mut sink = |cp: &Checkpoint| {
            checkpoints.push(cp.clone());
            CheckpointControl::Continue
        };
        let checkpointed = search.run_resumable(&problem, None, &mut sink).unwrap();
        assert_eq!(checkpointed.archive, full.archive);
        // One checkpoint per completed chunk except the last.
        assert_eq!(checkpoints.len(), 3);

        for checkpoint in checkpoints {
            let chunk = checkpoint.next_generation;
            let resumed = search
                .run_resumable(&problem, Some(checkpoint), &mut DiscardCheckpoints)
                .unwrap_or_else(|e| panic!("resume from chunk {chunk} failed: {e}"));
            assert_eq!(resumed.archive, full.archive, "chunk {chunk}");
            assert_eq!(resumed.evaluations, full.evaluations, "chunk {chunk}");
        }
    }

    #[test]
    fn wbga_front_dominates_random_search_front_on_equal_budget() {
        let problem = tradeoff();
        let cfg = GaConfig {
            population_size: 20,
            generations: 20,
            ..GaConfig::small_test()
        };
        let wbga = Wbga::new(cfg).run(&problem);
        let random = random_search(&problem, cfg.evaluation_budget(), cfg.seed);
        let senses = wbga.senses.clone();
        let hv_wbga = hypervolume_2d(&wbga.pareto_front(), [0.0, -1.0], &senses);
        let hv_rand = hypervolume_2d(&random.pareto_front(), [0.0, -1.0], &senses);
        assert!(
            hv_wbga >= hv_rand * 0.98,
            "WBGA should not be clearly worse: {hv_wbga} vs {hv_rand}"
        );
    }
}
