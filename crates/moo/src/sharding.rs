//! Shard-aware batch evaluation: the [`BatchEvaluator`] seam and the
//! [`ShardedEvaluator`] distributed implementation.
//!
//! The optimisers in this crate evaluate whole populations through
//! [`SizingProblem::evaluate_batch`] and nothing else — which makes that
//! method the natural *seam* for swapping evaluation strategies without the
//! optimisers noticing. This module makes the seam explicit:
//!
//! * [`BatchEvaluator`] — anything that can map a batch of parameter vectors
//!   to evaluations for a given problem;
//! * [`LocalEvaluator`] — the in-process default (work-stealing threads, see
//!   [`crate::evaluate_batch_parallel`]);
//! * [`ShardedEvaluator`] — splits a batch into deterministic, index-ordered
//!   shards, publishes each shard as a task through a [`ShardTransport`]
//!   (typically a shared run store on disk — see the `ayb_store` crate), and
//!   assembles shard results back in index order. Any number of worker
//!   processes — on this machine or on other hosts sharing the transport —
//!   may claim and evaluate shards concurrently; the submitting process
//!   itself participates too, so a sharded batch always completes even with
//!   zero external workers;
//! * [`WithEvaluator`] — binds a problem to a [`BatchEvaluator`] behind the
//!   [`SizingProblem`] trait, so Wbga/Nsga2/RandomSearch stay shard-agnostic.
//!
//! ## Determinism
//!
//! Sharding never changes results: shards are consecutive index ranges,
//! every candidate's evaluation is pure, and results are reassembled in
//! index order — so a sharded batch is element-for-element identical to the
//! unsharded one, whatever the number of workers, hosts or crashes along the
//! way. Duplicate evaluation of a shard (after a worker is presumed dead but
//! was merely slow) is benign for the same reason: both writers produce
//! identical results.
//!
//! ```
//! use ayb_moo::{FnProblem, LocalEvaluator, ObjectiveSpec, SizingProblem, WithEvaluator};
//!
//! let problem = FnProblem::new(
//!     1,
//!     vec![ObjectiveSpec::maximize("f")],
//!     |x: &[f64]| Some(vec![x[0] * 2.0]),
//! );
//! let bound = WithEvaluator::new(&problem, LocalEvaluator::new(2));
//! let batch = vec![vec![0.25], vec![0.5]];
//! assert_eq!(bound.evaluate_batch(&batch), problem.evaluate_batch(&batch));
//! ```

use crate::problem::{evaluate_batch_parallel, Evaluation, ObjectiveSpec, SizingProblem};
use std::fmt;
use std::time::{Duration, Instant};

/// Per-shard evaluation results: one entry per candidate, in input order
/// (`None` marks an infeasible candidate).
pub type ShardResults = Vec<Option<Evaluation>>;

/// Errors produced by a [`ShardTransport`].
///
/// The [`ShardedEvaluator`] treats transport errors as degradation, not
/// failure: affected shards are evaluated locally so a batch always
/// completes with the same (deterministic) results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The underlying transport (filesystem, network, ...) failed.
    Transport(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Transport(message) => write!(f, "shard transport error: {message}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The data plane a [`ShardedEvaluator`] distributes work over.
///
/// One *epoch* corresponds to one `evaluate_batch` call: the submitter opens
/// an epoch, publishes every shard's parameters into it, and polls for
/// results while claiming unclaimed shards for local evaluation. Workers on
/// the same transport do the mirror image: scan for published shards, claim
/// one, evaluate, submit the result.
///
/// Implementations must provide:
///
/// * **atomic, exclusive claims** — of any number of processes racing
///   [`ShardTransport::try_claim`] for one shard, exactly one wins;
/// * **atomic results** — a result visible through [`ShardTransport::fetch`]
///   is complete, never torn;
/// * **staleness-aware recovery** — [`ShardTransport::recover`] breaks a
///   shard's claim when its holder is provably dead or has been silent
///   longer than the transport's staleness bound, making the shard
///   claimable again.
///
/// The reference implementation is the run store's on-disk shard plane
/// (`ayb_store`), which maps epochs to directories and uses hard-link claim
/// files; tests use in-memory transports.
pub trait ShardTransport: Send + Sync {
    /// Opens a new epoch for `shard_count` shards, returning its identifier
    /// (unique within the transport).
    fn open_epoch(&self, shard_count: usize) -> Result<String, ShardError>;

    /// Publishes shard `shard`'s candidate parameters into `epoch`.
    fn publish(&self, epoch: &str, shard: usize, parameters: &[Vec<f64>])
        -> Result<(), ShardError>;

    /// Attempts to claim shard `shard` for evaluation by this process.
    /// Returns `false` when another worker holds the claim (or the shard is
    /// gone).
    fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError>;

    /// Stores shard `shard`'s results and releases this process's claim on
    /// it.
    fn submit(&self, epoch: &str, shard: usize, results: &ShardResults) -> Result<(), ShardError>;

    /// Fetches shard `shard`'s results, if some worker has submitted them.
    fn fetch(&self, epoch: &str, shard: usize) -> Result<Option<ShardResults>, ShardError>;

    /// Breaks shard `shard`'s claim if its holder is presumed dead (crashed
    /// process, stale heartbeat). Returns whether a claim was broken.
    fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError>;

    /// Disposes of the epoch's tasks, claims and results once the batch has
    /// been assembled.
    fn close_epoch(&self, epoch: &str) -> Result<(), ShardError>;
}

/// The seam under [`SizingProblem::evaluate_batch`]: a strategy for mapping
/// a batch of parameter vectors to evaluations.
///
/// Implementations must preserve input order and must not change results —
/// only *where* and *how parallel* the evaluation runs.
pub trait BatchEvaluator: Sync {
    /// Evaluates `batch` against `problem`, one result slot per input.
    fn evaluate_batch(&self, problem: &dyn SizingProblem, batch: &[Vec<f64>]) -> ShardResults;
}

/// In-process batch evaluation on a work-stealing thread pool (the default
/// strategy; see [`crate::evaluate_batch_parallel`]).
#[derive(Debug, Clone, Copy)]
pub struct LocalEvaluator {
    threads: usize,
}

impl LocalEvaluator {
    /// Creates a local evaluator using up to `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        LocalEvaluator {
            threads: threads.max(1),
        }
    }
}

impl BatchEvaluator for LocalEvaluator {
    fn evaluate_batch(&self, problem: &dyn SizingProblem, batch: &[Vec<f64>]) -> ShardResults {
        evaluate_batch_parallel(problem, batch, self.threads)
    }
}

/// Tuning knobs of a [`ShardedEvaluator`].
#[derive(Debug, Clone, Copy)]
pub struct ShardingOptions {
    /// Maximum number of candidates per shard (minimum 1). Batches at most
    /// one shard long are evaluated locally without touching the transport.
    pub shard_size: usize,
    /// How long the submitter sleeps between polls while every remaining
    /// shard is claimed by other workers.
    pub poll_interval: Duration,
    /// How often the submitter asks the transport to recover shards whose
    /// claim holder died (checked only while no progress is being made).
    pub recovery_interval: Duration,
}

impl Default for ShardingOptions {
    fn default() -> Self {
        ShardingOptions {
            shard_size: 25,
            poll_interval: Duration::from_millis(10),
            recovery_interval: Duration::from_secs(1),
        }
    }
}

impl ShardingOptions {
    /// Options with a specific shard size and default polling behaviour.
    pub fn with_shard_size(shard_size: usize) -> Self {
        ShardingOptions {
            shard_size: shard_size.max(1),
            ..ShardingOptions::default()
        }
    }
}

/// One submitter-side stage binding for [`drive_epoch`]: how to fetch,
/// claim, locally produce, submit and recover one epoch's shards, plus
/// boundary hooks fired as the drive progresses.
///
/// This is the *generic* claim→evaluate→poll→recover protocol shared by
/// every distributed stage — GA population evaluation
/// ([`ShardedEvaluator`]) and per-Pareto-point variation analysis (the
/// `ayb_core` flow) bind it to their own payloads. Implementations are
/// single-threaded (the driver calls them from one thread); concurrency
/// comes from *other processes* racing for the same shards through the
/// underlying transport.
pub trait EpochWork {
    /// One shard's finished output.
    type Output;

    /// Fetches shard `shard`'s output if some worker has submitted it.
    /// Implementations validate the payload (shape, length) and map anything
    /// unusable to `Ok(None)` so the shard stays pending.
    fn fetch(&mut self, shard: usize) -> Result<Option<Self::Output>, ShardError>;

    /// Attempts to claim shard `shard` for local production.
    fn try_claim(&mut self, shard: usize) -> Result<bool, ShardError>;

    /// Produces shard `shard`'s output in-process (the submitter
    /// participates, so an epoch always completes even with zero workers).
    fn evaluate(&mut self, shard: usize) -> Self::Output;

    /// Publishes a locally produced output (failure is benign: the local
    /// copy is used regardless).
    fn submit(&mut self, shard: usize, output: &Self::Output) -> Result<(), ShardError>;

    /// Breaks shard `shard`'s claim if its holder is presumed dead.
    /// Returns whether a claim was broken.
    fn recover(&mut self, shard: usize) -> Result<bool, ShardError>;

    /// Boundary hook: this process just won shard `shard`'s claim. Returning
    /// `false` aborts the drive (the fault-injection seam used by the chaos
    /// harness to simulate a crash between a claim and its result).
    fn on_claimed(&mut self, shard: usize) -> bool {
        let _ = shard;
        true
    }

    /// Boundary hook: shard `shard`'s output just landed (fetched from a
    /// worker or produced locally), in landing order. This is where stages
    /// persist per-shard progress (checkpoints) and tick observers.
    /// Returning `false` aborts the drive.
    fn on_result(&mut self, shard: usize, output: &Self::Output) -> bool {
        let _ = (shard, output);
        true
    }

    /// Boundary hook: the transport failed three times for shard `shard` and
    /// the driver is about to produce it locally instead. `error` is the
    /// *last* transport error — the one that tipped the shard into
    /// degradation — so stages can surface *why* the data plane was bypassed
    /// instead of degrading silently.
    fn on_degraded(&mut self, shard: usize, error: &ShardError) {
        let _ = (shard, error);
    }
}

/// Drives one epoch of `shard_count` published shards to completion: the
/// generic claim-poll-recover loop extracted from [`ShardedEvaluator`] and
/// shared with the variation stage.
///
/// Each pass over the pending shards fetches finished results, claims and
/// locally evaluates unclaimed ones, and falls back to pure local evaluation
/// for any shard whose transport errored three times (a broken data plane
/// must never wedge an epoch — duplicate production is benign because
/// outputs are deterministic). While no progress is being made, dead
/// workers' claims are recovered every
/// [`ShardingOptions::recovery_interval`].
///
/// Returns the outputs in shard-index order, or `None` when a boundary hook
/// aborted the drive (simulated crash): already-landed outputs were already
/// seen by [`EpochWork::on_result`], so an aborted drive loses nothing that
/// was persisted there.
pub fn drive_epoch<W: EpochWork>(
    work: &mut W,
    shard_count: usize,
    options: &ShardingOptions,
) -> Option<Vec<W::Output>> {
    let mut slots: Vec<Option<W::Output>> = Vec::with_capacity(shard_count);
    slots.resize_with(shard_count, || None);
    let mut errors = vec![0usize; shard_count];
    let mut last_error: Vec<Option<ShardError>> = vec![None; shard_count];
    let mut last_recovery = Instant::now();
    while slots.iter().any(Option::is_none) {
        let mut progressed = false;
        for index in 0..shard_count {
            if slots[index].is_some() {
                continue;
            }
            match work.fetch(index) {
                Ok(Some(output)) => {
                    if !work.on_result(index, &output) {
                        return None;
                    }
                    slots[index] = Some(output);
                    progressed = true;
                    continue;
                }
                Ok(None) => {}
                Err(error) => {
                    errors[index] += 1;
                    last_error[index] = Some(error);
                }
            }
            match work.try_claim(index) {
                Ok(true) => {
                    if !work.on_claimed(index) {
                        return None;
                    }
                    let output = work.evaluate(index);
                    let _ = work.submit(index, &output);
                    if !work.on_result(index, &output) {
                        return None;
                    }
                    slots[index] = Some(output);
                    progressed = true;
                }
                Ok(false) => {}
                Err(error) => {
                    errors[index] += 1;
                    last_error[index] = Some(error);
                }
            }
            // A repeatedly failing transport must not wedge the epoch: fall
            // back to producing the shard in-process. Worst case a worker
            // produces it concurrently — identical output. The degradation
            // is reported through `on_degraded` with the error that caused
            // it, never swallowed silently.
            if slots[index].is_none() && errors[index] >= 3 {
                let error = last_error[index].take().unwrap_or_else(|| {
                    ShardError::Transport("repeated transport failures".to_string())
                });
                work.on_degraded(index, &error);
                let output = work.evaluate(index);
                if !work.on_result(index, &output) {
                    return None;
                }
                slots[index] = Some(output);
                progressed = true;
            }
        }
        if slots.iter().all(Option::is_some) {
            break;
        }
        if !progressed {
            if last_recovery.elapsed() >= options.recovery_interval {
                for (index, slot) in slots.iter().enumerate() {
                    if slot.is_none() {
                        let _ = work.recover(index);
                    }
                }
                last_recovery = Instant::now();
            }
            std::thread::sleep(options.poll_interval);
        }
    }
    Some(
        slots
            .into_iter()
            .map(|slot| slot.expect("every shard slot was filled"))
            .collect(),
    )
}

/// Shard-aware batch evaluation over a [`ShardTransport`].
///
/// `evaluate_batch` splits the batch into consecutive shards of at most
/// [`ShardingOptions::shard_size`] candidates, publishes them as tasks, and
/// then *participates* in their evaluation through [`drive_epoch`]: it
/// repeatedly fetches finished results, claims any unclaimed shard and
/// evaluates it in-process (through the problem's own `evaluate_batch`, so
/// the local work-stealing scheduler still applies inside a shard), and —
/// while blocked on shards held by other workers — periodically asks the
/// transport to recover shards whose holder died. Results are reassembled
/// in shard-index order, making the output bit-identical to an unsharded
/// evaluation.
///
/// Transport failures degrade gracefully to local evaluation; a sharded
/// batch therefore completes (with identical results) even when the data
/// plane misbehaves or no external worker ever shows up.
pub struct ShardedEvaluator {
    transport: Box<dyn ShardTransport>,
    options: ShardingOptions,
    degraded_hook: Option<DegradedHook>,
}

/// Callback fired when a shard degrades to local evaluation (see
/// [`EpochWork::on_degraded`]): `(shard index, the transport error that
/// caused it)`. Shared, because the evaluator is called behind `&self` from
/// optimiser threads.
pub type DegradedHook = std::sync::Arc<dyn Fn(usize, &ShardError) + Send + Sync>;

impl ShardedEvaluator {
    /// Creates a sharded evaluator over `transport`.
    pub fn new(transport: Box<dyn ShardTransport>, options: ShardingOptions) -> Self {
        ShardedEvaluator {
            transport,
            options: ShardingOptions {
                shard_size: options.shard_size.max(1),
                ..options
            },
            degraded_hook: None,
        }
    }

    /// Installs a hook observing transport degradations: every shard that
    /// falls back to local evaluation reports the error that caused it.
    #[must_use]
    pub fn with_degraded_hook(mut self, hook: DegradedHook) -> Self {
        self.degraded_hook = Some(hook);
        self
    }

    /// The evaluator's tuning knobs.
    pub fn options(&self) -> &ShardingOptions {
        &self.options
    }

    /// Splits `len` candidates into consecutive shard ranges of at most
    /// `shard_size` elements (the deterministic shard layout).
    pub fn shard_ranges(len: usize, shard_size: usize) -> Vec<std::ops::Range<usize>> {
        let shard_size = shard_size.max(1);
        (0..len)
            .step_by(shard_size)
            .map(|start| start..(start + shard_size).min(len))
            .collect()
    }

    fn evaluate_sharded(&self, problem: &dyn SizingProblem, batch: &[Vec<f64>]) -> ShardResults {
        let ranges = Self::shard_ranges(batch.len(), self.options.shard_size);
        if ranges.len() < 2 {
            return problem.evaluate_batch(batch);
        }
        let shards: Vec<&[Vec<f64>]> = ranges.iter().map(|r| &batch[r.clone()]).collect();

        let Ok(epoch) = self.transport.open_epoch(shards.len()) else {
            return problem.evaluate_batch(batch);
        };
        for (index, shard) in shards.iter().enumerate() {
            if self.transport.publish(&epoch, index, shard).is_err() {
                // A half-published epoch is unusable; evaluate everything
                // locally and dispose of what was published.
                let _ = self.transport.close_epoch(&epoch);
                return problem.evaluate_batch(batch);
            }
        }

        let mut work = EvalEpochWork {
            transport: self.transport.as_ref(),
            epoch: &epoch,
            problem,
            shards: &shards,
            degraded_hook: self.degraded_hook.as_ref(),
        };
        let slots = drive_epoch(&mut work, shards.len(), &self.options)
            .expect("evaluation epochs have no aborting hooks");
        let _ = self.transport.close_epoch(&epoch);

        let mut assembled = Vec::with_capacity(batch.len());
        for results in slots {
            assembled.extend(results);
        }
        assembled
    }
}

/// [`EpochWork`] binding of population evaluation: payloads are candidate
/// parameter slices, outputs are [`ShardResults`], transported through a
/// [`ShardTransport`].
struct EvalEpochWork<'a> {
    transport: &'a dyn ShardTransport,
    epoch: &'a str,
    problem: &'a dyn SizingProblem,
    shards: &'a [&'a [Vec<f64>]],
    degraded_hook: Option<&'a DegradedHook>,
}

impl EpochWork for EvalEpochWork<'_> {
    type Output = ShardResults;

    fn fetch(&mut self, shard: usize) -> Result<Option<ShardResults>, ShardError> {
        match self.transport.fetch(self.epoch, shard)? {
            // A result of the wrong shape is unusable; leave the shard
            // pending so it is (re-)evaluated instead.
            Some(results) if results.len() == self.shards[shard].len() => Ok(Some(results)),
            _ => Ok(None),
        }
    }

    fn try_claim(&mut self, shard: usize) -> Result<bool, ShardError> {
        self.transport.try_claim(self.epoch, shard)
    }

    fn evaluate(&mut self, shard: usize) -> ShardResults {
        self.problem.evaluate_batch(self.shards[shard])
    }

    fn submit(&mut self, shard: usize, results: &ShardResults) -> Result<(), ShardError> {
        self.transport.submit(self.epoch, shard, results)
    }

    fn recover(&mut self, shard: usize) -> Result<bool, ShardError> {
        self.transport.recover(self.epoch, shard)
    }

    fn on_degraded(&mut self, shard: usize, error: &ShardError) {
        if let Some(hook) = self.degraded_hook {
            hook(shard, error);
        }
    }
}

impl BatchEvaluator for ShardedEvaluator {
    fn evaluate_batch(&self, problem: &dyn SizingProblem, batch: &[Vec<f64>]) -> ShardResults {
        self.evaluate_sharded(problem, batch)
    }
}

/// Binds a [`SizingProblem`] to a [`BatchEvaluator`] strategy behind the
/// problem trait itself, so every [`Optimizer`](crate::Optimizer) — which
/// only ever sees `&dyn SizingProblem` — is shard-agnostic.
///
/// Single-candidate [`SizingProblem::evaluate`] calls go straight to the
/// wrapped problem; only whole-batch evaluation is routed through the
/// evaluator.
pub struct WithEvaluator<P, E> {
    problem: P,
    evaluator: E,
}

impl<P: SizingProblem, E: BatchEvaluator> WithEvaluator<P, E> {
    /// Binds `problem` to `evaluator`.
    pub fn new(problem: P, evaluator: E) -> Self {
        WithEvaluator { problem, evaluator }
    }
}

impl<P: SizingProblem, E: BatchEvaluator> SizingProblem for WithEvaluator<P, E> {
    fn parameter_count(&self) -> usize {
        self.problem.parameter_count()
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        self.problem.objectives()
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        self.problem.evaluate(parameters)
    }

    fn evaluate_batch(&self, batch: &[Vec<f64>]) -> ShardResults {
        self.evaluator
            .evaluate_batch(&self.problem as &dyn SizingProblem, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync> {
        FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                if x[0] > 0.9 {
                    None
                } else {
                    Some(vec![x[0] + x[1], x[0] * x[1]])
                }
            },
        )
    }

    fn batch(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i as f64) / (n as f64), ((i * 7) % n) as f64 / (n as f64)])
            .collect()
    }

    #[derive(Default)]
    struct MemShard {
        parameters: Option<Vec<Vec<f64>>>,
        claimed: bool,
        dead_claim: bool,
        results: Option<ShardResults>,
    }

    /// An in-memory transport; knobs simulate foreign workers and crashes.
    #[derive(Default)]
    struct MemTransport {
        epochs: Mutex<HashMap<String, Vec<MemShard>>>,
        next_epoch: AtomicUsize,
        /// When set, every shard starts out with a claim held by a "dead"
        /// foreign worker, so only recovery can make progress.
        claim_all_as_dead: AtomicBool,
        recoveries: AtomicUsize,
        closed: AtomicUsize,
    }

    impl ShardTransport for MemTransport {
        fn open_epoch(&self, shard_count: usize) -> Result<String, ShardError> {
            let id = format!("ep-{}", self.next_epoch.fetch_add(1, Ordering::Relaxed));
            let dead = self.claim_all_as_dead.load(Ordering::Relaxed);
            let shards = (0..shard_count)
                .map(|_| MemShard {
                    claimed: dead,
                    dead_claim: dead,
                    ..MemShard::default()
                })
                .collect();
            self.epochs.lock().unwrap().insert(id.clone(), shards);
            Ok(id)
        }

        fn publish(
            &self,
            epoch: &str,
            shard: usize,
            parameters: &[Vec<f64>],
        ) -> Result<(), ShardError> {
            let mut epochs = self.epochs.lock().unwrap();
            let shards = epochs
                .get_mut(epoch)
                .ok_or_else(|| ShardError::Transport("no epoch".into()))?;
            shards[shard].parameters = Some(parameters.to_vec());
            Ok(())
        }

        fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
            let mut epochs = self.epochs.lock().unwrap();
            let Some(shards) = epochs.get_mut(epoch) else {
                return Ok(false);
            };
            if shards[shard].claimed {
                return Ok(false);
            }
            shards[shard].claimed = true;
            Ok(true)
        }

        fn submit(
            &self,
            epoch: &str,
            shard: usize,
            results: &ShardResults,
        ) -> Result<(), ShardError> {
            let mut epochs = self.epochs.lock().unwrap();
            if let Some(shards) = epochs.get_mut(epoch) {
                shards[shard].results = Some(results.clone());
                shards[shard].claimed = false;
            }
            Ok(())
        }

        fn fetch(&self, epoch: &str, shard: usize) -> Result<Option<ShardResults>, ShardError> {
            let epochs = self.epochs.lock().unwrap();
            Ok(epochs
                .get(epoch)
                .and_then(|shards| shards[shard].results.clone()))
        }

        fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            let mut epochs = self.epochs.lock().unwrap();
            let Some(shards) = epochs.get_mut(epoch) else {
                return Ok(false);
            };
            if shards[shard].dead_claim {
                shards[shard].dead_claim = false;
                shards[shard].claimed = false;
                return Ok(true);
            }
            Ok(false)
        }

        fn close_epoch(&self, epoch: &str) -> Result<(), ShardError> {
            self.closed.fetch_add(1, Ordering::Relaxed);
            self.epochs.lock().unwrap().remove(epoch);
            Ok(())
        }
    }

    /// A transport whose every operation fails.
    struct BrokenTransport;

    impl ShardTransport for BrokenTransport {
        fn open_epoch(&self, _: usize) -> Result<String, ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn publish(&self, _: &str, _: usize, _: &[Vec<f64>]) -> Result<(), ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn try_claim(&self, _: &str, _: usize) -> Result<bool, ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn submit(&self, _: &str, _: usize, _: &ShardResults) -> Result<(), ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn fetch(&self, _: &str, _: usize) -> Result<Option<ShardResults>, ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn recover(&self, _: &str, _: usize) -> Result<bool, ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
        fn close_epoch(&self, _: &str) -> Result<(), ShardError> {
            Err(ShardError::Transport("broken".into()))
        }
    }

    #[test]
    fn shard_ranges_cover_every_index_exactly_once() {
        for (len, size) in [(0, 4), (1, 4), (4, 4), (5, 4), (37, 5), (10, 1), (3, 100)] {
            let ranges = ShardedEvaluator::shard_ranges(len, size);
            let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(
                covered,
                (0..len).collect::<Vec<_>>(),
                "len={len} size={size}"
            );
            assert!(ranges.iter().all(|r| r.len() <= size.max(1)));
        }
        // A shard size of zero is clamped, not a division by zero.
        assert_eq!(ShardedEvaluator::shard_ranges(3, 0).len(), 3);
    }

    #[test]
    fn sharded_evaluation_matches_local_evaluation() {
        let p = problem();
        let input = batch(23);
        let expected = p.evaluate_batch(&input);
        let sharded = ShardedEvaluator::new(
            Box::new(MemTransport::default()),
            ShardingOptions::with_shard_size(4),
        );
        let bound = WithEvaluator::new(&p, sharded);
        assert_eq!(bound.evaluate_batch(&input), expected);
        // Single-candidate evaluation delegates to the problem unchanged.
        assert_eq!(bound.evaluate(&input[0]), p.evaluate(&input[0]));
        assert_eq!(bound.parameter_count(), 2);
        assert_eq!(bound.objective_count(), 2);
    }

    #[test]
    fn small_batches_bypass_the_transport() {
        let p = problem();
        let transport = MemTransport::default();
        let input = batch(3);
        let expected = p.evaluate_batch(&input);
        let sharded =
            ShardedEvaluator::new(Box::new(transport), ShardingOptions::with_shard_size(4));
        // One shard's worth of work: evaluated locally, no epoch opened.
        assert_eq!(
            BatchEvaluator::evaluate_batch(&sharded, &p, &input),
            expected
        );
    }

    #[test]
    fn external_workers_service_shards_concurrently() {
        let p = problem();
        let input = batch(40);
        let expected = p.evaluate_batch(&input);
        let transport = std::sync::Arc::new(MemTransport::default());

        // A "remote" worker thread mirroring what `ayb serve --shards-only`
        // does: scan, claim, evaluate, submit.
        let worker_transport = std::sync::Arc::clone(&transport);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let worker_stop = std::sync::Arc::clone(&stop);
        let worker_problem = problem();
        let worker = std::thread::spawn(move || {
            let mut serviced = 0usize;
            while !worker_stop.load(Ordering::Relaxed) {
                let task = {
                    let mut epochs = worker_transport.epochs.lock().unwrap();
                    epochs.iter_mut().find_map(|(epoch, shards)| {
                        shards.iter_mut().enumerate().find_map(|(index, shard)| {
                            match (&shard.parameters, shard.claimed, &shard.results) {
                                (Some(parameters), false, None) => {
                                    shard.claimed = true;
                                    Some((epoch.clone(), index, parameters.clone()))
                                }
                                _ => None,
                            }
                        })
                    })
                };
                match task {
                    Some((epoch, index, parameters)) => {
                        let results = worker_problem.evaluate_batch(&parameters);
                        worker_transport
                            .submit(&epoch, index, &results)
                            .expect("in-memory submit succeeds");
                        serviced += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            serviced
        });

        struct SharedTransport(std::sync::Arc<MemTransport>);
        impl ShardTransport for SharedTransport {
            fn open_epoch(&self, n: usize) -> Result<String, ShardError> {
                self.0.open_epoch(n)
            }
            fn publish(&self, e: &str, s: usize, p: &[Vec<f64>]) -> Result<(), ShardError> {
                self.0.publish(e, s, p)
            }
            fn try_claim(&self, e: &str, s: usize) -> Result<bool, ShardError> {
                self.0.try_claim(e, s)
            }
            fn submit(&self, e: &str, s: usize, r: &ShardResults) -> Result<(), ShardError> {
                self.0.submit(e, s, r)
            }
            fn fetch(&self, e: &str, s: usize) -> Result<Option<ShardResults>, ShardError> {
                self.0.fetch(e, s)
            }
            fn recover(&self, e: &str, s: usize) -> Result<bool, ShardError> {
                self.0.recover(e, s)
            }
            fn close_epoch(&self, e: &str) -> Result<(), ShardError> {
                self.0.close_epoch(e)
            }
        }

        let sharded = ShardedEvaluator::new(
            Box::new(SharedTransport(std::sync::Arc::clone(&transport))),
            ShardingOptions {
                shard_size: 4,
                poll_interval: Duration::from_millis(1),
                recovery_interval: Duration::from_millis(50),
            },
        );
        for _ in 0..3 {
            assert_eq!(
                BatchEvaluator::evaluate_batch(&sharded, &p, &input),
                expected,
                "concurrent workers never change results"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let _ = worker.join().unwrap();
        assert_eq!(
            transport.closed.load(Ordering::Relaxed),
            3,
            "every epoch was disposed after assembly"
        );
        assert!(
            transport.epochs.lock().unwrap().is_empty(),
            "no epoch state lingers"
        );
    }

    #[test]
    fn dead_worker_claims_are_recovered() {
        let p = problem();
        let input = batch(12);
        let expected = p.evaluate_batch(&input);
        let transport = MemTransport::default();
        transport.claim_all_as_dead.store(true, Ordering::Relaxed);
        let sharded = ShardedEvaluator::new(
            Box::new(transport),
            ShardingOptions {
                shard_size: 4,
                poll_interval: Duration::from_millis(1),
                recovery_interval: Duration::from_millis(1),
            },
        );
        // Every shard starts claimed by a dead worker; only the recovery
        // path can finish the batch.
        assert_eq!(
            BatchEvaluator::evaluate_batch(&sharded, &p, &input),
            expected
        );
    }

    #[test]
    fn broken_transport_degrades_to_local_evaluation() {
        let p = problem();
        let input = batch(17);
        let expected = p.evaluate_batch(&input);
        let sharded = ShardedEvaluator::new(
            Box::new(BrokenTransport),
            ShardingOptions::with_shard_size(4),
        );
        assert_eq!(
            BatchEvaluator::evaluate_batch(&sharded, &p, &input),
            expected
        );
    }

    #[test]
    fn degraded_shards_report_their_transport_error() {
        /// Epochs open and publish fine, but every claim/fetch fails — the
        /// shape of a coordinator that died *after* the epoch was set up.
        struct DeadAfterOpen {
            inner: MemTransport,
        }
        impl ShardTransport for DeadAfterOpen {
            fn open_epoch(&self, shard_count: usize) -> Result<String, ShardError> {
                self.inner.open_epoch(shard_count)
            }
            fn publish(&self, e: &str, s: usize, p: &[Vec<f64>]) -> Result<(), ShardError> {
                self.inner.publish(e, s, p)
            }
            fn try_claim(&self, _: &str, _: usize) -> Result<bool, ShardError> {
                Err(ShardError::Transport("connection refused".into()))
            }
            fn submit(&self, _: &str, _: usize, _: &ShardResults) -> Result<(), ShardError> {
                Err(ShardError::Transport("connection refused".into()))
            }
            fn fetch(&self, _: &str, _: usize) -> Result<Option<ShardResults>, ShardError> {
                Err(ShardError::Transport("connection refused".into()))
            }
            fn recover(&self, _: &str, _: usize) -> Result<bool, ShardError> {
                Err(ShardError::Transport("connection refused".into()))
            }
            fn close_epoch(&self, e: &str) -> Result<(), ShardError> {
                self.inner.close_epoch(e)
            }
        }

        let p = problem();
        let input = batch(8);
        let expected = p.evaluate_batch(&input);
        let events: std::sync::Arc<std::sync::Mutex<Vec<(usize, String)>>> =
            std::sync::Arc::default();
        let sink = std::sync::Arc::clone(&events);
        let sharded = ShardedEvaluator::new(
            Box::new(DeadAfterOpen {
                inner: MemTransport::default(),
            }),
            ShardingOptions::with_shard_size(4),
        )
        .with_degraded_hook(std::sync::Arc::new(move |shard, error| {
            let ShardError::Transport(message) = error;
            sink.lock().unwrap().push((shard, message.clone()));
        }));
        assert_eq!(
            BatchEvaluator::evaluate_batch(&sharded, &p, &input),
            expected
        );
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2, "both shards degraded");
        assert!(events.iter().any(|(_, m)| m.contains("connection refused")));
    }

    /// A direct [`EpochWork`] stub: everything is produced locally, hooks
    /// record landing order and can veto.
    struct CountWork {
        landed: Vec<usize>,
        claimed: Vec<usize>,
        abort_after_results: Option<usize>,
        abort_on_claim: Option<usize>,
        fail_transport: bool,
    }

    impl CountWork {
        fn new() -> CountWork {
            CountWork {
                landed: Vec::new(),
                claimed: Vec::new(),
                abort_after_results: None,
                abort_on_claim: None,
                fail_transport: false,
            }
        }
    }

    impl EpochWork for CountWork {
        type Output = usize;

        fn fetch(&mut self, _shard: usize) -> Result<Option<usize>, ShardError> {
            if self.fail_transport {
                return Err(ShardError::Transport("down".into()));
            }
            Ok(None)
        }

        fn try_claim(&mut self, _shard: usize) -> Result<bool, ShardError> {
            if self.fail_transport {
                return Err(ShardError::Transport("down".into()));
            }
            Ok(true)
        }

        fn evaluate(&mut self, shard: usize) -> usize {
            shard * 10
        }

        fn submit(&mut self, _shard: usize, _output: &usize) -> Result<(), ShardError> {
            if self.fail_transport {
                return Err(ShardError::Transport("down".into()));
            }
            Ok(())
        }

        fn recover(&mut self, _shard: usize) -> Result<bool, ShardError> {
            Ok(false)
        }

        fn on_claimed(&mut self, shard: usize) -> bool {
            self.claimed.push(shard);
            self.abort_on_claim != Some(shard)
        }

        fn on_result(&mut self, shard: usize, _output: &usize) -> bool {
            self.landed.push(shard);
            match self.abort_after_results {
                Some(limit) => self.landed.len() < limit,
                None => true,
            }
        }
    }

    #[test]
    fn drive_epoch_collects_outputs_in_index_order() {
        let mut work = CountWork::new();
        let outputs = drive_epoch(&mut work, 5, &ShardingOptions::default());
        assert_eq!(outputs, Some(vec![0, 10, 20, 30, 40]));
        assert_eq!(work.claimed, vec![0, 1, 2, 3, 4]);
        assert_eq!(work.landed, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drive_epoch_aborts_when_the_result_hook_vetoes() {
        let mut work = CountWork::new();
        work.abort_after_results = Some(2);
        assert_eq!(drive_epoch(&mut work, 5, &ShardingOptions::default()), None);
        // Exactly two results landed before the simulated crash.
        assert_eq!(work.landed, vec![0, 1]);
    }

    #[test]
    fn drive_epoch_aborts_when_the_claim_hook_vetoes() {
        let mut work = CountWork::new();
        work.abort_on_claim = Some(3);
        assert_eq!(drive_epoch(&mut work, 5, &ShardingOptions::default()), None);
        // Shards 0..=2 landed; the crash hit between claiming 3 and
        // producing it.
        assert_eq!(work.landed, vec![0, 1, 2]);
        assert_eq!(work.claimed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drive_epoch_survives_a_dead_transport_via_local_fallback() {
        let mut work = CountWork::new();
        work.fail_transport = true;
        let options = ShardingOptions {
            poll_interval: Duration::from_millis(1),
            recovery_interval: Duration::from_millis(1),
            ..ShardingOptions::default()
        };
        // Every transport call errors; after three strikes per shard the
        // driver produces each shard locally — the epoch still completes
        // with identical outputs, and every landing still fires the hook.
        let outputs = drive_epoch(&mut work, 3, &options);
        assert_eq!(outputs, Some(vec![0, 10, 20]));
        assert_eq!(work.landed.len(), 3);
    }

    #[test]
    fn optimizers_are_shard_agnostic() {
        use crate::config::GaConfig;
        use crate::optimizer::OptimizerConfig;

        let plain = problem();
        for config in [
            OptimizerConfig::Wbga(GaConfig::small_test()),
            OptimizerConfig::Nsga2(GaConfig::small_test()),
            OptimizerConfig::RandomSearch {
                budget: 96,
                seed: 9,
            },
        ] {
            let reference = config.build().run(&plain);
            let sharded = WithEvaluator::new(
                &plain,
                ShardedEvaluator::new(
                    Box::new(MemTransport::default()),
                    ShardingOptions::with_shard_size(3),
                ),
            );
            let distributed = config.build().run(&sharded);
            assert_eq!(
                reference.archive,
                distributed.archive,
                "{}: sharding must not change the archive",
                config.name()
            );
            assert_eq!(reference.evaluations, distributed.evaluations);
        }
    }
}
